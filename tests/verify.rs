//! The lockstep architectural oracle: random machine configurations on
//! real kernels must report zero divergences, injected architectural
//! faults must be detected, and injected micro-architectural or
//! checkpoint faults must degrade gracefully or be rejected.

use nwo::core::{GatingConfig, PackConfig};
use nwo::sim::{SimConfig, SimError, Simulator};
use nwo::verify::{flip_blob_bit, DatapathFault, DivergenceKind, FaultPlan};
use nwo::workloads::full_suite;
use proptest::prelude::*;

/// A machine configuration drawn from the full optimization space the
/// paper sweeps: gating × packing/replay × predictor × width × issue.
#[derive(Debug, Clone, Copy)]
struct ConfigChoice {
    gating: bool,
    packing: u8, // 0 none, 1 packing, 2 replay packing
    perfect_bp: bool,
    wide: bool,
    eight: bool,
    zero_detect_loads: bool,
}

impl ConfigChoice {
    fn build(self) -> SimConfig {
        let mut c = SimConfig::default().with_verify();
        if self.gating {
            c = c.with_gating(GatingConfig::default());
        }
        match self.packing {
            1 => c = c.with_packing(PackConfig::default()),
            2 => c = c.with_packing(PackConfig::with_replay()),
            _ => {}
        }
        if self.perfect_bp {
            c = c.with_perfect_prediction();
        }
        if self.wide {
            c = c.with_wide_decode();
        }
        if self.eight {
            c = c.with_eight_issue();
        }
        c.zero_detect_loads = self.zero_detect_loads;
        c
    }
}

fn config_choice() -> impl Strategy<Value = ConfigChoice> {
    (
        any::<bool>(),
        0u8..3,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(gating, packing, perfect_bp, wide, eight, zero_detect_loads)| ConfigChoice {
                gating,
                packing,
                perfect_bp,
                wide,
                eight,
                zero_detect_loads,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any point in the optimization space, on any bundled kernel,
    /// commits exactly the architecture's semantics: the oracle checks
    /// every commit and reports zero divergences.
    #[test]
    fn random_configs_run_oracle_clean(
        choice in config_choice(),
        kernel in prop::sample::select((0..full_suite(0).len()).collect::<Vec<_>>()),
    ) {
        let bench = full_suite(0).swap_remove(kernel);
        let mut sim = Simulator::new(&bench.program, choice.build());
        let report = sim
            .run(u64::MAX)
            .unwrap_or_else(|e| panic!("{} under {choice:?}: {e}", bench.name));
        prop_assert_eq!(&report.out_quads, &bench.expected, "{} output", bench.name);
        let checked = sim.oracle_checked().expect("verify mode is on");
        prop_assert!(checked > 0, "oracle saw commits");
        prop_assert_eq!(checked, report.stats.committed, "every commit was checked");
    }
}

#[test]
fn every_kernel_is_oracle_clean_under_replay_packing() {
    let config = SimConfig::default()
        .with_gating(GatingConfig::default())
        .with_packing(PackConfig::with_replay())
        .with_verify();
    for bench in full_suite(0) {
        let mut sim = Simulator::new(&bench.program, config.clone());
        let report = sim
            .run(u64::MAX)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert_eq!(report.out_quads, bench.expected, "{}", bench.name);
        assert_eq!(
            sim.oracle_checked(),
            Some(report.stats.committed),
            "{}: oracle checked every commit",
            bench.name
        );
    }
}

#[test]
fn oracle_survives_a_checkpoint_restore() {
    let bench = &full_suite(0)[0];
    let mut warm = Simulator::new(&bench.program, SimConfig::default().with_verify());
    warm.warmup(1_000).expect("warms");
    let blob = warm.checkpoint();

    let mut sim = Simulator::new(&bench.program, SimConfig::default().with_verify());
    sim.restore_checkpoint(&blob).expect("restores");
    let report = sim.run(u64::MAX).expect("runs oracle-clean after restore");
    assert_eq!(report.out_quads, bench.expected);
    assert!(sim.oracle_checked().expect("verify on") > 0);
}

#[test]
fn injected_datapath_fault_is_detected_with_context() {
    let bench = &full_suite(0)[0];
    let fault = DatapathFault {
        commit_index: 50,
        bit: 40,
    };
    let mut sim = Simulator::new(&bench.program, SimConfig::default().with_verify());
    sim.inject_datapath_fault(fault);
    let err = sim
        .run(u64::MAX)
        .expect_err("the oracle must catch the flip");
    let SimError::Divergence(report) = err else {
        panic!("expected a divergence report, got: {err}");
    };
    assert!(matches!(
        report.kind,
        DivergenceKind::Result | DivergenceKind::StoreValue
    ));
    assert!(!report.recent.is_empty(), "report carries recent commits");
    let text = report.to_string();
    assert!(text.contains("divergence"), "{text}");
    assert!(text.contains("pipeview"), "{text}");
}

#[test]
fn seeded_fault_plan_detection_is_deterministic() {
    let bench = &full_suite(0)[0];
    let run_campaign = || {
        let mut plan = FaultPlan::new(0xabad_cafe);
        let mut kinds = Vec::new();
        for _ in 0..3 {
            let fault = plan.datapath_fault(100);
            let mut sim = Simulator::new(&bench.program, SimConfig::default().with_verify());
            sim.inject_datapath_fault(fault);
            match sim.run(u64::MAX) {
                Err(SimError::Divergence(report)) => {
                    kinds.push((fault, report.kind, report.pc, report.commit_seq))
                }
                other => panic!("fault {fault:?} must diverge, got {other:?}"),
            }
        }
        kinds
    };
    assert_eq!(run_campaign(), run_campaign(), "same seed, same verdicts");
}

#[test]
fn predictor_fault_degrades_gracefully() {
    let bench = &full_suite(0)[0];
    let mut plan = FaultPlan::new(7);
    let mut sim = Simulator::new(&bench.program, SimConfig::default().with_verify());
    assert!(
        sim.inject_predictor_fault(plan.predictor_entropy()),
        "the Table 1 predictor has direction state to corrupt"
    );
    let report = sim
        .run(u64::MAX)
        .expect("micro-architectural corruption cannot fail the run");
    assert_eq!(
        report.out_quads, bench.expected,
        "architected output is untouched by predictor state"
    );
    assert!(sim.oracle_checked().expect("verify on") > 0);
}

#[test]
fn corrupted_checkpoint_blob_is_rejected() {
    let bench = &full_suite(0)[0];
    let mut warm = Simulator::new(&bench.program, SimConfig::default());
    warm.warmup(1_000).expect("warms");
    let blob = warm.checkpoint();

    let mut plan = FaultPlan::new(0xfeed);
    for trial in 0..4 {
        let bit = plan.blob_bit(blob.len());
        let mut corrupt = blob.clone();
        flip_blob_bit(&mut corrupt, bit);
        let mut sim = Simulator::new(&bench.program, SimConfig::default());
        let err = sim
            .restore_checkpoint(&corrupt)
            .expect_err("every flipped bit lands in validated bytes");
        // The machine is untouched and still runs correctly afterwards.
        let report = sim.run(u64::MAX).unwrap_or_else(|e| {
            panic!("trial {trial}: machine unusable after rejected restore ({err}): {e}")
        });
        assert_eq!(
            report.out_quads, bench.expected,
            "trial {trial} (bit {bit})"
        );
    }
}
