//! Property-based co-simulation: random straight-line programs must
//! produce identical architected results on the functional emulator and
//! the out-of-order simulator under every optimization, and the
//! assembler must round-trip through its binary encoding.

use nwo::core::PackConfig;
use nwo::isa::{assemble, Emulator, Instr, Opcode, Program, Reg};
use nwo::sim::{SimConfig, Simulator};
use proptest::prelude::*;

/// Operand values skewed toward the narrow/wide boundary cases that
/// exercise gating and packing decisions.
fn seed_value() -> impl Strategy<Value = i64> {
    prop_oneof![
        -70000i64..70000,
        any::<i64>(),
        Just(0x7fff),
        Just(-32768),
        Just(65535),
        Just(65536),
    ]
}

#[derive(Debug, Clone)]
enum Step {
    /// Operate-format op over two of the low registers.
    Op(Opcode, u8, u8, u8),
    /// Operate-literal form.
    OpLit(Opcode, u8, u8, u8),
    /// Store a register to the scratch buffer, then load it back into
    /// another register.
    StoreLoad(u8, u8, u8),
}

fn alu_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(vec![
        Opcode::Addq,
        Opcode::Subq,
        Opcode::Addl,
        Opcode::Subl,
        Opcode::Cmpeq,
        Opcode::Cmplt,
        Opcode::Cmpult,
        Opcode::And,
        Opcode::Bis,
        Opcode::Xor,
        Opcode::Bic,
        Opcode::Ornot,
        Opcode::Eqv,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Mulq,
        Opcode::Mull,
        Opcode::Divq,
        Opcode::Remq,
        Opcode::Sextb,
        Opcode::Sextw,
        Opcode::Cmoveq,
        Opcode::Cmovne,
        Opcode::Cmovlt,
        Opcode::Cmovge,
    ])
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (alu_opcode(), 0u8..8, 0u8..8, 0u8..8).prop_map(|(op, a, b, c)| Step::Op(op, a, b, c)),
        (alu_opcode(), 0u8..8, 0u8..=255, 0u8..8)
            .prop_map(|(op, a, l, c)| Step::OpLit(op, a, l, c)),
        (0u8..8, 0u8..8, 0u8..8).prop_map(|(src, dst, slot)| Step::StoreLoad(src, dst, slot)),
    ]
}

/// Builds an assembly program: seed r1..r8 with values, run the steps,
/// then outq every register.
fn build_program(seeds: &[i64], steps: &[Step]) -> Program {
    use std::fmt::Write;
    let mut src = String::from(".data\nscratch: .space 128\n.text\nmain:\n");
    let _ = writeln!(src, "    la   a0, scratch");
    for (i, &v) in seeds.iter().enumerate() {
        // li only covers 32-bit constants; build wide ones with shifts.
        let hi = (v >> 32) as i32;
        let lo = v & 0xffff_ffff;
        let _ = writeln!(src, "    li   r{reg}, {hi}", reg = i + 1);
        let _ = writeln!(src, "    sll  r{reg}, 16, r{reg}", reg = i + 1);
        let _ = writeln!(src, "    li   at, {}", (lo >> 16) & 0xffff);
        let _ = writeln!(src, "    bis  r{reg}, at, r{reg}", reg = i + 1);
        let _ = writeln!(src, "    sll  r{reg}, 16, r{reg}", reg = i + 1);
        let _ = writeln!(src, "    li   at, {}", lo & 0xffff);
        let _ = writeln!(src, "    bis  r{reg}, at, r{reg}", reg = i + 1);
    }
    for s in steps {
        match s {
            Step::Op(op, a, b, c) => {
                let _ = writeln!(
                    src,
                    "    {} r{}, r{}, r{}",
                    op.mnemonic(),
                    a + 1,
                    b + 1,
                    c + 1
                );
            }
            Step::OpLit(op, a, lit, c) => {
                let _ = writeln!(
                    src,
                    "    {} r{}, #{}, r{}",
                    op.mnemonic(),
                    a + 1,
                    lit,
                    c + 1
                );
            }
            Step::StoreLoad(srcr, dst, slot) => {
                let _ = writeln!(src, "    stq  r{}, {}(a0)", srcr + 1, *slot as u32 * 8);
                let _ = writeln!(src, "    ldq  r{}, {}(a0)", dst + 1, *slot as u32 * 8);
            }
        }
    }
    for i in 1..=8 {
        let _ = writeln!(src, "    outq r{i}");
    }
    src.push_str("    halt\n");
    assemble(&src).expect("generated program must assemble")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The out-of-order machine, with and without packing, architecturally
    /// matches the in-order emulator on arbitrary ALU/memory dataflow.
    #[test]
    fn random_programs_cosimulate(
        seeds in prop::collection::vec(seed_value(), 8),
        steps in prop::collection::vec(step(), 1..60),
    ) {
        let program = build_program(&seeds, &steps);
        let mut emu = Emulator::new(&program);
        emu.run(1_000_000).expect("emulator halts");
        let expected = emu.outq().to_vec();
        prop_assert_eq!(expected.len(), 8);

        for config in [
            SimConfig::default(),
            SimConfig::default().with_packing(PackConfig::default()),
            SimConfig::default().with_packing(PackConfig::with_replay()),
            SimConfig::default().with_eight_issue(),
        ] {
            let mut sim = Simulator::new(&program, config);
            let report = sim.run(u64::MAX).expect("simulator halts");
            prop_assert_eq!(&report.out_quads, &expected);
        }
    }

    /// Binary encode/decode round-trips for arbitrary operate instructions.
    #[test]
    fn encode_decode_round_trip(
        op in alu_opcode(),
        a in 0u8..32,
        b in 0u8..32,
        c in 0u8..32,
        lit in 0u8..=255,
        use_lit in any::<bool>(),
    ) {
        let instr = if use_lit {
            Instr::operate_lit(op, Reg::new(a), lit, Reg::new(c))
        } else {
            Instr::operate(op, Reg::new(a), Reg::new(b), Reg::new(c))
        };
        prop_assert_eq!(Instr::decode(instr.encode()).unwrap(), instr);
    }

    /// Disassembled text re-assembles to the same instruction word.
    #[test]
    fn disassembly_reassembles(
        op in alu_opcode(),
        a in 0u8..32,
        b in 0u8..32,
        c in 0u8..32,
    ) {
        let instr = Instr::operate(op, Reg::new(a), Reg::new(b), Reg::new(c));
        let text = format!("main: {instr}\n halt");
        let prog = assemble(&text).expect("disassembly must re-assemble");
        prop_assert_eq!(prog.text[0], instr.encode());
    }
}
