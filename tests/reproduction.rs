//! Reproduction regression tests: the paper's headline *shapes* must
//! hold on the CI-sized suite. These bounds are deliberately loose —
//! they catch modelling regressions, not run-to-run noise (everything
//! is deterministic anyway).

use nwo::core::GatingConfig;
use nwo::sim::{SimConfig, SimReport, Simulator};
use nwo::workloads::{full_suite, Suite};

fn run(bench: &nwo::workloads::Benchmark, config: SimConfig) -> SimReport {
    let mut sim = Simulator::new(&bench.program, config);
    let report = sim.run(u64::MAX).expect("completes");
    assert_eq!(report.out_quads, bench.expected, "{}", bench.name);
    report
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

/// Figure 1: about half of integer operations are narrow at 16 bits,
/// and the 33-bit address step is large.
#[test]
fn fig1_shape_half_narrow_with_address_step() {
    let mut at16 = Vec::new();
    let mut step = Vec::new();
    for bench in full_suite(0) {
        let r = run(&bench, SimConfig::default());
        let h = &r.stats.width_committed;
        at16.push(h.cumulative(16));
        step.push(h.cumulative(33) - h.cumulative(32));
    }
    let avg16 = mean(&at16);
    assert!(
        (0.35..=0.80).contains(&avg16),
        "average narrow-at-16 fraction {avg16:.2} left the paper's ballpark (~0.5)"
    );
    let avg_step = mean(&step);
    assert!(
        avg_step > 0.15,
        "the 33-bit address step collapsed ({avg_step:.2}) — check the memory layout"
    );
}

/// Figure 7: operand gating removes roughly half the integer unit's
/// power on both suites.
#[test]
fn fig7_shape_power_reduction_near_half() {
    let mut spec = Vec::new();
    let mut media = Vec::new();
    for bench in full_suite(0) {
        let r = run(
            &bench,
            SimConfig::default().with_gating(GatingConfig::default()),
        );
        let pct = r.power.reduction_percent;
        assert!(
            (10.0..=80.0).contains(&pct),
            "{}: power reduction {pct:.1}% is implausible",
            bench.name
        );
        match bench.suite {
            Suite::SpecInt => spec.push(pct),
            Suite::Media => media.push(pct),
        }
    }
    let (spec, media) = (mean(&spec), mean(&media));
    assert!(
        (40.0..=70.0).contains(&spec),
        "SPEC average power reduction {spec:.1}% left the paper's band (54.1%)"
    );
    assert!(
        (40.0..=70.0).contains(&media),
        "media average power reduction {media:.1}% left the paper's band (57.9%)"
    );
}

/// Figure 6: the detection overhead never exceeds the savings.
#[test]
fn fig6_shape_overhead_never_wins() {
    for bench in full_suite(0) {
        let r = run(
            &bench,
            SimConfig::default().with_gating(GatingConfig::default()),
        );
        assert!(
            r.power.net_saved_mw_per_cycle > 0.0,
            "{}: net power saving went negative",
            bench.name
        );
        assert!(
            r.power.extra_mw_per_cycle
                < r.power.saved16_mw_per_cycle + r.power.saved33_mw_per_cycle,
            "{}: zero-detect overhead exceeded the savings",
            bench.name
        );
    }
}

/// Figure 11's headline: with 8-wide decode the packed machine
/// captures a large share of what an 8-issue/8-ALU machine would gain,
/// on the packing-friendly kernels.
#[test]
fn fig11_shape_packing_approaches_eight_issue() {
    let mut captures = Vec::new();
    for bench in full_suite(0)
        .into_iter()
        .filter(|b| ["go", "mpeg2-enc", "g721-dec"].contains(&b.name))
    {
        let base = run(&bench, SimConfig::default().with_wide_decode());
        let pack = run(
            &bench,
            SimConfig::default()
                .with_wide_decode()
                .with_packing(nwo::core::PackConfig::default()),
        );
        let eight = run(
            &bench,
            SimConfig::default().with_wide_decode().with_eight_issue(),
        );
        let gain_eight = eight.ipc() - base.ipc();
        let gain_pack = pack.ipc() - base.ipc();
        if gain_eight > 0.01 {
            captures.push(gain_pack / gain_eight);
        }
    }
    assert!(!captures.is_empty(), "8-issue must gain on these kernels");
    let avg = mean(&captures);
    assert!(
        avg > 0.5,
        "packing captures only {avg:.2} of the 8-issue gain — the Figure 11 claim broke"
    );
}

/// Section 5.4: packing speedups grow when the front end widens.
#[test]
fn wide_decode_amplifies_packing() {
    let mut narrow_total = 0i64;
    let mut wide_total = 0i64;
    for bench in full_suite(0)
        .into_iter()
        .filter(|b| ["go", "mpeg2-enc", "ijpeg", "g721-dec"].contains(&b.name))
    {
        let saved = |wide: bool| {
            let shape = |c: SimConfig| if wide { c.with_wide_decode() } else { c };
            let base = run(&bench, shape(SimConfig::default()));
            let pack = run(
                &bench,
                shape(SimConfig::default().with_packing(nwo::core::PackConfig::default())),
            );
            base.stats.cycles as i64 - pack.stats.cycles as i64
        };
        narrow_total += saved(false);
        wide_total += saved(true);
    }
    assert!(
        wide_total > narrow_total,
        "8-wide decode must amplify packing (saved {wide_total} vs {narrow_total} cycles)"
    );
}

/// Figure 2: realistic prediction observes at least as much operand
/// fluctuation as perfect prediction.
#[test]
fn fig2_shape_wrong_paths_add_fluctuation() {
    let mut perfect_sum = 0.0;
    let mut real_sum = 0.0;
    for bench in full_suite(0)
        .into_iter()
        .filter(|b| b.suite == Suite::SpecInt)
    {
        let p = run(&bench, SimConfig::default().with_perfect_prediction());
        let r = run(&bench, SimConfig::default());
        perfect_sum += p.stats.fluctuation.fluctuating_fraction();
        real_sum += r.stats.fluctuation.fluctuating_fraction();
    }
    assert!(
        real_sum >= perfect_sum,
        "realistic prediction must see at least as much width fluctuation"
    );
}
