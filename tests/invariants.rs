//! Cross-cutting invariants of the timing model and its statistics.

#![allow(clippy::field_reassign_with_default)] // explicit Table 1 tweaks read better

use nwo::core::{GatingConfig, PackConfig};
use nwo::sim::{SimConfig, SimReport, Simulator};
use nwo::workloads::full_suite;

fn run(bench: &nwo::workloads::Benchmark, config: SimConfig) -> SimReport {
    let mut sim = Simulator::new(&bench.program, config);
    sim.run(u64::MAX).expect("benchmark completes")
}

#[test]
fn pipeline_counters_are_ordered() {
    for bench in full_suite(0) {
        let r = run(&bench, SimConfig::default());
        let s = &r.stats;
        assert!(
            s.fetched >= s.dispatched,
            "{}: fetch feeds dispatch",
            bench.name
        );
        assert!(
            s.dispatched >= s.committed,
            "{}: dispatch feeds commit",
            bench.name
        );
        assert!(
            s.issued >= s.committed,
            "{}: every committed op issued",
            bench.name
        );
        // Fetched = committed + squashed (wrong path) exactly: nothing
        // is ever lost or double-counted.
        assert_eq!(
            s.fetched,
            s.committed + s.squashed,
            "{}: fetched partitions into committed and squashed",
            bench.name
        );
        assert!(
            s.ipc() > 0.0 && s.ipc() <= 4.0,
            "{}: ipc within issue width",
            bench.name
        );
    }
}

#[test]
fn perfect_prediction_is_never_slower_and_never_squashes() {
    for bench in full_suite(0) {
        let real = run(&bench, SimConfig::default());
        let perfect = run(&bench, SimConfig::default().with_perfect_prediction());
        assert_eq!(perfect.stats.squashed, 0, "{}", bench.name);
        assert_eq!(perfect.stats.branch.mispredicts, 0, "{}", bench.name);
        // Wrong-path loads can legitimately *prefetch* useful cache
        // lines (classic wrong-path prefetching), so realistic
        // prediction may narrowly beat perfect on short, cold-cache
        // runs. Allow a 5% margin; beyond that something is wrong.
        assert!(
            perfect.stats.cycles <= real.stats.cycles + real.stats.cycles / 20,
            "{}: perfect prediction lost by more than prefetching can explain ({} vs {})",
            bench.name,
            perfect.stats.cycles,
            real.stats.cycles
        );
    }
}

#[test]
fn clock_gating_is_timing_neutral() {
    for bench in full_suite(0) {
        let base = run(&bench, SimConfig::default());
        let gated = run(
            &bench,
            SimConfig::default().with_gating(GatingConfig::default()),
        );
        assert_eq!(
            base.stats.cycles, gated.stats.cycles,
            "{}: gating must not change timing",
            bench.name
        );
        assert!(
            gated.power.gated_mw_per_cycle <= gated.power.baseline_mw_per_cycle,
            "{}: gating must not increase power on narrow-rich code",
            bench.name
        );
    }
}

#[test]
fn packing_never_slows_down_without_replay() {
    // Non-replay packing only ever frees issue slots and ALUs: cycle
    // counts can only stay equal or shrink.
    for bench in full_suite(0) {
        let base = run(&bench, SimConfig::default());
        let packed = run(
            &bench,
            SimConfig::default().with_packing(PackConfig::default()),
        );
        assert!(
            packed.stats.cycles <= base.stats.cycles,
            "{}: exact packing cannot lose cycles ({} vs {})",
            bench.name,
            packed.stats.cycles,
            base.stats.cycles
        );
    }
}

#[test]
fn eight_issue_machine_dominates_baseline() {
    for bench in full_suite(0) {
        let base = run(&bench, SimConfig::default());
        let eight = run(&bench, SimConfig::default().with_eight_issue());
        // More issue slots and ALUs: the only second-order effects are
        // wrong-path contention, so allow a tiny regression margin.
        assert!(
            eight.stats.cycles <= base.stats.cycles + base.stats.cycles / 50,
            "{}: 8-issue much slower than 4-issue ({} vs {})",
            bench.name,
            eight.stats.cycles,
            base.stats.cycles
        );
    }
}

#[test]
fn determinism_across_runs() {
    let bench = &full_suite(0)[0];
    let a = run(
        bench,
        SimConfig::default().with_packing(PackConfig::with_replay()),
    );
    let b = run(
        bench,
        SimConfig::default().with_packing(PackConfig::with_replay()),
    );
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.issued, b.stats.issued);
    assert_eq!(a.stats.pack, b.stats.pack);
    assert_eq!(a.out_quads, b.out_quads);
}

#[test]
fn width_stats_are_populated_and_consistent() {
    for bench in full_suite(0).into_iter().take(6) {
        let r = run(&bench, SimConfig::default());
        let s = &r.stats;
        assert!(s.width_committed.total() > 0, "{}", bench.name);
        // Executed includes wrong-path work, so it can only be >= the
        // committed population.
        assert!(
            s.width_executed.total() >= s.width_committed.total(),
            "{}",
            bench.name
        );
        // Cumulative distribution is monotone and ends at 1.
        let mut last = 0.0;
        for bits in 1..=64 {
            let v = s.width_committed.cumulative(bits);
            assert!(v >= last, "{}: cumulative must be monotone", bench.name);
            last = v;
        }
        assert!((last - 1.0).abs() < 1e-12, "{}", bench.name);
    }
}

#[test]
fn pipeline_trace_is_ordered_and_capped() {
    for bench in full_suite(0).into_iter().take(4) {
        let mut sim = Simulator::new(&bench.program, SimConfig::default().with_trace(500));
        let report = sim.run(u64::MAX).expect("completes");
        assert_eq!(report.out_quads, bench.expected, "{}", bench.name);
        let trace = sim.trace();
        assert!(!trace.is_empty() && trace.len() <= 500, "{}", bench.name);
        for t in &trace {
            assert!(t.fetched_at <= t.dispatched_at, "{}: F<=D", bench.name);
            assert!(t.dispatched_at < t.issued_at, "{}: D<I", bench.name);
            assert!(t.issued_at < t.completed_at, "{}: I<X", bench.name);
            assert!(t.completed_at <= t.committed_at, "{}: X<=C", bench.name);
        }
        // Commits are in order.
        for pair in trace.windows(2) {
            assert!(
                pair[0].committed_at <= pair[1].committed_at,
                "{}",
                bench.name
            );
        }
    }
}

#[test]
fn packed_flags_appear_only_under_packing() {
    let bench = full_suite(0)
        .into_iter()
        .find(|b| b.name == "mpeg2-enc")
        .expect("exists");
    let mut base = Simulator::new(&bench.program, SimConfig::default().with_trace(5_000));
    base.run(u64::MAX).unwrap();
    assert!(base.trace().iter().all(|t| !t.packed && !t.replayed));
    let mut packed = Simulator::new(
        &bench.program,
        SimConfig::default()
            .with_packing(PackConfig::default())
            .with_trace(5_000),
    );
    packed.run(u64::MAX).unwrap();
    assert!(
        packed.trace().iter().any(|t| t.packed),
        "mpeg2-enc packs heavily"
    );
}

#[test]
fn stall_slots_conserve_exactly() {
    // Every lost commit slot is charged to exactly one cause, so the
    // breakdown must satisfy
    //   sum(slots) == commit_width * cycles - committed
    // with no tolerance, under every configuration.
    for bench in full_suite(0) {
        for config in [
            SimConfig::default(),
            SimConfig::default().with_perfect_prediction(),
            SimConfig::default().with_packing(PackConfig::with_replay()),
            SimConfig::default().with_eight_issue(),
        ] {
            let width = config.commit_width as u64;
            let r = run(&bench, config);
            let s = &r.stats;
            assert_eq!(
                r.stall.total(),
                width * s.cycles - s.committed,
                "{}: stall slots must account for every lost commit slot",
                bench.name
            );
            assert_eq!(
                r.stall, s.stall,
                "{}: report carries the stats breakdown",
                bench.name
            );
        }
    }
}

#[test]
fn replay_squashes_are_bounded_by_replay_issues() {
    for bench in full_suite(0) {
        let r = run(
            &bench,
            SimConfig::default().with_packing(PackConfig::with_replay()),
        );
        assert!(
            r.stats.pack.replay_squashed <= r.stats.pack.replay_issued,
            "{}",
            bench.name
        );
    }
}

#[test]
fn zero_detect_on_loads_only_helps() {
    for bench in full_suite(0).into_iter().take(6) {
        let with = run(
            &bench,
            SimConfig::default().with_gating(GatingConfig::default()),
        );
        let mut cfg = SimConfig::default().with_gating(GatingConfig::default());
        cfg.zero_detect_loads = false;
        let without = run(&bench, cfg);
        assert!(
            with.power.reduction_percent >= without.power.reduction_percent - 1e-9,
            "{}: losing load zero-detect cannot increase savings",
            bench.name
        );
    }
}
