//! Co-simulation: the cycle-level out-of-order machine must commit
//! exactly the architected behaviour of the functional emulator, for
//! every benchmark and every machine configuration.

use nwo::core::{GatingConfig, PackConfig};
use nwo::isa::Emulator;
use nwo::sim::{SimConfig, Simulator};
use nwo::workloads::full_suite;

fn configs() -> Vec<(&'static str, SimConfig)> {
    vec![
        ("baseline", SimConfig::default()),
        ("perfect-bp", SimConfig::default().with_perfect_prediction()),
        (
            "gating",
            SimConfig::default().with_gating(GatingConfig::default()),
        ),
        (
            "packing",
            SimConfig::default().with_packing(PackConfig::default()),
        ),
        (
            "replay-packing",
            SimConfig::default().with_packing(PackConfig::with_replay()),
        ),
        ("wide-decode", SimConfig::default().with_wide_decode()),
        ("eight-issue", SimConfig::default().with_eight_issue()),
        (
            "packing-wide",
            SimConfig::default()
                .with_packing(PackConfig::with_replay())
                .with_wide_decode(),
        ),
        ("no-zdl", {
            let mut c = SimConfig::default().with_gating(GatingConfig::default());
            c.zero_detect_loads = false;
            c
        }),
    ]
}

#[test]
fn all_benchmarks_match_emulator_under_all_configs() {
    for bench in full_suite(0) {
        // The emulator is the reference semantics.
        let mut emu = Emulator::new(&bench.program);
        emu.run(1_000_000_000).expect("emulator halts");
        assert_eq!(
            emu.outq(),
            bench.expected.as_slice(),
            "{}: emulator vs reference implementation",
            bench.name
        );
        for (cfg_name, config) in configs() {
            let mut sim = Simulator::new(&bench.program, config);
            let report = sim
                .run(u64::MAX)
                .unwrap_or_else(|e| panic!("{} under {cfg_name}: {e}", bench.name));
            assert_eq!(
                report.out_quads, bench.expected,
                "{} under {cfg_name}: simulator diverged",
                bench.name
            );
            assert!(sim.finished(), "{} under {cfg_name} must halt", bench.name);
        }
    }
}

#[test]
fn warmup_then_run_still_matches() {
    for bench in full_suite(0).into_iter().take(4) {
        let mut sim = Simulator::new(&bench.program, SimConfig::default());
        sim.warmup(5_000).expect("warmup succeeds");
        let report = sim.run(u64::MAX).expect("runs");
        assert_eq!(
            report.out_quads, bench.expected,
            "{} after warmup",
            bench.name
        );
    }
}
