//! Stress configurations: tiny structural resources, hostile memory
//! ordering, and degraded machines must all preserve architected
//! behaviour.

#![allow(clippy::field_reassign_with_default)] // explicit Table 1 tweaks read better

use nwo::core::PackConfig;
use nwo::isa::{assemble, Emulator};
use nwo::sim::{SimConfig, Simulator};
use nwo::workloads::full_suite;

fn run_expect(src: &str, config: SimConfig, expected: &[u64]) {
    let program = assemble(src).expect("assembles");
    let mut sim = Simulator::new(&program, config);
    let report = sim.run(u64::MAX).expect("completes");
    assert_eq!(report.out_quads, expected);
}

#[test]
fn tiny_window_machines_stay_correct() {
    // A 4-entry RUU with a 2-entry LSQ forces structural stalls at every
    // stage; architected results must be unchanged.
    let mut tiny = SimConfig::default();
    tiny.ruu_size = 4;
    tiny.lsq_size = 2;
    tiny.ifq_size = 2;
    for bench in full_suite(0).into_iter().take(5) {
        let mut sim = Simulator::new(&bench.program, tiny.clone());
        let report = sim.run(u64::MAX).expect("tiny machine completes");
        assert_eq!(report.out_quads, bench.expected, "{}", bench.name);
    }
}

#[test]
fn tiny_window_with_packing_stays_correct() {
    let mut tiny = SimConfig::default().with_packing(PackConfig::with_replay());
    tiny.ruu_size = 6;
    tiny.lsq_size = 3;
    for bench in full_suite(0).into_iter().take(3) {
        let mut sim = Simulator::new(&bench.program, tiny.clone());
        let report = sim.run(u64::MAX).expect("completes");
        assert_eq!(report.out_quads, bench.expected, "{}", bench.name);
    }
}

#[test]
fn partial_store_overlap_is_ordered() {
    // A byte store into the middle of a quad, then a quad load: the
    // load must observe the merged value and must not deadlock even
    // though forwarding is impossible.
    let src = concat!(
        ".data\nbuf: .quad 0x1111111111111111\n.text\n",
        "main: la t0, buf\n",
        " li t1, 0xab\n",
        " stb t1, 3(t0)\n",
        " ldq t2, 0(t0)\n",
        " outq t2\n halt"
    );
    run_expect(src, SimConfig::default(), &[0x1111_1111_ab11_1111]);
}

#[test]
fn narrow_store_wide_load_chain() {
    // Interleaved sizes exercise every forwarding/wait path.
    let src = concat!(
        ".data\nbuf: .space 16\n.text\n",
        "main: la t0, buf\n",
        " li t1, 0x1234\n",
        " stw t1, 0(t0)\n",
        " stw t1, 2(t0)\n",
        " ldl t2, 0(t0)\n", // covered by neither word alone
        " li t3, -1\n",
        " stq t3, 8(t0)\n",
        " ldbu t4, 8(t0)\n", // covered: forwards
        " addq t2, t4, v0\n",
        " outq v0\n halt"
    );
    let program = assemble(src).unwrap();
    let mut emu = Emulator::new(&program);
    emu.run(1_000).unwrap();
    let expected = emu.outq().to_vec();
    run_expect(src, SimConfig::default(), &expected);
    run_expect(
        src,
        SimConfig::default().with_packing(PackConfig::with_replay()),
        &expected,
    );
}

#[test]
fn higher_mispredict_penalty_costs_cycles() {
    // A branch-heavy, hard-to-predict kernel: raising the redirect
    // penalty can only add cycles.
    let bench = full_suite(0)
        .into_iter()
        .find(|b| b.name == "go")
        .expect("go exists");
    let cheap = {
        let mut c = SimConfig::default();
        c.mispredict_penalty = 0;
        let mut sim = Simulator::new(&bench.program, c);
        sim.run(u64::MAX).unwrap()
    };
    let costly = {
        let mut c = SimConfig::default();
        c.mispredict_penalty = 10;
        let mut sim = Simulator::new(&bench.program, c);
        sim.run(u64::MAX).unwrap()
    };
    assert_eq!(cheap.out_quads, costly.out_quads);
    assert!(
        costly.stats.cycles > cheap.stats.cycles,
        "penalty 10 must cost more than penalty 0 ({} vs {})",
        costly.stats.cycles,
        cheap.stats.cycles
    );
}

#[test]
fn slow_memory_hurts_and_preserves_output() {
    let bench = full_suite(0)
        .into_iter()
        .find(|b| b.name == "xlisp")
        .expect("xlisp exists");
    let fast = {
        let mut sim = Simulator::new(&bench.program, SimConfig::default());
        sim.run(u64::MAX).unwrap()
    };
    let slow = {
        let mut c = SimConfig::default();
        c.hierarchy.l2 = None;
        c.hierarchy.memory_latency = 500;
        let mut sim = Simulator::new(&bench.program, c);
        sim.run(u64::MAX).unwrap()
    };
    assert_eq!(fast.out_quads, slow.out_quads);
    assert!(slow.stats.cycles >= fast.stats.cycles);
}

#[test]
fn divider_contention_is_modelled() {
    // Back-to-back divides serialise on the non-pipelined divider. Loop
    // enough times that the 20-cycle divide latency dominates the cold
    // I-cache misses of program startup.
    let body = |op: &str| {
        format!(
            concat!(
                "main: li t0, 1000\n li t1, 7\n li s0, 50\n",
                "loop: {op} t0, t1, t2\n {op} t0, t1, t3\n {op} t0, t1, t4\n",
                " addq t2, t3, v0\n addq v0, t4, v0\n",
                " subq s0, 1, s0\n bgt s0, loop\n",
                " outq v0\n halt"
            ),
            op = op
        )
    };
    let run = |src: &str| {
        let program = assemble(src).unwrap();
        let mut sim = Simulator::new(&program, SimConfig::default());
        sim.run(u64::MAX).unwrap().stats.cycles
    };
    let div_cycles = run(&body("divq"));
    let add_cycles = run(&body("addq"));
    // 50 iterations x 3 divides x 20 cycles on one divider ~ 3000 cycles.
    assert!(
        div_cycles >= add_cycles + 50 * 2 * 20,
        "divides must serialise on one divider ({div_cycles} vs {add_cycles})"
    );
}

#[test]
fn single_wide_fetch_degrades_gracefully() {
    let mut narrow = SimConfig::default();
    narrow.fetch_width = 1;
    narrow.decode_width = 1;
    narrow.issue_width = 1;
    narrow.commit_width = 1;
    narrow.int_alus = 1;
    for bench in full_suite(0).into_iter().take(3) {
        let base = {
            let mut sim = Simulator::new(&bench.program, SimConfig::default());
            sim.run(u64::MAX).unwrap()
        };
        let scalar = {
            let mut sim = Simulator::new(&bench.program, narrow.clone());
            sim.run(u64::MAX).unwrap()
        };
        assert_eq!(base.out_quads, scalar.out_quads, "{}", bench.name);
        assert!(
            scalar.stats.cycles > base.stats.cycles,
            "{}: a scalar machine must be slower",
            bench.name
        );
        assert!(scalar.ipc() <= 1.0 + 1e-9, "{}", bench.name);
    }
}
