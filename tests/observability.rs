//! Observability pipeline: trace-event ordering over random programs,
//! JSONL stream parseability, and stability of the `--json` snapshot
//! against a golden key schema.

use std::fmt::Write as _;
use std::path::PathBuf;

use nwo::core::PackConfig;
use nwo::isa::{assemble, Opcode, Program};
use nwo::sim::obs::{json, JsonlSink};
use nwo::sim::{SimConfig, Simulator};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    /// Operate-format op over two of the low registers.
    Op(Opcode, u8, u8, u8),
    /// Operate-literal form.
    OpLit(Opcode, u8, u8, u8),
    /// Store a register to the scratch buffer, then load it back.
    StoreLoad(u8, u8, u8),
}

fn alu_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(vec![
        Opcode::Addq,
        Opcode::Subq,
        Opcode::Addl,
        Opcode::And,
        Opcode::Bis,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Cmplt,
        Opcode::Mulq,
        Opcode::Sextb,
        Opcode::Sextw,
    ])
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (alu_opcode(), 0u8..8, 0u8..8, 0u8..8).prop_map(|(op, a, b, c)| Step::Op(op, a, b, c)),
        (alu_opcode(), 0u8..8, 0u8..=255, 0u8..8)
            .prop_map(|(op, a, l, c)| Step::OpLit(op, a, l, c)),
        (0u8..8, 0u8..8, 0u8..8).prop_map(|(src, dst, slot)| Step::StoreLoad(src, dst, slot)),
    ]
}

/// Builds a looped program: seed r1..r8, run the body `iters` times
/// (the backward branch exercises prediction and recovery events),
/// then outq every register.
fn build_program(seeds: &[i32], steps: &[Step], iters: u8) -> Program {
    let mut src = String::from(".data\nscratch: .space 128\n.text\nmain:\n");
    let _ = writeln!(src, "    la   a0, scratch");
    for (i, &v) in seeds.iter().enumerate() {
        let _ = writeln!(src, "    li   r{reg}, {v}", reg = i + 1);
    }
    let _ = writeln!(src, "    li   r9, {iters}");
    src.push_str("loop:\n");
    for s in steps {
        match s {
            Step::Op(op, a, b, c) => {
                let _ = writeln!(
                    src,
                    "    {} r{}, r{}, r{}",
                    op.mnemonic(),
                    a + 1,
                    b + 1,
                    c + 1
                );
            }
            Step::OpLit(op, a, lit, c) => {
                let _ = writeln!(
                    src,
                    "    {} r{}, #{}, r{}",
                    op.mnemonic(),
                    a + 1,
                    lit,
                    c + 1
                );
            }
            Step::StoreLoad(srcr, dst, slot) => {
                let _ = writeln!(src, "    stq  r{}, {}(a0)", srcr + 1, *slot as u32 * 8);
                let _ = writeln!(src, "    ldq  r{}, {}(a0)", dst + 1, *slot as u32 * 8);
            }
        }
    }
    src.push_str("    subq r9, 1, r9\n    bgt  r9, loop\n");
    for i in 1..=8 {
        let _ = writeln!(src, "    outq r{i}");
    }
    src.push_str("    halt\n");
    assemble(&src).expect("generated program must assemble")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every committed instruction's stage timestamps are ordered
    /// `fetched <= dispatched <= issued <= completed <= committed`,
    /// commits retire in order, and sequence numbers are dense — on
    /// arbitrary programs under every machine configuration.
    #[test]
    fn commit_records_are_stage_ordered(
        seeds in prop::collection::vec(-100_000i32..100_000, 8),
        steps in prop::collection::vec(step(), 1..40),
        iters in 1u8..6,
    ) {
        let program = build_program(&seeds, &steps, iters);
        for config in [
            SimConfig::default(),
            SimConfig::default().with_packing(PackConfig::with_replay()),
            SimConfig::default().with_eight_issue(),
        ] {
            let mut sim = Simulator::new(&program, config.with_trace(1 << 14));
            let report = sim.run(u64::MAX).expect("simulator halts");
            let commits = sim.trace_commits();
            prop_assert_eq!(commits.len() as u64, report.stats.committed.min(1 << 14));
            for (i, r) in commits.iter().enumerate() {
                prop_assert_eq!(r.seq, i as u64, "sequence numbers are dense");
                prop_assert!(r.fetched_at <= r.dispatched_at, "F<=D at seq {}", r.seq);
                prop_assert!(r.dispatched_at <= r.issued_at, "D<=I at seq {}", r.seq);
                prop_assert!(r.issued_at <= r.completed_at, "I<=X at seq {}", r.seq);
                prop_assert!(r.completed_at <= r.committed_at, "X<=C at seq {}", r.seq);
            }
            for pair in commits.windows(2) {
                prop_assert!(pair[0].committed_at <= pair[1].committed_at, "in-order commit");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Streaming a run through a [`JsonlSink`] yields one parseable JSON
    /// object per line, with known event discriminators, non-decreasing
    /// cycles, and exactly one `commit` line per committed instruction.
    #[test]
    fn jsonl_stream_is_parseable(
        seeds in prop::collection::vec(-100_000i32..100_000, 8),
        steps in prop::collection::vec(step(), 1..30),
        iters in 1u8..5,
    ) {
        const KNOWN: [&str; 8] = [
            "fetch", "dispatch", "issue", "pack", "replay_squash",
            "writeback", "branch_mispredict", "commit",
        ];
        let program = build_program(&seeds, &steps, iters);
        let path = std::env::temp_dir().join(format!("nwo-obs-prop-{}.jsonl", std::process::id()));
        let mut sim = Simulator::new(&program, SimConfig::default().with_packing(PackConfig::with_replay()));
        sim.set_trace_sink(Box::new(JsonlSink::create(&path).expect("temp file")));
        let report = sim.run(u64::MAX).expect("simulator halts");
        drop(sim); // flush on drop, like the CLI at exit

        let text = std::fs::read_to_string(&path).expect("trace file readable");
        let _ = std::fs::remove_file(&path);
        let mut last_cycle = 0u64;
        let mut commits = 0u64;
        for (n, line) in text.lines().enumerate() {
            let v = json::parse(line)
                .unwrap_or_else(|e| panic!("line {}: {e}: {line}", n + 1));
            let ev = v.get("ev").and_then(|e| e.as_str()).expect("ev field");
            prop_assert!(KNOWN.contains(&ev), "unknown event {ev:?}");
            let cycle = v.get("cycle").and_then(|c| c.as_u64()).expect("cycle field");
            prop_assert!(cycle >= last_cycle, "cycles never rewind in the stream");
            last_cycle = cycle;
            if ev == "commit" {
                commits += 1;
                prop_assert!(v.get("seq").and_then(|s| s.as_u64()).is_some());
            }
        }
        prop_assert_eq!(commits, report.stats.committed, "one commit line per retired op");
    }
}

/// A fixed, fully deterministic kernel for the golden snapshot test.
fn golden_program() -> Program {
    assemble(
        r#"
        .data
        buf: .space 256
        .text
        main:
            la   a0, buf
            li   t0, 0
            li   t1, 32
        loop:
            and  t0, 255, t2
            stq  t2, 0(a0)
            ldq  t3, 0(a0)
            addq t0, t3, t0
            addq a0, 8, a0
            subq t1, 1, t1
            bgt  t1, loop
            outq t0
            halt
    "#,
    )
    .expect("golden kernel assembles")
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/snapshot.keys")
}

/// The `--json` snapshot is byte-stable across identical runs, parses
/// with the crate's own JSON parser, agrees with the report, and its
/// key schema matches the checked-in golden list.
#[test]
fn snapshot_json_is_stable_and_parseable() {
    let program = golden_program();
    let run_once = || {
        let mut sim = Simulator::new(&program, SimConfig::default());
        let report = sim.run(u64::MAX).expect("halts");
        (sim.snapshot(), report)
    };
    let (snap, report) = run_once();
    let (snap2, _) = run_once();
    let js = snap.to_json();
    assert_eq!(
        js,
        snap2.to_json(),
        "identical runs must serialize identically"
    );

    let v = json::parse(&js).expect("snapshot JSON parses");
    let s = &report.stats;
    assert_eq!(v.get("sim.cycles").and_then(|x| x.as_u64()), Some(s.cycles));
    assert_eq!(
        v.get("sim.committed").and_then(|x| x.as_u64()),
        Some(s.committed)
    );
    assert_eq!(
        v.get("stall.total").and_then(|x| x.as_u64()),
        Some(4 * s.cycles - s.committed),
        "snapshot carries the exact lost-slot conservation total"
    );
    assert!(v.get("mem.l1d.hits").and_then(|x| x.as_u64()).unwrap_or(0) > 0);
    // The Fig 1 operand-width distribution rides along as a histogram.
    let width = v.get("width.committed").expect("width histogram exported");
    assert!(
        width.get("count").and_then(|x| x.as_u64()).unwrap_or(0) > 0,
        "committed-width histogram must carry the Fig 1 distribution"
    );
    assert!(
        width.get("buckets").is_some(),
        "histogram JSON exposes per-bit-width buckets"
    );
    assert!(
        v.get("power.baseline_mw_per_cycle")
            .and_then(|x| x.as_f64())
            .unwrap_or(0.0)
            > 0.0
    );

    // The key schema is the machine-readable contract: consumers index
    // by name, so adding keys is fine but renaming/removing is a break.
    // Regenerate with the command in the assertion message.
    let actual: String = snap.iter().map(|(k, _)| format!("{k}\n")).collect();
    if std::env::var_os("NWO_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path().parent().expect("has parent")).expect("mkdir");
        std::fs::write(golden_path(), &actual).expect("write golden");
    }
    let golden = std::fs::read_to_string(golden_path())
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path().display()));
    assert_eq!(
        actual, golden,
        "snapshot key schema drifted from tests/golden/snapshot.keys; if \
         intentional, update the golden file to the keys printed above"
    );
}

/// A retaining sink sized above the program's commit count must capture
/// every commit — no phantom records, no premature wrap — and the
/// pipeline diagram must render the complete, short trace.
#[test]
fn ring_sink_and_pipeview_handle_fewer_commits_than_capacity() {
    use nwo::sim::obs::{pipeview, RingSink};

    let program = golden_program();
    for sink in [RingSink::keep_first(1 << 14), RingSink::keep_last(1 << 14)] {
        let mut sim = Simulator::new(&program, SimConfig::default());
        sim.set_trace_sink(Box::new(sink));
        let report = sim.run(u64::MAX).expect("halts");
        let commits = sim.trace_commits();
        assert!(
            (commits.len() as u64) < (1 << 14),
            "kernel must be smaller than the ring for this test"
        );
        assert_eq!(
            commits.len() as u64,
            report.stats.committed,
            "a half-empty ring holds exactly the committed records"
        );
        for (i, r) in commits.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "records stay dense and ordered");
        }

        let diagram = pipeview::render(&commits, &|_, raw| {
            nwo::isa::Instr::decode(raw)
                .map(|ins| ins.to_string())
                .unwrap_or_else(|_| format!("{raw:08x}"))
        });
        assert!(!diagram.is_empty());
        assert!(
            diagram.contains("addq"),
            "diagram disassembles the kernel body:\n{diagram}"
        );
    }
}

/// Fixed name pool for the span-nesting property (the span API takes
/// `&'static str`); the `pt-` prefix keeps these events distinguishable
/// from spans recorded by other tests in this process.
const PT_NAMES: [&str; 4] = ["pt-a", "pt-b", "pt-c", "pt-d"];

/// Interprets a random action tape as a span tree: values 0..4 open a
/// guard for the matching [`PT_NAMES`] entry (depth-capped), 4 closes
/// the innermost open guard. Leftover guards unwind innermost-first,
/// exactly like scope exit.
fn exec_span_actions(actions: &[u8]) {
    let mut guards = Vec::new();
    for &a in actions {
        match a {
            0..=3 if guards.len() < 6 => {
                guards.push(nwo::sim::obs::span::span(PT_NAMES[a as usize]));
            }
            4 => drop(guards.pop()),
            _ => {}
        }
    }
    while let Some(g) = guards.pop() {
        drop(g);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// RAII span guards produce well-formed trees: on one thread, any
    /// two recorded spans are either disjoint in time or properly
    /// nested, and a nested span's aggregate path extends its
    /// enclosing span's path — for arbitrary nesting shapes.
    #[test]
    fn span_events_nest_without_overlap(
        actions in prop::collection::vec(0u8..5, 1..48),
    ) {
        use nwo::sim::obs::span;

        span::enable(true);
        // Drain events left over from the previous case (and from any
        // concurrently profiling test in this process).
        let _ = span::report();

        // Guarantee at least one recorded span whatever the tape says.
        exec_span_actions(&[0]);
        exec_span_actions(&actions);

        let events: Vec<_> = span::report()
            .events
            .into_iter()
            .filter(|e| e.name.starts_with("pt-"))
            .collect();
        prop_assert!(!events.is_empty(), "the tree recorded at least its root");
        let tid = events[0].tid;
        for e in &events {
            prop_assert_eq!(e.tid, tid, "single-threaded case, single tid");
        }

        for (i, a) in events.iter().enumerate() {
            let (a0, a1) = (a.start_ns, a.start_ns + a.dur_ns);
            for b in &events[i + 1..] {
                let (b0, b1) = (b.start_ns, b.start_ns + b.dur_ns);
                let disjoint = a1 <= b0 || b1 <= a0;
                let a_in_b = b0 <= a0 && a1 <= b1;
                let b_in_a = a0 <= b0 && b1 <= a1;
                prop_assert!(
                    disjoint || a_in_b || b_in_a,
                    "spans overlap without nesting: {:?} [{a0},{a1}] vs {:?} [{b0},{b1}]",
                    a.path, b.path
                );
                // Containment in time must match containment in the
                // aggregate path (same-path spans are sequential
                // re-entries, handled by the disjoint arm).
                if a_in_b && !disjoint && a.path != b.path {
                    prop_assert!(
                        a.path.starts_with(&format!("{}/", b.path)),
                        "{:?} runs inside {:?} but is not its descendant",
                        a.path, b.path
                    );
                }
                if b_in_a && !disjoint && a.path != b.path {
                    prop_assert!(
                        b.path.starts_with(&format!("{}/", a.path)),
                        "{:?} runs inside {:?} but is not its descendant",
                        b.path, a.path
                    );
                }
            }
        }

        // Children never outlive their parent: every event with a
        // nested path fits inside some event carrying the parent path.
        for e in &events {
            if let Some(parent_path) = e.path.rfind('/').map(|cut| &e.path[..cut]) {
                let inside_parent = events.iter().any(|p| {
                    p.path == parent_path
                        && p.start_ns <= e.start_ns
                        && e.start_ns + e.dur_ns <= p.start_ns + p.dur_ns
                });
                prop_assert!(
                    inside_parent,
                    "{:?} has no enclosing {:?} event",
                    e.path,
                    parent_path
                );
            }
        }
    }
}
