//! The cycle-level out-of-order pipeline: fetch → dispatch (RUU/LSQ
//! allocation, renaming, width tagging) → out-of-order issue (with
//! operation packing) → execute/writeback (with replay squash and
//! misprediction recovery) → in-order commit.
//!
//! Stage order within a cycle is commit, writeback, issue, dispatch,
//! fetch — the SimpleScalar reverse-pipeline walk, which lets a value
//! written back in cycle *t* feed an instruction issuing in cycle *t*.

use crate::config::{Optimization, PredictorChoice, SimConfig};
use crate::frontend::Frontend;
use crate::stats::SimStats;
use nwo_bpred::{ControlInfo, DirLookup, Predictor, RasCheckpoint};
use nwo_core::{
    can_pack, gate_level, replay_candidate, replay_mispredicts, GateLevel, WideOperand, WidthTag,
};
use nwo_isa::{access_bytes, ExecRecord, Format, OpClass, Opcode, OperandB, Program, Reg};
use nwo_mem::Hierarchy;
use nwo_obs::{
    CommitRecord, NullSink, RingSink, StallBreakdown, StallCause, TraceEvent, TraceSink,
};
use nwo_verify::{DatapathFault, DivergenceReport, OracleChecker};
use std::collections::VecDeque;
use std::fmt;

/// Errors the simulator can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The correct path fetched an undecodable or out-of-text PC.
    BadFetch {
        /// The faulting PC.
        pc: u64,
    },
    /// No instruction committed for a very long time — a modelling bug,
    /// never expected on well-formed programs. Carries a diagnostic
    /// snapshot so the hang is debuggable from the error alone.
    Deadlock {
        /// The cycle at which the deadlock was declared.
        cycle: u64,
        /// Machine state at the moment the deadlock was declared.
        snapshot: Box<DeadlockSnapshot>,
    },
    /// The configured `max_cycles` limit was reached.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// The lockstep oracle ([`SimConfig::verify`]) caught the core
    /// retiring architectural state that disagrees with the reference
    /// emulator.
    Divergence(Box<DivergenceReport>),
}

/// Diagnostic state attached to [`SimError::Deadlock`]: where commit
/// stopped, what the stall attribution says, and the last committed
/// instructions' pipeline diagram (when a retaining trace sink is
/// installed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockSnapshot {
    /// Cycle of the last successful commit.
    pub last_commit_cycle: u64,
    /// Stall-cycle attribution accumulated up to the deadlock.
    pub stall: StallBreakdown,
    /// Description of the window-head instruction blocking commit
    /// (`None` when the window is empty).
    pub head: Option<String>,
    /// Pipeview rendering of the most recent retained commit records
    /// (empty without a retaining sink).
    pub pipeview: String,
}

impl fmt::Display for DeadlockSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "last commit at cycle {}", self.last_commit_cycle)?;
        match &self.head {
            Some(head) => writeln!(f, "window head: {head}")?,
            None => writeln!(f, "window head: <empty window>")?,
        }
        let mut causes: Vec<(StallCause, u64)> =
            self.stall.iter().filter(|&(_, n)| n > 0).collect();
        causes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.name().cmp(b.0.name())));
        write!(f, "stall slots so far:")?;
        for (cause, slots) in causes.iter().take(4) {
            write!(f, " {cause}={slots}")?;
        }
        writeln!(f)?;
        write!(f, "{}", self.pipeview)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadFetch { pc } => write!(f, "invalid instruction fetch at {pc:#x}"),
            SimError::Deadlock { cycle, snapshot } => {
                writeln!(f, "pipeline deadlock detected at cycle {cycle}")?;
                write!(f, "{snapshot}")
            }
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} reached"),
            SimError::Divergence(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for SimError {}

/// One committed instruction's flow through the pipeline (SimpleScalar's
/// `ptrace`). Cycles are absolute; `fetched_at <= dispatched_at <=
/// issued_at < completed_at <= committed_at` always holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Instruction address.
    pub pc: u64,
    /// The decoded instruction.
    pub instr: nwo_isa::Instr,
    /// Cycle the instruction entered the fetch queue.
    pub fetched_at: u64,
    /// Cycle it was dispatched into the RUU.
    pub dispatched_at: u64,
    /// Cycle it (last) began execution.
    pub issued_at: u64,
    /// Cycle its result was written back.
    pub completed_at: u64,
    /// Cycle it retired.
    pub committed_at: u64,
    /// Issued as a member of a packed group (Section 5).
    pub packed: bool,
    /// Was squashed at least once by a replay-packing carry (Section 5.3).
    pub replayed: bool,
}

/// An instruction in the fetch queue.
#[derive(Debug, Clone)]
struct Fetched {
    rec: ExecRecord,
    spec: bool,
    mispredicted: bool,
    cinfo: Option<ControlInfo>,
    ras_cp: Option<RasCheckpoint>,
    dir_lookup: Option<DirLookup>,
    fetched_at: u64,
}

/// One RUU (register update unit) entry.
#[derive(Debug, Clone)]
struct RuuEntry {
    seq: u64,
    rec: ExecRecord,
    class: OpClass,
    spec: bool,
    // Dependency state.
    idep_remaining: u8,
    odeps: Vec<u64>,
    // Operand metadata for gating/packing.
    tag_a: WidthTag,
    tag_b: WidthTag,
    from_load: bool,
    // Timing state.
    fetched_at: u64,
    dispatched_at: u64,
    issued_at: u64,
    earliest_issue: u64,
    issued: bool,
    in_group: bool,
    completed: bool,
    complete_at: u64,
    /// Load that went to the hierarchy and missed in L1D (its in-flight
    /// cycles are charged to [`StallCause::DcacheMiss`] when it blocks
    /// commit).
    dmiss: bool,
    // Control state.
    mispredicted: bool,
    cinfo: Option<ControlInfo>,
    ras_cp: Option<RasCheckpoint>,
    dir_lookup: Option<DirLookup>,
    // Memory state: the in-flight producer of a store's base register,
    // if any. The store's address is considered computed once this
    // producer completes (split STA/STD, as in the Alpha 21264).
    store_base_producer: Option<u64>,
    // Packing state.
    replay_wide: Option<WideOperand>,
    replay_attempted: bool,
    exec_stats_counted: bool,
    // Result metadata.
    result_tag_known: bool,
}

impl RuuEntry {
    fn is_store(&self) -> bool {
        self.class == OpClass::Store
    }

    fn is_load(&self) -> bool {
        self.class == OpClass::Load
    }

    fn ready(&self) -> bool {
        self.idep_remaining == 0 && !self.issued && !self.completed
    }

    fn dest(&self) -> Option<Reg> {
        self.rec.dest.filter(|r| !r.is_zero())
    }
}

/// What the issue stage decided to do with a load this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadAction {
    /// Blocked behind a store with an unknown address or partial overlap.
    Wait,
    /// Forward from the given completed store.
    Forward,
    /// Access the data cache.
    Access,
}

/// The full machine state for one simulation.
pub struct Machine {
    pub(crate) config: SimConfig,
    frontend: Frontend,
    predictor: Option<Predictor>,
    hierarchy: Hierarchy,
    // Pipeline structures.
    ifq: VecDeque<Fetched>,
    window: VecDeque<RuuEntry>,
    lsq: VecDeque<u64>,
    rename: [Option<u64>; 32],
    committed_tag_known: [bool; 32],
    /// Per-PC 2-bit confidence for replay packing: replay traps are
    /// expensive, so the issue logic stops speculating on instructions
    /// whose low-16-bit carries keep rippling (e.g. accumulators with
    /// random low bits). Address arithmetic stays confident. This is an
    /// extension beyond the paper, which assumes carries are "relatively
    /// infrequent" — true for addresses, not for every add.
    replay_confidence: std::collections::HashMap<u64, u8>,
    committed_from_load: [bool; 32],
    next_seq: u64,
    // Timing state.
    pub(crate) cycle: u64,
    fetch_resume: u64,
    /// Why fetch is paused until `fetch_resume` — the cause empty-window
    /// commit cycles are charged to while the pause lasts.
    fetch_stall: StallCause,
    muldiv_busy_until: u64,
    last_commit_cycle: u64,
    pub(crate) done: bool,
    // Architected output (written at commit).
    out_bytes: Vec<u8>,
    out_quads: Vec<u64>,
    sink: Box<dyn TraceSink>,
    /// Lockstep architectural oracle ([`SimConfig::verify`]): a second
    /// functional emulator advanced and compared at every commit.
    oracle: Option<OracleChecker>,
    /// One armed deterministic datapath fault (fault campaigns): fires
    /// at the first eligible commit, flipping a gated upper bit of the
    /// retired value.
    pending_fault: Option<DatapathFault>,
    // Statistics.
    pub(crate) stats: SimStats,
    /// Per-PC lost-commit-slot attribution (`--stall-detail`): when
    /// enabled, every slot charged to the global [`SimStats::stall`]
    /// breakdown is also charged to the PC of the instruction at the
    /// head of the window (or the fetch PC when the window is empty).
    stall_pcs: Option<std::collections::HashMap<u64, nwo_obs::StallBreakdown>>,
    /// Interval statistics (`--interval-stats N`): every `0.every`
    /// cycles the full metrics snapshot is appended to `0.sink` as one
    /// JSONL line.
    interval: Option<(u64, nwo_obs::JsonlSink<Box<dyn std::io::Write>>)>,
    /// Interval telemetry (`--telemetry-out`): compact per-interval
    /// delta samples, distinct from the cumulative `interval` stream.
    telemetry: Option<Telemetry>,
    /// Deterministic phase counters exported as the `prof.*` snapshot
    /// group. Deliberately machine-local (never read from the global
    /// profiler) so snapshots stay byte-identical between runs even
    /// when other threads are profiling.
    phase: PhaseCounters,
    /// Wall time spent in oracle commit checks during the current
    /// `run`, batched here (one `Instant` pair per commit is the whole
    /// cost) and flushed once per run to the span profiler as an
    /// `oracle-step` child — a per-commit `SpanGuard` would swamp the
    /// measurement with its own bookkeeping.
    oracle_span_ns: u64,
    oracle_span_checks: u64,
}

/// Deterministic lifetime counters behind the `prof.*` snapshot group.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseCounters {
    warmup_calls: u64,
    warmup_insts: u64,
    run_calls: u64,
    ckpt_restores: u64,
}

/// State of the `--telemetry-out` stream: the sink plus the previous
/// sample's cumulative values, so each emitted line carries deltas
/// over its interval rather than run-to-date totals.
struct Telemetry {
    every: u64,
    sink: nwo_obs::JsonlSink<Box<dyn std::io::Write>>,
    samples: u64,
    last_cycle: u64,
    last_committed: u64,
    last_stall: nwo_obs::StallBreakdown,
    last_width: crate::stats::WidthHistogram,
    /// Cumulative (baseline, gated) mW·cycle sums at the last sample.
    last_power: (f64, f64),
}

/// Deciles (p10..p90) of the operand-width distribution over one
/// telemetry interval: `now - last` per width bucket, then for each
/// decile `d` the smallest width whose cumulative interval count
/// reaches `d/10` of the interval total. All zeros for an empty
/// interval.
fn width_deciles(
    now: &crate::stats::WidthHistogram,
    last: &crate::stats::WidthHistogram,
) -> [u32; 9] {
    let mut delta = [0u64; 65];
    let mut total = 0u64;
    for (n, d) in delta.iter_mut().enumerate() {
        *d = now.at(n as u32).saturating_sub(last.at(n as u32));
        total += *d;
    }
    let mut out = [0u32; 9];
    if total == 0 {
        return out;
    }
    let mut cum = 0u64;
    let mut next = 0usize;
    for (n, d) in delta.iter().enumerate() {
        cum += d;
        while next < 9 && cum * 10 >= total * (next as u64 + 1) {
            out[next] = n as u32;
            next += 1;
        }
        if next == 9 {
            break;
        }
    }
    out
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cycle", &self.cycle)
            .field("committed", &self.stats.committed)
            .field("window", &self.window.len())
            .field("done", &self.done)
            .finish()
    }
}

impl Machine {
    /// Builds a machine for `program` under `config`.
    ///
    /// # Panics
    ///
    /// Panics on a structurally invalid configuration; validate with
    /// [`SimConfig::validate`] first when the config comes from user
    /// input.
    pub fn new(program: &Program, config: SimConfig) -> Machine {
        if let Err(e) = config.validate() {
            panic!("invalid SimConfig: {e}");
        }
        let predictor = match config.predictor {
            PredictorChoice::Perfect => None,
            PredictorChoice::Real(p) => Some(Predictor::new(p)),
        };
        // `trace_limit` keeps its historic meaning: retain the first N
        // committed instructions in memory.
        let sink: Box<dyn TraceSink> = if config.trace_limit > 0 {
            Box::new(RingSink::keep_first(config.trace_limit))
        } else {
            Box::new(NullSink)
        };
        Machine {
            frontend: Frontend::new(program),
            predictor,
            hierarchy: Hierarchy::new(config.hierarchy),
            ifq: VecDeque::with_capacity(config.ifq_size),
            window: VecDeque::with_capacity(config.ruu_size),
            lsq: VecDeque::with_capacity(config.lsq_size),
            rename: [None; 32],
            committed_tag_known: [true; 32],
            replay_confidence: std::collections::HashMap::new(),
            committed_from_load: [false; 32],
            next_seq: 0,
            cycle: 0,
            fetch_resume: 0,
            fetch_stall: StallCause::Frontend,
            muldiv_busy_until: 0,
            last_commit_cycle: 0,
            done: false,
            out_bytes: Vec::new(),
            out_quads: Vec::new(),
            sink,
            oracle: config.verify.then(|| OracleChecker::new(program)),
            pending_fault: None,
            stats: SimStats::default(),
            stall_pcs: None,
            interval: None,
            telemetry: None,
            phase: PhaseCounters::default(),
            oracle_span_ns: 0,
            oracle_span_checks: 0,
            config,
        }
    }

    /// Commits checked by the lockstep oracle so far (`None` when
    /// [`SimConfig::verify`] is off).
    pub fn oracle_checked(&self) -> Option<u64> {
        self.oracle.as_ref().map(OracleChecker::checked)
    }

    /// Arms one deterministic datapath fault: at the first commit
    /// at-or-after its index that retires a result or store value, a
    /// gated upper bit of that value is flipped. With
    /// [`SimConfig::verify`] on, the oracle must report the corruption
    /// as a [`SimError::Divergence`] — the fault-campaign contract.
    pub fn inject_datapath_fault(&mut self, fault: DatapathFault) {
        self.pending_fault = Some(fault);
    }

    /// Flips one bit of branch-predictor state (a direction counter
    /// chosen from `entropy`). Predictor state is micro-architectural:
    /// the run must still produce correct output, merely slower —
    /// graceful degradation. Returns false when nothing could be
    /// flipped (perfect prediction or a static predictor).
    pub fn inject_predictor_fault(&mut self, entropy: u64) -> bool {
        match self.predictor.as_mut() {
            Some(p) => p.flip_state_bit(entropy),
            None => false,
        }
    }

    /// Bytes emitted by committed `outb` instructions.
    pub fn out_bytes(&self) -> &[u8] {
        &self.out_bytes
    }

    /// Quadwords emitted by committed `outq` instructions.
    pub fn out_quads(&self) -> &[u64] {
        &self.out_quads
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The pipeline trace retained so far (empty unless
    /// `SimConfig::trace_limit` is set or a retaining sink is installed),
    /// decoded into [`TraceRecord`]s.
    pub fn trace(&self) -> Vec<TraceRecord> {
        self.trace_commits()
            .iter()
            .map(|r| TraceRecord {
                pc: r.pc,
                instr: nwo_isa::Instr::decode(r.raw).expect("trace records hold valid encodings"),
                fetched_at: r.fetched_at,
                dispatched_at: r.dispatched_at,
                issued_at: r.issued_at,
                completed_at: r.completed_at,
                committed_at: r.committed_at,
                packed: r.packed,
                replayed: r.replayed,
            })
            .collect()
    }

    /// The raw commit records retained by the trace sink.
    pub fn trace_commits(&self) -> Vec<CommitRecord> {
        self.sink.retained()
    }

    /// Replaces the trace sink (e.g. with a [`nwo_obs::JsonlSink`] for
    /// streaming, O(1)-memory tracing of arbitrarily long runs). The
    /// previous sink is flushed and returned.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) -> Box<dyn TraceSink> {
        let mut old = std::mem::replace(&mut self.sink, sink);
        old.flush();
        old
    }

    /// Flushes the trace sink (also done at the end of every `run`).
    pub fn flush_trace(&mut self) {
        self.sink.flush();
    }

    /// Memory hierarchy statistics.
    pub fn hierarchy_stats(&self) -> nwo_mem::HierarchyStats {
        self.hierarchy.stats()
    }

    /// Predictor statistics (absent under perfect prediction).
    pub fn predictor_stats(&self) -> Option<nwo_bpred::PredictorStats> {
        self.predictor.as_ref().map(|p| p.stats())
    }

    /// Turns on per-PC lost-commit-slot attribution (`--stall-detail`).
    /// Costs one hash-map update per under-width commit cycle; off by
    /// default.
    pub fn enable_stall_detail(&mut self) {
        self.stall_pcs.get_or_insert_with(Default::default);
    }

    /// The per-PC stall breakdowns collected so far (`None` unless
    /// [`Machine::enable_stall_detail`] was called before running).
    pub fn stall_detail(&self) -> Option<&std::collections::HashMap<u64, nwo_obs::StallBreakdown>> {
        self.stall_pcs.as_ref()
    }

    /// Streams a full metrics [`nwo_obs::Snapshot`] to `out` as one JSON
    /// line every `every` cycles of [`Machine::run`]. `every == 0`
    /// disables the stream.
    pub fn set_interval_stats(&mut self, every: u64, out: Box<dyn std::io::Write>) {
        self.interval = (every > 0).then(|| (every, nwo_obs::JsonlSink::new(out)));
    }

    /// Streams one compact telemetry sample to `out` as a JSON line
    /// every `every` cycles of [`Machine::run`]: cycle, interval IPC,
    /// per-cause stall deltas, interval power, and deciles of the
    /// committed operand-width distribution — each value a **delta
    /// over the interval** (the cumulative counterpart is
    /// [`Machine::set_interval_stats`]). `every == 0` disables the
    /// stream.
    pub fn set_telemetry(&mut self, every: u64, out: Box<dyn std::io::Write>) {
        self.telemetry = (every > 0).then(|| Telemetry {
            every,
            sink: nwo_obs::JsonlSink::new(out),
            samples: 0,
            last_cycle: 0,
            last_committed: 0,
            last_stall: nwo_obs::StallBreakdown::default(),
            last_width: crate::stats::WidthHistogram::new(),
            last_power: (0.0, 0.0),
        });
    }

    /// Emits one telemetry sample and rolls the delta baseline forward.
    fn emit_telemetry(&mut self) {
        let Some(mut t) = self.telemetry.take() else {
            return;
        };
        let line = self.telemetry_line(&mut t);
        t.sink.write_line(&line);
        t.samples += 1;
        self.telemetry = Some(t);
    }

    /// Builds the JSON line for one telemetry sample, updating the
    /// stream's last-sample baselines in the process.
    fn telemetry_line(&self, t: &mut Telemetry) -> String {
        use std::fmt::Write as _;
        let cycle = self.cycle;
        let committed = self.stats.committed;
        let dcycles = cycle.saturating_sub(t.last_cycle);
        let dcommit = committed.saturating_sub(t.last_committed);
        let ipc = if dcycles > 0 {
            dcommit as f64 / dcycles as f64
        } else {
            0.0
        };
        // The power accumulator exposes per-cycle averages; multiplying
        // back by the cycle count recovers the cumulative mW·cycle sums
        // this stream diffs between samples.
        let pr = self.stats.power.report(cycle.max(1));
        let base_sum = pr.baseline_mw_per_cycle * cycle as f64;
        let gated_sum = pr.gated_mw_per_cycle * cycle as f64;
        let denom = dcycles.max(1) as f64;
        let baseline_mw = (base_sum - t.last_power.0) / denom;
        let gated_mw = (gated_sum - t.last_power.1) / denom;

        let mut line = String::with_capacity(256);
        let _ = write!(
            line,
            "{{\"t\": \"telemetry\", \"cycle\": {cycle}, \"committed\": {committed}, \
             \"interval_cycles\": {dcycles}, \"interval_committed\": {dcommit}, \"ipc\": "
        );
        nwo_obs::json::write_f64(&mut line, ipc);
        line.push_str(", \"stall\": {");
        for (i, (cause, now)) in self.stats.stall.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            let delta = now.saturating_sub(t.last_stall.get(cause));
            let _ = write!(line, "\"{}\": {delta}", cause.name());
        }
        line.push_str("}, \"power_mw\": {\"baseline\": ");
        nwo_obs::json::write_f64(&mut line, baseline_mw);
        line.push_str(", \"gated\": ");
        nwo_obs::json::write_f64(&mut line, gated_mw);
        line.push_str("}, \"width_deciles\": [");
        let deciles = width_deciles(&self.stats.width_committed, &t.last_width);
        for (i, d) in deciles.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            let _ = write!(line, "{d}");
        }
        line.push_str("]}");

        t.last_cycle = cycle;
        t.last_committed = committed;
        t.last_stall = self.stats.stall.clone();
        t.last_width = self.stats.width_committed.clone();
        t.last_power = (base_sum, gated_sum);
        line
    }

    /// Serializes the machine's warmed state into a versioned checkpoint
    /// container: a `meta` identity section (warm-state config
    /// fingerprint + program code digest), the architected front-end
    /// state, the cache/TLB hierarchy, the branch predictor and the
    /// architected output streams.
    ///
    /// Checkpoints capture architectural plus warmed-table state only —
    /// the pipeline queues are not serialized — so they are meaningful
    /// at the warmup boundary (after [`Machine::warmup`], before
    /// [`Machine::run`]), which is the only place the simulator takes
    /// them.
    pub fn checkpoint(&self) -> Vec<u8> {
        let _prof = nwo_obs::span::span("ckpt-io");
        debug_assert!(
            self.cycle == 0 && self.window.is_empty() && self.ifq.is_empty(),
            "checkpoints are taken at the warmup boundary"
        );
        let mut cw = nwo_ckpt::CheckpointWriter::new();
        let mut meta = nwo_ckpt::SectionWriter::new();
        meta.put_u64(self.config.warm_fingerprint());
        meta.put_u64(self.frontend.code_digest());
        cw.add_section("meta", meta.into_bytes());
        cw.write_section("frontend", &self.frontend);
        cw.write_section("hierarchy", &self.hierarchy);
        let mut bp = nwo_ckpt::SectionWriter::new();
        bp.put_bool(self.predictor.is_some());
        if let Some(p) = &self.predictor {
            nwo_ckpt::Checkpointable::save(p, &mut bp);
        }
        cw.add_section("bpred", bp.into_bytes());
        let mut out = nwo_ckpt::SectionWriter::new();
        out.put_bytes(&self.out_bytes);
        out.put_u64(self.out_quads.len() as u64);
        for &q in &self.out_quads {
            out.put_u64(q);
        }
        cw.add_section("output", out.into_bytes());
        cw.to_bytes()
    }

    /// Restores warmed state saved by [`Machine::checkpoint`],
    /// replacing the warmup phase. The machine must have been built from
    /// the same program (code digest) and a config with the same
    /// [`SimConfig::warm_fingerprint`], and must not have begun timed
    /// simulation; any functional warmup already performed is simply
    /// overwritten (warm state is restored wholesale).
    ///
    /// Every section is fully decoded and validated before any machine
    /// state is touched, so a failed restore leaves the machine exactly
    /// as constructed — there is no partial restore.
    ///
    /// # Errors
    ///
    /// Any [`nwo_ckpt::CkptError`]: bad magic / foreign version / stale
    /// salt / truncation / CRC mismatch from the container layer, or
    /// [`nwo_ckpt::CkptError::Mismatch`] when the checkpoint belongs to
    /// a different program, machine shape, or already-run machine.
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), nwo_ckpt::CkptError> {
        use nwo_ckpt::CkptError;
        let _prof = nwo_obs::span::span("restore");
        if self.cycle != 0 || self.stats.committed != 0 {
            return Err(CkptError::Malformed(
                "restore requires a machine that has not begun timed simulation".into(),
            ));
        }
        let reader = nwo_ckpt::CheckpointReader::from_bytes(bytes)?;
        // Identity checks first: wrong program or wrong machine shape is
        // rejected before any payload decoding.
        let mut meta = reader.section("meta")?;
        let fp = meta.take_u64("meta warm fingerprint")?;
        let expected_fp = self.config.warm_fingerprint();
        if fp != expected_fp {
            return Err(CkptError::Mismatch {
                what: "warm-state config fingerprint",
                found: fp,
                expected: expected_fp,
            });
        }
        let digest = meta.take_u64("meta code digest")?;
        let expected_digest = self.frontend.code_digest();
        if digest != expected_digest {
            return Err(CkptError::Mismatch {
                what: "program code digest",
                found: digest,
                expected: expected_digest,
            });
        }
        meta.finish("meta")?;
        // Decode every section into scratch state; commit only when all
        // of them parsed cleanly.
        let mut frontend = self.frontend.clone();
        reader.restore_section("frontend", &mut frontend)?;
        let mut hierarchy = self.hierarchy.clone();
        reader.restore_section("hierarchy", &mut hierarchy)?;
        let mut bp = reader.section("bpred")?;
        let has_predictor = bp.take_bool("bpred presence")?;
        if has_predictor != self.predictor.is_some() {
            return Err(CkptError::Mismatch {
                what: "predictor presence",
                found: has_predictor as u64,
                expected: self.predictor.is_some() as u64,
            });
        }
        let mut predictor = self.predictor.clone();
        if let Some(p) = predictor.as_mut() {
            nwo_ckpt::Checkpointable::restore(p, &mut bp)?;
        }
        bp.finish("bpred")?;
        let mut out = reader.section("output")?;
        let out_bytes = out.take_bytes(u64::MAX, "output out_bytes")?;
        let quads = out.take_len(u64::MAX, "output out_quads count")?;
        let mut out_quads = Vec::new();
        for _ in 0..quads {
            out_quads.push(out.take_u64("output out_quad")?);
        }
        out.finish("output")?;
        self.frontend = frontend;
        self.hierarchy = hierarchy;
        self.predictor = predictor;
        self.out_bytes = out_bytes;
        self.out_quads = out_quads;
        // The restored frontend state was warmed by another machine the
        // oracle never saw executing: re-base it on the restored
        // architectural state so lockstep checking continues from here.
        if let Some(oracle) = self.oracle.as_mut() {
            let (regs, pc, halted, mem) = self.frontend.arch_state();
            oracle.resync(regs, pc, halted, mem);
        }
        self.phase.ckpt_restores += 1;
        Ok(())
    }

    /// Collects every counter in the machine — core pipeline, stall
    /// breakdown, caches and TLBs, branch predictor, power model — into
    /// one machine-readable [`nwo_obs::Snapshot`]. Usable mid-run (the
    /// interval-stats stream is built from it every N cycles).
    pub fn build_snapshot(&self) -> nwo_obs::Snapshot {
        let stats = &self.stats;
        let cycles = stats.cycles.max(self.cycle);
        let denom = cycles.max(1);
        let mut r = nwo_obs::Registry::new();
        r.group("sim", |r| {
            r.counter("cycles", cycles);
            r.counter("fetched", stats.fetched);
            r.counter("dispatched", stats.dispatched);
            r.counter("issued", stats.issued);
            r.counter("committed", stats.committed);
            r.counter("squashed", stats.squashed);
            r.gauge(
                "ipc",
                if cycles == 0 {
                    0.0
                } else {
                    stats.committed as f64 / cycles as f64
                },
            );
        });
        r.group("width", |r| {
            r.histogram("committed", stats.width_committed.to_log2());
            r.histogram("executed", stats.width_executed.to_log2());
        });
        r.source("stall", &stats.stall);
        r.group("branch", |r| {
            r.counter("committed", stats.branch.committed);
            r.counter("cond_committed", stats.branch.cond_committed);
            r.counter("mispredicts", stats.branch.mispredicts);
            r.gauge("accuracy", stats.branch.accuracy());
        });
        r.group("pack", |r| {
            r.counter("groups", stats.pack.groups);
            r.counter("packed_ops", stats.pack.packed_ops);
            r.counter("slots_saved", stats.pack.slots_saved);
            r.counter("replay_issued", stats.pack.replay_issued);
            r.counter("replay_squashed", stats.pack.replay_squashed);
        });
        r.source("mem", &self.hierarchy_stats());
        if let Some(ps) = self.predictor_stats() {
            r.source("bpred", &ps);
        }
        r.source("power", &stats.power.report(denom));
        r.source("mem_ext", &stats.mem_ext.report(denom));
        // Machine-local phase counters only — never global profiler
        // state, which other threads may be mutating — so identical
        // runs keep producing byte-identical snapshots.
        r.group("prof", |r| {
            r.counter("warmup_calls", self.phase.warmup_calls);
            r.counter("warmup_insts", self.phase.warmup_insts);
            r.counter("run_calls", self.phase.run_calls);
            r.counter("ckpt_restores", self.phase.ckpt_restores);
            r.counter(
                "oracle_checks",
                self.oracle.as_ref().map_or(0, OracleChecker::checked),
            );
        });
        r.group("telemetry", |r| {
            r.counter("every", self.telemetry.as_ref().map_or(0, |t| t.every));
            r.counter("samples", self.telemetry.as_ref().map_or(0, |t| t.samples));
            r.counter(
                "interval_every",
                self.interval.as_ref().map_or(0, |(e, _)| *e),
            );
        });
        r.finish()
    }

    /// Fast-forwards `insts` instructions functionally, warming caches
    /// and the branch predictor but not simulating timing — the paper's
    /// warmup methodology (Section 3.2).
    ///
    /// # Errors
    ///
    /// [`SimError::BadFetch`] if the program runs off the rails;
    /// warming past `halt` simply stops early.
    pub fn warmup(&mut self, insts: u64) -> Result<u64, SimError> {
        let _prof = nwo_obs::span::span("warmup");
        let mut oracle_ns = 0u64;
        let mut oracle_checks = 0u64;
        self.phase.warmup_calls += 1;
        let mut n = 0;
        while n < insts && !self.frontend.halted() {
            let pc = self.frontend.pc();
            let Some(rec) = self.frontend.step() else {
                if self.frontend.halted() {
                    break;
                }
                return Err(SimError::BadFetch { pc });
            };
            self.hierarchy.warm_inst(rec.pc);
            if let Some(addr) = rec.mem_addr {
                self.hierarchy.warm_data(addr, rec.store_value.is_some());
            }
            if rec.instr.op.is_control() {
                let cinfo = control_info(&rec);
                if let Some(p) = &mut self.predictor {
                    p.update(rec.pc, &cinfo, rec.taken, rec.next_pc, None);
                }
            }
            // Warmed-over instructions are architecturally executed, so
            // their output side effects are real — collecting them here
            // is what makes a restored-from-checkpoint run's output
            // byte-identical to an uninterrupted warmup-then-run.
            match rec.instr.op {
                Opcode::Outb => self.out_bytes.push(rec.op_a as u8),
                Opcode::Outq => self.out_quads.push(rec.op_a),
                _ => {}
            }
            // Warmed instructions are architecturally executed, so the
            // oracle advances (and checks) through them too; cycle
            // fields are zero — warmup has no timing.
            if let Some(oracle) = self.oracle.as_mut() {
                let seq = oracle.checked();
                let record = CommitRecord {
                    seq,
                    pc: rec.pc,
                    raw: rec.instr.encode(),
                    fetched_at: 0,
                    dispatched_at: 0,
                    issued_at: 0,
                    completed_at: 0,
                    committed_at: 0,
                    packed: false,
                    replayed: false,
                };
                let t0 = nwo_obs::span::enabled().then(std::time::Instant::now);
                let checked = oracle.check_commit(0, &rec, record);
                if let Some(t0) = t0 {
                    oracle_ns += t0.elapsed().as_nanos() as u64;
                    oracle_checks += 1;
                }
                if let Err(report) = checked {
                    return Err(SimError::Divergence(report));
                }
            }
            n += 1;
        }
        self.phase.warmup_insts += n;
        nwo_obs::span::add("insts", n);
        nwo_obs::span::record_external("oracle-step", oracle_ns, oracle_checks);
        Ok(n)
    }

    /// Runs the pipeline until the program halts, `max_insts` commit, or
    /// an error occurs.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(&mut self, max_insts: u64) -> Result<(), SimError> {
        let _prof = nwo_obs::span::span("measured-run");
        let start_cycle = self.cycle;
        self.phase.run_calls += 1;
        self.oracle_span_ns = 0;
        self.oracle_span_checks = 0;
        while !self.done && self.stats.committed < max_insts {
            if self.frontend.halted() && self.window.is_empty() && self.ifq.is_empty() {
                // Warmup (or a restored checkpoint of one) consumed the
                // whole program including `halt`: nothing left to time.
                self.done = true;
                break;
            }
            if self.cycle >= self.config.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.config.max_cycles,
                });
            }
            self.cycle += 1;
            self.commit()?;
            self.writeback();
            self.issue();
            self.dispatch();
            self.fetch()?;
            if let Some(every) = self.interval.as_ref().map(|(e, _)| *e) {
                if self.cycle.is_multiple_of(every) {
                    let line = self.build_snapshot().to_json_line();
                    if let Some((_, sink)) = &mut self.interval {
                        sink.write_line(&line);
                    }
                }
            }
            if let Some(every) = self.telemetry.as_ref().map(|t| t.every) {
                if self.cycle.is_multiple_of(every) {
                    self.emit_telemetry();
                }
            }
            if self.cycle - self.last_commit_cycle > 200_000 {
                return Err(self.deadlock_error());
            }
        }
        self.stats.cycles = self.cycle;
        self.sink.flush();
        if let Some((_, sink)) = &mut self.interval {
            TraceSink::flush(sink);
        }
        if self.telemetry.is_some() {
            // Final partial-interval sample, so the stream always ends
            // at the last cycle; then flush.
            if self
                .telemetry
                .as_ref()
                .is_some_and(|t| t.last_cycle < self.cycle)
            {
                self.emit_telemetry();
            }
            if let Some(t) = &mut self.telemetry {
                TraceSink::flush(&mut t.sink);
            }
        }
        nwo_obs::span::add("cycles", self.cycle - start_cycle);
        nwo_obs::span::record_external("oracle-step", self.oracle_span_ns, self.oracle_span_checks);
        Ok(())
    }

    /// Builds the [`SimError::Deadlock`] diagnostic: last-commit cycle,
    /// the stall attribution so far, the window-head instruction, and a
    /// pipeview of the most recent retained commits.
    fn deadlock_error(&self) -> SimError {
        let head = self.window.front().map(|e| {
            format!(
                "seq {} pc {:#x} {} (issued={}, completed={}, unresolved deps={})",
                e.seq, e.rec.pc, e.rec.instr, e.issued, e.completed, e.idep_remaining
            )
        });
        let records = self.sink.retained();
        let start = records.len().saturating_sub(8);
        let disasm = |_pc: u64, raw: u32| match nwo_isa::Instr::decode(raw) {
            Ok(i) => i.to_string(),
            Err(_) => format!("{raw:08x}"),
        };
        SimError::Deadlock {
            cycle: self.cycle,
            snapshot: Box::new(DeadlockSnapshot {
                last_commit_cycle: self.last_commit_cycle,
                stall: self.stats.stall.clone(),
                head,
                pipeview: nwo_obs::pipeview::render(&records[start..], &disasm),
            }),
        }
    }

    // ----------------------------------------------------------------
    // Fetch
    // ----------------------------------------------------------------

    fn fetch(&mut self) -> Result<(), SimError> {
        if self.done || self.cycle < self.fetch_resume {
            return Ok(());
        }
        if self.frontend.halted() || self.frontend.stalled() {
            return Ok(());
        }
        let pc0 = self.frontend.pc();
        // I-cache access for the first line of the group; a miss stalls
        // fetch for the full latency.
        let latency = self.hierarchy.inst_access(pc0);
        if latency > self.config.hierarchy.l1i.hit_latency {
            self.fetch_resume = self.cycle + latency;
            self.fetch_stall = StallCause::IcacheMiss;
            return Ok(());
        }
        // Table 1 specifies a flat 4-instructions/cycle fetch width; a
        // group may cross a cache-line boundary as long as the next line
        // also hits (a miss ends the group and stalls).
        let mut line = pc0 / self.config.hierarchy.l1i.block_bytes;
        let mut fetched = 0;
        while fetched < self.config.fetch_width && self.ifq.len() < self.config.ifq_size {
            let pc = self.frontend.pc();
            if self.frontend.halted() || self.frontend.stalled() {
                break;
            }
            let pc_line = pc / self.config.hierarchy.l1i.block_bytes;
            if pc_line != line {
                let latency = self.hierarchy.inst_access(pc);
                if latency > self.config.hierarchy.l1i.hit_latency {
                    self.fetch_resume = self.cycle + latency;
                    self.fetch_stall = StallCause::IcacheMiss;
                    break;
                }
                line = pc_line;
            }
            let was_spec = self.frontend.spec_mode();
            let Some(rec) = self.frontend.step() else {
                if self.frontend.stalled() || self.frontend.halted() {
                    break;
                }
                // Correct-path bad fetch: a program error.
                return Err(SimError::BadFetch { pc });
            };
            let is_ctrl = rec.instr.op.is_control();
            let mut cinfo = None;
            let mut ras_cp = None;
            let mut dir_lookup = None;
            let mut pred_npc = pc.wrapping_add(4);
            if is_ctrl {
                let info = control_info(&rec);
                pred_npc = match &mut self.predictor {
                    None => rec.next_pc, // perfect prediction
                    Some(p) => {
                        let prediction = p.predict(pc, &info);
                        ras_cp = Some(p.ras_checkpoint());
                        dir_lookup = prediction.lookup;
                        if prediction.taken {
                            prediction.target.unwrap_or(pc.wrapping_add(4))
                        } else {
                            pc.wrapping_add(4)
                        }
                    }
                };
                cinfo = Some(info);
            }
            let mispredicted = is_ctrl && pred_npc != rec.next_pc;
            if self.sink.enabled() {
                let ev = TraceEvent::Fetch {
                    cycle: self.cycle,
                    pc: rec.pc,
                    raw: rec.instr.encode(),
                    spec: was_spec,
                };
                self.sink.emit(&ev);
            }
            self.ifq.push_back(Fetched {
                rec,
                spec: was_spec,
                mispredicted,
                cinfo,
                ras_cp,
                dir_lookup,
                fetched_at: self.cycle,
            });
            self.stats.fetched += 1;
            fetched += 1;
            if mispredicted {
                if !was_spec {
                    self.frontend.enter_spec();
                }
                self.frontend.set_pc(pred_npc);
            }
            if is_ctrl && pred_npc != pc.wrapping_add(4) {
                break; // a (predicted-)taken transfer ends the fetch group
            }
            if rec.instr.op == Opcode::Halt {
                break;
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------------
    // Dispatch
    // ----------------------------------------------------------------

    fn dispatch(&mut self) {
        let mut dispatched = 0;
        while dispatched < self.config.decode_width {
            if self.window.len() >= self.config.ruu_size {
                break;
            }
            let Some(front) = self.ifq.front() else { break };
            let is_mem = front.rec.mem_addr.is_some();
            if is_mem && self.lsq.len() >= self.config.lsq_size {
                break;
            }
            let fetched = self.ifq.pop_front().expect("checked non-empty");
            self.dispatch_one(fetched);
            dispatched += 1;
        }
    }

    fn dispatch_one(&mut self, fetched: Fetched) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let rec = fetched.rec;
        let op = rec.instr.op;
        let class = op.class();

        // Resolve source operands: timing dependencies plus width-tag and
        // load-provenance metadata.
        let (src_a, src_b, extra) = source_regs(&rec.instr);
        let mut idep = 0u8;
        let mut producers: Vec<u64> = Vec::new();
        let mut resolve = |m: &mut Machine, reg: Option<Reg>| -> (bool, bool, Option<u64>) {
            // Returns (tag_known, from_load, pending producer) for `reg`.
            let Some(r) = reg.filter(|r| !r.is_zero()) else {
                return (true, false, None);
            };
            match m.rename[r.index() as usize] {
                Some(pseq) => {
                    let p = m.entry(pseq).expect("rename points into window");
                    let known = p.result_tag_known;
                    let from_load = p.is_load();
                    let pending = (!p.completed).then_some(pseq);
                    if let Some(pseq) = pending {
                        producers.push(pseq);
                    }
                    (known, from_load, pending)
                }
                None => (
                    m.committed_tag_known[r.index() as usize],
                    m.committed_from_load[r.index() as usize],
                    None,
                ),
            }
        };
        let (a_known, a_from_load, a_producer) = resolve(self, src_a);
        let (b_known, b_from_load, _) = resolve(self, src_b);
        let (_, _, _) = resolve(self, extra); // store data: timing only
                                              // For stores, src_a is the base register: remember its producer
                                              // so loads can tell when this store's address is computable.
        let store_base_producer = if op.is_store() { a_producer } else { None };
        for &pseq in &producers {
            idep += 1;
            let entry = self.entry_mut(pseq).expect("producer in window");
            entry.odeps.push(seq);
        }

        let tag_a = if a_known {
            WidthTag::of(rec.op_a)
        } else {
            WidthTag::unknown()
        };
        let tag_b = if b_known {
            WidthTag::of(rec.op_b)
        } else {
            WidthTag::unknown()
        };
        let result_tag_known = class != OpClass::Load || self.config.zero_detect_loads;

        let entry = RuuEntry {
            seq,
            rec,
            class,
            spec: fetched.spec,
            idep_remaining: idep,
            odeps: Vec::new(),
            tag_a,
            tag_b,
            from_load: a_from_load || b_from_load,
            fetched_at: fetched.fetched_at,
            dispatched_at: self.cycle,
            issued_at: 0,
            earliest_issue: self.cycle + 1,
            issued: false,
            in_group: false,
            completed: false,
            complete_at: u64::MAX,
            dmiss: false,
            mispredicted: fetched.mispredicted,
            cinfo: fetched.cinfo,
            ras_cp: fetched.ras_cp,
            dir_lookup: fetched.dir_lookup,
            store_base_producer,
            replay_wide: None,
            replay_attempted: false,
            exec_stats_counted: false,
            result_tag_known,
        };
        if let Some(dest) = entry.dest() {
            self.rename[dest.index() as usize] = Some(seq);
        }
        if entry.rec.mem_addr.is_some() {
            self.lsq.push_back(seq);
        }
        let pc = entry.rec.pc;
        self.window.push_back(entry);
        self.stats.dispatched += 1;
        if self.sink.enabled() {
            let ev = TraceEvent::Dispatch {
                cycle: self.cycle,
                pc,
            };
            self.sink.emit(&ev);
        }
    }

    // ----------------------------------------------------------------
    // Issue
    // ----------------------------------------------------------------

    fn issue(&mut self) {
        #[derive(Debug)]
        struct OpenGroup {
            opcode: Opcode,
            members: usize,
            has_replay: bool,
            leader_idx: usize,
        }
        let pack_config = self.config.pack_config();
        let gating = self.config.gating_config();
        let power_gating = matches!(
            self.config.optimization,
            Optimization::ClockGating(_) | Optimization::None
        );

        let mut slots = 0usize;
        let mut alus = 0usize;
        let mut muldiv_issued = 0usize;
        let mut groups: Vec<OpenGroup> = Vec::new();

        for idx in 0..self.window.len() {
            // Stop when neither a fresh slot nor any open group remains.
            let group_capacity = groups
                .iter()
                .any(|g| g.members < pack_config.map(|p| p.degree).unwrap_or(1));
            if slots >= self.config.issue_width && !group_capacity {
                break;
            }
            let e = &self.window[idx];
            if !e.ready() || e.earliest_issue > self.cycle || e.dispatched_at >= self.cycle {
                continue;
            }
            let op = e.rec.instr.op;
            let class = e.class;

            // Multiply/divide unit.
            if matches!(class, OpClass::Mult | OpClass::Div) {
                if slots >= self.config.issue_width
                    || muldiv_issued >= self.config.int_muldiv
                    || self.cycle < self.muldiv_busy_until
                {
                    continue;
                }
                slots += 1;
                muldiv_issued += 1;
                let latency = if class == OpClass::Div {
                    self.muldiv_busy_until = self.cycle + self.config.div_latency;
                    self.config.div_latency
                } else {
                    self.config.mult_latency
                };
                self.issue_entry(idx, self.cycle + latency, gating, power_gating);
                continue;
            }

            // Loads: memory-ordering checks against the LSQ.
            if class == OpClass::Load {
                if slots >= self.config.issue_width || alus >= self.config.int_alus {
                    continue;
                }
                let action = self.load_action(idx);
                let complete_at = match action {
                    LoadAction::Wait => continue,
                    LoadAction::Forward => self.cycle + self.config.alu_latency + 1,
                    LoadAction::Access => {
                        let addr = self.window[idx].rec.mem_addr.expect("load has address");
                        let lat = self.hierarchy.data_access(addr, false);
                        self.window[idx].dmiss = lat > self.config.hierarchy.l1d.hit_latency;
                        self.cycle + self.config.alu_latency + lat
                    }
                };
                slots += 1;
                alus += 1;
                self.issue_entry(idx, complete_at, gating, power_gating);
                continue;
            }

            // Everything else executes on an ALU with unit latency:
            // arithmetic, logic, shifts, stores (EA), branches, jumps,
            // system ops.
            let complete_at = self.cycle + self.config.alu_latency;

            // Operation packing (Section 5.2/5.3).
            if let Some(pc_cfg) = pack_config {
                let e = &self.window[idx];
                let exact = !e.replay_attempted && can_pack(op, e.tag_a, e.tag_b, &pc_cfg);
                let confident = !pc_cfg.replay_confidence
                    || self.replay_confidence.get(&e.rec.pc).copied().unwrap_or(2) >= 2;
                let replay = if !exact && pc_cfg.replay && !e.replay_attempted && confident {
                    replay_candidate(op, e.tag_a, e.tag_b)
                } else {
                    None
                };
                if exact || replay.is_some() {
                    // Try to join an open group of the same opcode.
                    if let Some(g) = groups.iter_mut().find(|g| {
                        g.opcode == op
                            && g.members < pc_cfg.degree
                            && (replay.is_none() || !g.has_replay)
                    }) {
                        debug_assert!(g.members >= 1);
                        g.members += 1;
                        self.window[idx].in_group = true;
                        if let Some(wide) = replay {
                            g.has_replay = true;
                            self.window[idx].replay_wide = Some(wide);
                            self.stats.pack.replay_issued += 1;
                        }
                        self.issue_entry(idx, complete_at, gating, power_gating);
                        continue;
                    }
                    // Any candidate may open a new group (it pays for the
                    // slot and ALU like a normal op, so leading is free);
                    // a replay-mode leader occupies the group's single
                    // wide-operand bypass path. A replay leader whose
                    // group stays a singleton is un-speculated at the
                    // tally below: alone, its lane spans the whole adder
                    // and there is nothing to speculate on.
                    if slots < self.config.issue_width && alus < self.config.int_alus {
                        slots += 1;
                        alus += 1;
                        groups.push(OpenGroup {
                            opcode: op,
                            members: 1,
                            has_replay: replay.is_some(),
                            leader_idx: idx,
                        });
                        if let Some(wide) = replay {
                            self.window[idx].replay_wide = Some(wide);
                            self.stats.pack.replay_issued += 1;
                        }
                        self.issue_entry(idx, complete_at, gating, power_gating);
                        continue;
                    }
                }
            }

            if slots >= self.config.issue_width || alus >= self.config.int_alus {
                continue;
            }
            slots += 1;
            alus += 1;
            self.issue_entry(idx, complete_at, gating, power_gating);
        }

        // Occupancy accounting.
        if self.stats.occupancy.issue_slots.len() != self.config.issue_width + 1 {
            self.stats.occupancy.issue_slots = vec![0; self.config.issue_width + 1];
        }
        self.stats.occupancy.issue_slots[slots.min(self.config.issue_width)] += 1;
        if slots >= self.config.issue_width {
            self.stats.occupancy.issue_saturated += 1;
        }
        self.stats.occupancy.alu_sum += alus as u64;
        self.stats.occupancy.ruu_sum += self.window.len() as u64;

        for g in &groups {
            if g.members >= 2 {
                self.stats.pack.groups += 1;
                self.stats.pack.packed_ops += g.members as u64;
                self.stats.pack.slots_saved += (g.members - 1) as u64;
                self.window[g.leader_idx].in_group = true;
                if self.sink.enabled() {
                    let ev = TraceEvent::Pack {
                        cycle: self.cycle,
                        leader_pc: self.window[g.leader_idx].rec.pc,
                        members: g.members.min(u8::MAX as usize) as u8,
                        replay: g.has_replay,
                    };
                    self.sink.emit(&ev);
                }
            } else if self.window[g.leader_idx].replay_wide.is_some() {
                // A replay candidate that attracted no partner issues
                // full-width: the lone lane spans the whole adder, so
                // there is nothing to speculate on.
                self.window[g.leader_idx].replay_wide = None;
                self.stats.pack.replay_issued -= 1;
            }
        }
    }

    /// Marks entry `idx` issued and records execution statistics.
    fn issue_entry(
        &mut self,
        idx: usize,
        complete_at: u64,
        gating: nwo_core::GatingConfig,
        power_gating: bool,
    ) {
        let cycle = self.cycle;
        let e = &mut self.window[idx];
        e.issued = true;
        e.issued_at = cycle;
        e.complete_at = complete_at;
        self.stats.issued += 1;

        // Power accounting: what would the gating hardware do for this
        // operation? (Timing-neutral, so we account on every run where
        // packing is off; packing runs gate nothing.)
        let level = if power_gating {
            gate_level(e.tag_a, e.tag_b, &gating)
        } else {
            GateLevel::Full
        };
        self.stats.power.record_op(e.class, level);
        if level != GateLevel::Full {
            self.stats.gated_ops += 1;
            if e.from_load {
                self.stats.gated_ops_with_load_operand += 1;
            }
        }

        if !e.exec_stats_counted {
            e.exec_stats_counted = true;
            let (a, b) = (e.rec.op_a, e.rec.op_b);
            let class = e.class;
            let pc = e.rec.pc;
            self.stats.breakdown.record(class, a, b);
            if has_two_operands(class) {
                self.stats.width_executed.record(a, b);
                self.stats.fluctuation.record(pc, a, b);
            }
        }
        if self.sink.enabled() {
            let e = &self.window[idx];
            let ev = TraceEvent::Issue {
                cycle,
                pc: e.rec.pc,
                packed: e.in_group,
                replay: e.replay_wide.is_some(),
            };
            self.sink.emit(&ev);
        }
    }

    /// Decides whether the load at window index `idx` may proceed.
    fn load_action(&self, idx: usize) -> LoadAction {
        let load = &self.window[idx];
        let load_addr = load.rec.mem_addr.expect("load has an address");
        let load_len = access_bytes(load.rec.instr.op);
        let mut action = LoadAction::Access;
        for &seq in &self.lsq {
            if seq >= load.seq {
                break;
            }
            let e = self.entry(seq).expect("LSQ seq in window");
            if !e.is_store() {
                continue;
            }
            let addr_known = match e.store_base_producer {
                None => true,
                Some(pseq) => self.entry(pseq).is_none_or(|p| p.completed),
            };
            if !addr_known {
                // Unknown store address: conservatively wait.
                return LoadAction::Wait;
            }
            let st_addr = e.rec.mem_addr.expect("store has an address");
            let st_len = access_bytes(e.rec.instr.op);
            let overlap = st_addr < load_addr.wrapping_add(load_len)
                && load_addr < st_addr.wrapping_add(st_len);
            if !overlap {
                continue;
            }
            let covers = st_addr <= load_addr
                && st_addr.wrapping_add(st_len) >= load_addr.wrapping_add(load_len);
            if covers && e.completed {
                action = LoadAction::Forward; // youngest older match wins
            } else {
                return LoadAction::Wait;
            }
        }
        action
    }

    // ----------------------------------------------------------------
    // Writeback
    // ----------------------------------------------------------------

    fn writeback(&mut self) {
        // Collect this cycle's completions in age order; recoveries can
        // invalidate younger seqs mid-walk.
        let completing: Vec<u64> = self
            .window
            .iter()
            .filter(|e| e.issued && !e.completed && e.complete_at <= self.cycle)
            .map(|e| e.seq)
            .collect();

        for seq in completing {
            let Some(idx) = self.index_of(seq) else {
                continue; // squashed by an earlier recovery this cycle
            };
            let e = &mut self.window[idx];

            // Replay-packing squash: the carry rippled past bit 15, so
            // this op re-issues full-width after the replay penalty
            // (Section 5.3's "replay traps").
            if let Some(wide) = e.replay_wide {
                let (op, a, b, pc) = (e.rec.instr.op, e.rec.op_a, e.rec.op_b, e.rec.pc);
                e.replay_wide = None;
                e.replay_attempted = true;
                let mispredicted = replay_mispredicts(op, a, b, wide);
                let conf = self.replay_confidence.entry(pc).or_insert(2);
                if mispredicted {
                    *conf = 0;
                } else {
                    *conf = (*conf + 1).min(3);
                }
                if mispredicted {
                    let penalty = self
                        .config
                        .pack_config()
                        .map(|p| p.replay_penalty)
                        .unwrap_or(0)
                        .max(1);
                    let earliest = self.cycle + penalty;
                    let e = &mut self.window[idx];
                    e.issued = false;
                    e.complete_at = u64::MAX;
                    e.earliest_issue = earliest;
                    self.stats.pack.replay_squashed += 1;
                    if self.sink.enabled() {
                        let ev = TraceEvent::ReplaySquash {
                            cycle: self.cycle,
                            pc,
                            penalty,
                        };
                        self.sink.emit(&ev);
                    }
                    continue;
                }
            }

            let e = &mut self.window[idx];
            e.completed = true;
            if self.sink.enabled() {
                let ev = TraceEvent::Writeback {
                    cycle: self.cycle,
                    pc: self.window[idx].rec.pc,
                };
                self.sink.emit(&ev);
            }
            // Wake consumers.
            let odeps = std::mem::take(&mut self.window[idx].odeps);
            for dep in odeps {
                if let Some(didx) = self.index_of(dep) {
                    let d = &mut self.window[didx];
                    debug_assert!(d.idep_remaining > 0, "dependency count underflow");
                    d.idep_remaining -= 1;
                }
            }
            // Branch resolution and misprediction recovery.
            let e = &self.window[idx];
            if e.mispredicted {
                let bseq = e.seq;
                let spec = e.spec;
                let pc = e.rec.pc;
                let target = e.rec.next_pc;
                let taken = e.rec.taken;
                let ras_cp = e.ras_cp;
                let dir_lookup = e.dir_lookup;
                if !spec {
                    self.stats.branch.mispredicts += 1;
                }
                if self.sink.enabled() {
                    let ev = TraceEvent::BranchMispredict {
                        cycle: self.cycle,
                        pc,
                        target,
                    };
                    self.sink.emit(&ev);
                }
                if let (Some(p), Some(lu)) = (&mut self.predictor, &dir_lookup) {
                    // Restore the speculative history to this branch's
                    // snapshot and shift in the actual outcome; younger
                    // (squashed) shifts vanish with it.
                    p.repair(lu, taken);
                }
                self.recover(bseq, spec, target, ras_cp);
            }
        }
    }

    /// Squashes everything younger than `bseq` and redirects fetch.
    fn recover(&mut self, bseq: u64, spec: bool, target: u64, ras_cp: Option<RasCheckpoint>) {
        // Drop younger window entries.
        while let Some(back) = self.window.back() {
            if back.seq <= bseq {
                break;
            }
            self.window.pop_back();
            self.stats.squashed += 1;
        }
        self.lsq.retain(|&s| s <= bseq);
        self.stats.squashed += self.ifq.len() as u64;
        self.ifq.clear();
        self.next_seq = bseq + 1;
        // Rebuild the rename table and purge dangling consumer edges.
        self.rename = [None; 32];
        for i in 0..self.window.len() {
            self.window[i].odeps.retain(|&s| s <= bseq);
            if let Some(dest) = self.window[i].dest() {
                let seq = self.window[i].seq;
                self.rename[dest.index() as usize] = Some(seq);
            }
        }
        // Redirect the front end.
        if spec {
            // A wrong-path branch resolved: follow its (wrong-path)
            // computed target, still speculative.
            self.frontend.set_pc(target);
        } else {
            self.frontend.recover(target);
        }
        if let (Some(p), Some(cp)) = (&mut self.predictor, ras_cp) {
            p.ras_restore(cp);
        }
        self.fetch_resume = self
            .fetch_resume
            .max(self.cycle + 1 + self.config.mispredict_penalty);
        self.fetch_stall = StallCause::MispredictRecovery;
    }

    // ----------------------------------------------------------------
    // Commit
    // ----------------------------------------------------------------

    fn commit(&mut self) -> Result<(), SimError> {
        let mut retired = 0u64;
        for _ in 0..self.config.commit_width {
            let Some(front) = self.window.front() else {
                break;
            };
            if !front.completed {
                break;
            }
            debug_assert!(!front.spec, "wrong-path instruction reached commit");
            let mut e = self.window.pop_front().expect("checked non-empty");
            if self.lsq.front().is_some_and(|&s| s == e.seq) {
                self.lsq.pop_front();
            }
            // An armed datapath fault fires at the first eligible
            // commit, corrupting a gated upper bit of the value being
            // architecturally retired — exactly the silent-corruption
            // scenario the oracle exists to catch.
            if let Some(fault) = self.pending_fault {
                if self.stats.committed >= fault.commit_index {
                    let fired = if let Some(v) = e.rec.result {
                        e.rec.result = Some(fault.apply(v));
                        true
                    } else if let Some(v) = e.rec.store_value {
                        e.rec.store_value = Some(fault.apply(v));
                        true
                    } else {
                        false
                    };
                    if fired {
                        self.pending_fault = None;
                    }
                }
            }
            // Stores write the data cache at commit.
            if e.is_store() {
                let addr = e.rec.mem_addr.expect("store has an address");
                self.hierarchy.data_access(addr, true);
                // Section 6 extension: a known-narrow store value gates
                // the data-array write and the bus transfer.
                let value = e.rec.store_value.expect("store has data");
                self.stats
                    .mem_ext
                    .record_store(access_bytes(e.rec.instr.op), nwo_core::is_narrow(value, 16));
            }
            if e.is_load() {
                // Loads can gate only the result-bus transfer, and only
                // when the fill path performs zero-detect.
                let value = e.rec.result.expect("load has a result");
                let narrow = self.config.zero_detect_loads && nwo_core::is_narrow(value, 16);
                self.stats
                    .mem_ext
                    .record_load(access_bytes(e.rec.instr.op), narrow);
            }
            // Output side effects are architectural: commit time.
            match e.rec.instr.op {
                Opcode::Outb => self.out_bytes.push(e.rec.op_a as u8),
                Opcode::Outq => self.out_quads.push(e.rec.op_a),
                _ => {}
            }
            // Architected per-register metadata.
            if let Some(dest) = e.dest() {
                let r = dest.index() as usize;
                self.committed_tag_known[r] = e.result_tag_known;
                self.committed_from_load[r] = e.is_load();
                if self.rename[r] == Some(e.seq) {
                    self.rename[r] = None;
                }
            }
            // Train the predictor with architected outcomes.
            if let Some(cinfo) = &e.cinfo {
                self.stats.branch.committed += 1;
                if cinfo.is_cond {
                    self.stats.branch.cond_committed += 1;
                }
                if let Some(p) = &mut self.predictor {
                    p.update(
                        e.rec.pc,
                        cinfo,
                        e.rec.taken,
                        e.rec.next_pc,
                        e.dir_lookup.as_ref(),
                    );
                }
            }
            if self.sink.enabled() || self.oracle.is_some() {
                let record = CommitRecord {
                    seq: self.stats.committed,
                    pc: e.rec.pc,
                    raw: e.rec.instr.encode(),
                    fetched_at: e.fetched_at,
                    dispatched_at: e.dispatched_at,
                    issued_at: e.issued_at,
                    completed_at: e.complete_at,
                    committed_at: self.cycle,
                    packed: e.in_group,
                    replayed: e.replay_attempted,
                };
                if self.sink.enabled() {
                    self.sink.emit(&TraceEvent::Commit(record));
                }
                // Lockstep check: the reference emulator executes the
                // same instruction; any architectural disagreement
                // aborts the run with a typed report instead of letting
                // wrong statistics accumulate.
                let cycle = self.cycle;
                if let Some(oracle) = self.oracle.as_mut() {
                    // Per-commit timing is batched into the run-level
                    // accumulators (see `oracle_span_ns`) — one clock
                    // pair per commit, no per-commit span guards.
                    let t0 = nwo_obs::span::enabled().then(std::time::Instant::now);
                    let checked = oracle.check_commit(cycle, &e.rec, record);
                    if let Some(t0) = t0 {
                        self.oracle_span_ns += t0.elapsed().as_nanos() as u64;
                        self.oracle_span_checks += 1;
                    }
                    if let Err(report) = checked {
                        return Err(SimError::Divergence(report));
                    }
                }
            }
            self.stats.committed += 1;
            retired += 1;
            self.last_commit_cycle = self.cycle;
            if has_two_operands(e.class) {
                self.stats.width_committed.record(e.rec.op_a, e.rec.op_b);
            }
            if e.rec.instr.op == Opcode::Halt {
                self.done = true;
                break;
            }
        }
        // Stall attribution: charge every lost commit slot of this cycle
        // to a single cause, so that over a whole run
        // `sum(stall slots) == commit_width * cycles - committed` exactly.
        let width = self.config.commit_width as u64;
        if retired < width {
            let cause = self.stall_cause();
            let lost = width - retired;
            self.stats.stall.charge(cause, lost);
            // Attribute the lost slots to the instruction blocking
            // commit — the window head — or, with an empty window,
            // to the PC fetch is (re)starting from.
            let pc = self
                .window
                .front()
                .map(|e| e.rec.pc)
                .unwrap_or_else(|| self.frontend.pc());
            if let Some(pcs) = self.stall_pcs.as_mut() {
                pcs.entry(pc).or_default().charge(cause, lost);
            }
        }
        Ok(())
    }

    /// Names the bottleneck of a cycle whose commit stage retired fewer
    /// than `commit_width` instructions. Top-down CPI-stack style: the
    /// oldest instruction in the window — or the empty window itself —
    /// speaks for the whole cycle.
    fn stall_cause(&self) -> StallCause {
        if self.done {
            return StallCause::Drain;
        }
        let Some(front) = self.window.front() else {
            // Empty window: the front end owns the stall.
            if self.frontend.halted() && self.ifq.is_empty() {
                return StallCause::Drain;
            }
            if self.cycle < self.fetch_resume {
                return self.fetch_stall; // IcacheMiss or MispredictRecovery
            }
            return StallCause::Frontend;
        };
        if !front.issued {
            if front.replay_attempted && front.earliest_issue >= self.cycle {
                return StallCause::ReplayPenalty;
            }
            if front.idep_remaining > 0 {
                return StallCause::TrueDependency;
            }
            if front.is_load() && self.load_action(0) == LoadAction::Wait {
                // Blocked behind an older store: a memory dependency.
                return StallCause::TrueDependency;
            }
            if front.earliest_issue >= self.cycle {
                // Freshly dispatched: still filling the pipeline.
                return StallCause::Frontend;
            }
            // Ready and old enough, yet not picked: structural.
            return StallCause::FuContention;
        }
        if !front.completed {
            if front.dmiss {
                return StallCause::DcacheMiss;
            }
            if self.window.len() >= self.config.ruu_size {
                return StallCause::RuuFull;
            }
            if self.lsq.len() >= self.config.lsq_size {
                return StallCause::LsqFull;
            }
            return StallCause::ExecLatency;
        }
        // Front completed but the cycle still lost slots: commit stopped
        // mid-width (a `halt` retired, handled above) or the window ran
        // dry behind the retired burst.
        StallCause::Frontend
    }

    // ----------------------------------------------------------------
    // Window helpers
    // ----------------------------------------------------------------

    fn index_of(&self, seq: u64) -> Option<usize> {
        let front = self.window.front()?.seq;
        if seq < front {
            return None;
        }
        let idx = (seq - front) as usize;
        (idx < self.window.len()).then_some(idx)
    }

    fn entry(&self, seq: u64) -> Option<&RuuEntry> {
        self.index_of(seq).map(|i| &self.window[i])
    }

    fn entry_mut(&mut self, seq: u64) -> Option<&mut RuuEntry> {
        self.index_of(seq).map(|i| &mut self.window[i])
    }
}

/// Classes whose records carry two meaningful source-operand values
/// (the population of Figures 1 and 2).
fn has_two_operands(class: OpClass) -> bool {
    matches!(
        class,
        OpClass::IntArith
            | OpClass::Logic
            | OpClass::Shift
            | OpClass::Mult
            | OpClass::Div
            | OpClass::Load
            | OpClass::Store
    )
}

/// Extracts the predictor-facing description of a control instruction.
fn control_info(rec: &ExecRecord) -> ControlInfo {
    let op = rec.instr.op;
    ControlInfo {
        is_cond: op.is_cond_branch(),
        is_call: op.is_call(),
        is_return: op.is_return(),
        is_indirect: op.format() == Format::Jump,
        direct_target: (op.format() == Format::Branch).then(|| rec.instr.branch_target(rec.pc)),
        return_addr: rec.pc.wrapping_add(4),
    }
}

/// The source registers feeding operand slots a and b, plus the extra
/// (timing-only) dependency for store data.
fn source_regs(instr: &nwo_isa::Instr) -> (Option<Reg>, Option<Reg>, Option<Reg>) {
    let op = instr.op;
    match op.format() {
        Format::Operate => {
            let b = match instr.b {
                OperandB::Reg(r) => Some(r),
                OperandB::Lit(_) => None,
            };
            // Conditional moves read the old destination value.
            let extra = op.is_cmov().then_some(instr.rc);
            (Some(instr.ra), b, extra)
        }
        Format::Memory => {
            let data = op.is_store().then_some(instr.ra);
            (Some(instr.rb()), None, data)
        }
        Format::Branch => match op {
            Opcode::Br | Opcode::Bsr => (None, None, None),
            _ => (Some(instr.ra), None, None),
        },
        Format::Jump => (Some(instr.rb()), None, None),
        Format::System => match op {
            Opcode::Outb | Opcode::Outq => (Some(instr.ra), None, None),
            _ => (None, None, None),
        },
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit Table 1 tweaks read better
mod tests {
    use super::*;
    use nwo_core::PackConfig;
    use nwo_isa::assemble;

    fn run_src(src: &str, config: SimConfig) -> Machine {
        let prog = assemble(src).expect("assembles");
        let mut m = Machine::new(&prog, config);
        m.run(u64::MAX).expect("runs to halt");
        m
    }

    #[test]
    fn trivial_program_commits_and_halts() {
        let m = run_src("main: li t0, 42\n outq t0\n halt", SimConfig::default());
        assert!(m.done);
        assert_eq!(m.out_quads(), &[42]);
        assert_eq!(m.stats().committed, 3);
        assert!(m.stats().cycles > 0);
    }

    #[test]
    fn loop_produces_correct_architected_output() {
        let src = concat!(
            "main: clr t0\n li t1, 100\n",
            "loop: addq t0, t1, t0\n subq t1, 1, t1\n bgt t1, loop\n",
            " outq t0\n halt"
        );
        let m = run_src(src, SimConfig::default());
        assert_eq!(m.out_quads(), &[5050]);
    }

    #[test]
    fn perfect_prediction_never_recovers() {
        let src = concat!(
            "main: clr t0\n li t1, 50\n",
            "loop: addq t0, t1, t0\n subq t1, 1, t1\n bgt t1, loop\n",
            " outq t0\n halt"
        );
        let m = run_src(src, SimConfig::default().with_perfect_prediction());
        assert_eq!(m.stats().branch.mispredicts, 0);
        assert_eq!(m.stats().squashed, 0);
        assert_eq!(m.out_quads(), &[1275]);
    }

    #[test]
    fn realistic_prediction_recovers_but_stays_correct() {
        // A data-dependent unpredictable branch pattern.
        let src = concat!(
            "main: clr t0\n clr t2\n li t1, 64\n",
            "loop: and t1, 5, t3\n",
            " beq t3, skip\n",
            " addq t0, 1, t0\n",
            "skip: addq t2, t1, t2\n",
            " subq t1, 1, t1\n",
            " bgt t1, loop\n",
            " outq t0\n outq t2\n halt"
        );
        let perfect = run_src(src, SimConfig::default().with_perfect_prediction());
        let real = run_src(src, SimConfig::default());
        assert_eq!(perfect.out_quads(), real.out_quads(), "outputs must agree");
        assert!(
            real.stats().branch.mispredicts > 0,
            "pattern must mispredict"
        );
        assert!(real.stats().squashed > 0);
        assert!(
            real.stats().cycles >= perfect.stats().cycles,
            "mispredictions cannot speed things up"
        );
    }

    #[test]
    fn memory_dependencies_respected() {
        // Store then immediately load the same location.
        let src = concat!(
            ".data\nbuf: .space 64\n.text\n",
            "main: la t0, buf\n li t1, 1234\n",
            " stq t1, 8(t0)\n",
            " ldq t2, 8(t0)\n",
            " outq t2\n halt"
        );
        let m = run_src(src, SimConfig::default());
        assert_eq!(m.out_quads(), &[1234]);
    }

    #[test]
    fn wide_decode_config_runs() {
        let src = concat!(
            "main: clr t0\n li t1, 30\n",
            "loop: addq t0, 3, t0\n subq t1, 1, t1\n bgt t1, loop\n",
            " outq t0\n halt"
        );
        let m = run_src(src, SimConfig::default().with_wide_decode());
        assert_eq!(m.out_quads(), &[90]);
    }

    #[test]
    fn packing_preserves_architecture() {
        // Independent narrow adds that should pack.
        let src = concat!(
            "main: li t0, 1\n li t1, 2\n li t2, 3\n li t3, 4\n",
            " addq t0, 10, t4\n addq t1, 10, t5\n addq t2, 10, t6\n addq t3, 10, t7\n",
            " addq t4, t5, t4\n addq t6, t7, t6\n addq t4, t6, t4\n",
            " outq t4\n halt"
        );
        let base = run_src(src, SimConfig::default());
        let packed = run_src(
            src,
            SimConfig::default().with_packing(PackConfig::default()),
        );
        assert_eq!(base.out_quads(), packed.out_quads());
        assert_eq!(packed.out_quads(), &[50]);
        assert!(packed.stats().pack.groups > 0, "narrow adds should pack");
    }

    #[test]
    fn replay_packing_squashes_on_carry() {
        // One operand wide with a low half that forces a carry.
        let src = concat!(
            "main: li t0, 0xffff\n",
            " sll t0, 16, t1\n", // t1 = 0xffff_0000
            " bis t1, t0, t1\n", // t1 = 0xffff_ffff (low 16 all ones)
            " li t2, 7\n",
            // Two same-opcode adds: one packable pair where the replay
            // member (wide t1 + narrow) must carry out of bit 15.
            " addq t2, 1, t3\n addq t1, t2, t4\n",
            " outq t4\n halt"
        );
        let m = run_src(
            src,
            SimConfig::default().with_packing(PackConfig::with_replay()),
        );
        assert_eq!(m.out_quads(), &[0xffff_ffffu64 + 7]);
        if m.stats().pack.replay_issued > 0 {
            assert_eq!(m.stats().pack.replay_squashed, m.stats().pack.replay_issued);
        }
    }

    #[test]
    fn warmup_trains_state_without_committing() {
        let src = concat!(
            "main: clr t0\n li t1, 40\n",
            "loop: addq t0, t1, t0\n subq t1, 1, t1\n bgt t1, loop\n",
            " outq t0\n halt"
        );
        let prog = assemble(src).unwrap();
        let mut m = Machine::new(&prog, SimConfig::default());
        let warmed = m.warmup(50).unwrap();
        assert_eq!(warmed, 50);
        assert_eq!(m.stats().committed, 0);
        assert!(m.hierarchy_stats().l1i.accesses() > 0);
        // Detailed simulation picks up where warmup left off.
        m.run(u64::MAX).unwrap();
        assert!(m.done);
        assert_eq!(m.out_quads(), &[820]);
    }

    #[test]
    fn deadlock_reported_not_hung() {
        // An infinite loop never commits halt but always commits
        // *something*, so drive deadlock differently: max_cycles.
        let src = "main: br main";
        let prog = assemble(src).unwrap();
        let mut config = SimConfig::default();
        config.max_cycles = 5_000;
        let mut m = Machine::new(&prog, config);
        let err = m.run(u64::MAX).unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 5_000 });
    }

    #[test]
    fn run_with_instruction_budget_stops_early() {
        let src = concat!("main: clr t0\n", "loop: addq t0, 1, t0\n br loop");
        let prog = assemble(src).unwrap();
        let mut m = Machine::new(&prog, SimConfig::default());
        m.run(1000).unwrap();
        assert!(m.stats().committed >= 1000);
        assert!(!m.done);
    }

    #[test]
    fn bad_fetch_on_correct_path_is_an_error() {
        let prog = assemble("main: nop").unwrap();
        let mut m = Machine::new(&prog, SimConfig::default());
        let err = m.run(u64::MAX).unwrap_err();
        assert!(matches!(err, SimError::BadFetch { .. }));
    }

    #[test]
    fn width_stats_collected() {
        let m = run_src(
            "main: li t0, 17\n addq t0, 2, t1\n outq t1\n halt",
            SimConfig::default(),
        );
        assert!(m.stats().width_committed.total() > 0);
        assert!(m.stats().width_executed.total() > 0);
        assert!(m.stats().breakdown.total_instructions > 0);
        // The add of 17+2 is a narrow op; cumulative at 16 must be > 0.
        assert!(m.stats().width_committed.cumulative(16) > 0.0);
    }

    #[test]
    fn gating_stats_collected_on_baseline_run() {
        let m = run_src(
            "main: li t0, 17\n addq t0, 2, t1\n outq t1\n halt",
            SimConfig::default(),
        );
        let report = m.stats().power.report(m.stats().cycles);
        assert!(report.baseline_mw_per_cycle > 0.0);
        assert!(m.stats().gated_ops > 0, "17+2 gates at 16 bits");
    }

    #[test]
    fn cmov_old_value_dependency_is_honoured() {
        // The cmov must wait for BOTH the condition and the old value of
        // its destination; a long-latency producer of the old value must
        // not be bypassed.
        let src = concat!(
            "main: li t0, 21\n",
            " mulq t0, 2, t1\n", // t1 = 42, 3-cycle latency
            " clr t2\n",
            " cmovne t2, zero, t1\n", // condition false: t1 stays 42
            " cmoveq t2, t0, t3\n",   // condition true: t3 = 21
            " addq t1, t3, v0\n",
            " outq v0\n halt"
        );
        let m = run_src(src, SimConfig::default());
        assert_eq!(m.out_quads(), &[63]);
        let p = run_src(
            src,
            SimConfig::default().with_packing(PackConfig::with_replay()),
        );
        assert_eq!(p.out_quads(), &[63]);
    }

    #[test]
    fn function_calls_use_ras() {
        let src = concat!(
            "main: li a0, 3\n call f\n mov v0, s0\n",
            " li a0, 4\n call f\n addq s0, v0, v0\n",
            " outq v0\n halt\n",
            "f: mulq a0, a0, v0\n ret"
        );
        let m = run_src(src, SimConfig::default());
        assert_eq!(m.out_quads(), &[25]);
        let ps = m.predictor_stats().unwrap();
        assert!(ps.ras_pops > 0);
    }
}
