//! Statistics collection: everything needed to regenerate the paper's
//! figures.
//!
//! * [`WidthHistogram`] — Figure 1 (cumulative operand-width distribution).
//! * [`FluctuationTracker`] — Figure 2 (per-PC 16-bit precision flips).
//! * [`NarrowBreakdown`] — Figures 4 and 5 (narrow ops by class).
//! * [`PackStats`] — Figures 10 and 11 (operation packing).
//! * The power side (Figures 6 and 7) lives in
//!   [`nwo_power::PowerAccumulator`], owned by [`SimStats`].

use nwo_core::width64;
use nwo_isa::OpClass;
use nwo_obs::StallBreakdown;
use nwo_power::PowerAccumulator;
use std::collections::HashMap;

/// Histogram of `max(width(a), width(b))` over operand pairs — the raw
/// data behind Figure 1.
#[derive(Debug, Clone)]
pub struct WidthHistogram {
    counts: [u64; 65],
    total: u64,
}

impl Default for WidthHistogram {
    fn default() -> Self {
        WidthHistogram {
            counts: [0; 65],
            total: 0,
        }
    }
}

impl WidthHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operation's operand pair.
    #[inline]
    pub fn record(&mut self, a: u64, b: u64) {
        let w = width64(a).max(width64(b));
        self.counts[w as usize] += 1;
        self.total += 1;
    }

    /// Total operations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Operations whose wider operand is exactly `n` bits.
    pub fn at(&self, n: u32) -> u64 {
        self.counts[n as usize]
    }

    /// Cumulative fraction of operations with both operands ≤ `n` bits —
    /// one point on a Figure 1 curve.
    pub fn cumulative(&self, n: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts[..=(n as usize).min(64)].iter().sum();
        sum as f64 / self.total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &WidthHistogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.total += other.total;
    }

    /// Exports the distribution as a [`nwo_obs::Log2Histogram`] for the
    /// metrics snapshot: bucket `k` is the count of operations whose
    /// wider operand has exactly `k` significant bits, and `mean` is the
    /// mean bit-width — the raw Figure 1 curve, machine-readable.
    pub fn to_log2(&self) -> nwo_obs::Log2Histogram {
        let mut h = nwo_obs::Log2Histogram::new();
        for (bits, &count) in self.counts.iter().enumerate() {
            if count > 0 {
                h.record_bits(bits, count);
            }
        }
        h
    }
}

/// Tracks, per static instruction (PC), whether its "both operands
/// narrow at 16 bits" property flips across dynamic executions — the
/// quantity of Figure 2.
#[derive(Debug, Clone, Default)]
pub struct FluctuationTracker {
    /// pc -> (last observed narrowness, has fluctuated, executions).
    map: HashMap<u64, (bool, bool, u64)>,
}

impl FluctuationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one dynamic execution of the instruction at `pc`.
    #[inline]
    pub fn record(&mut self, pc: u64, a: u64, b: u64) {
        let narrow = width64(a).max(width64(b)) <= 16;
        match self.map.entry(pc) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (last, fluct, execs) = *e.get();
                *e.get_mut() = (narrow, fluct || last != narrow, execs + 1);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((narrow, false, 1));
            }
        }
    }

    /// Number of distinct PCs observed.
    pub fn static_instructions(&self) -> u64 {
        self.map.len() as u64
    }

    /// Fraction of static instructions (executed at least twice) whose
    /// precision crossed the 16-bit line at least once.
    pub fn fluctuating_fraction(&self) -> f64 {
        let eligible = self.map.values().filter(|(_, _, n)| *n >= 2).count();
        if eligible == 0 {
            return 0.0;
        }
        let flipped = self
            .map
            .values()
            .filter(|(_, fluct, n)| *fluct && *n >= 2)
            .count();
        flipped as f64 / eligible as f64
    }
}

/// Counts of operations whose operands are both narrow, broken down by
/// operation class — the data of Figures 4 and 5.
#[derive(Debug, Clone, Copy, Default)]
pub struct NarrowBreakdown {
    /// Per class: (total, both ≤ 16 bits, both ≤ 33 bits).
    /// Indexed by [`class_slot`].
    pub by_class: [(u64, u64, u64); 6],
    /// All instructions recorded (the percentage denominator).
    pub total_instructions: u64,
}

/// The breakdown slot for a class: arith, logic, shift, mult/div,
/// memory, branch/jump. `None` for system ops.
pub fn class_slot(class: OpClass) -> Option<usize> {
    match class {
        OpClass::IntArith => Some(0),
        OpClass::Logic => Some(1),
        OpClass::Shift => Some(2),
        OpClass::Mult | OpClass::Div => Some(3),
        OpClass::Load | OpClass::Store => Some(4),
        OpClass::Branch | OpClass::Jump => Some(5),
        OpClass::System => None,
    }
}

/// Human-readable names for the breakdown slots.
pub const CLASS_SLOT_NAMES: [&str; 6] = ["arith", "logic", "shift", "mult", "memory", "branch"];

impl NarrowBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed operation.
    #[inline]
    pub fn record(&mut self, class: OpClass, a: u64, b: u64) {
        self.total_instructions += 1;
        let Some(slot) = class_slot(class) else {
            return;
        };
        let w = width64(a).max(width64(b));
        let entry = &mut self.by_class[slot];
        entry.0 += 1;
        if w <= 16 {
            entry.1 += 1;
        }
        if w <= 33 {
            entry.2 += 1;
        }
    }

    /// Fraction of all instructions that are class-`slot` ops with both
    /// operands ≤ 16 bits (a Figure 4 bar segment).
    pub fn narrow16_fraction(&self, slot: usize) -> f64 {
        ratio(self.by_class[slot].1, self.total_instructions)
    }

    /// Fraction of all instructions that are class-`slot` ops with both
    /// operands ≤ 33 bits (a Figure 5 bar segment).
    pub fn narrow33_fraction(&self, slot: usize) -> f64 {
        ratio(self.by_class[slot].2, self.total_instructions)
    }

    /// Total fraction of instructions with both operands ≤ 16 bits.
    pub fn narrow16_total_fraction(&self) -> f64 {
        let n: u64 = self.by_class.iter().map(|c| c.1).sum();
        ratio(n, self.total_instructions)
    }

    /// Total fraction of instructions with both operands ≤ 33 bits.
    pub fn narrow33_total_fraction(&self) -> f64 {
        let n: u64 = self.by_class.iter().map(|c| c.2).sum();
        ratio(n, self.total_instructions)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Per-cycle resource-occupancy accounting: where the machine's
/// bottleneck sits (fetch-starved, dependence-bound, or issue-limited).
#[derive(Debug, Clone, Default)]
pub struct Occupancy {
    /// `issue_slots[n]` = cycles in which exactly `n` issue slots were
    /// used (length `issue_width + 1`).
    pub issue_slots: Vec<u64>,
    /// Sum over cycles of RUU entries occupied (divide by cycles for
    /// the average).
    pub ruu_sum: u64,
    /// Sum over cycles of integer ALUs busy.
    pub alu_sum: u64,
    /// Cycles in which every issue slot was used (issue-bandwidth
    /// saturated — the cycles operation packing relieves).
    pub issue_saturated: u64,
}

impl Occupancy {
    /// Average RUU occupancy over a `cycles`-cycle run.
    pub fn avg_ruu(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.ruu_sum as f64 / cycles as f64
        }
    }

    /// Average ALUs busy per cycle.
    pub fn avg_alus(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.alu_sum as f64 / cycles as f64
        }
    }

    /// Fraction of cycles with all issue slots used.
    pub fn saturation_fraction(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.issue_saturated as f64 / cycles as f64
        }
    }
}

/// Operation-packing counters (Section 5.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackStats {
    /// Packed groups issued (each used one issue slot and one ALU).
    pub groups: u64,
    /// Instructions that issued as members of a packed group.
    pub packed_ops: u64,
    /// Issue slots saved: sum over groups of (size − 1).
    pub slots_saved: u64,
    /// Instructions issued speculatively under replay packing.
    pub replay_issued: u64,
    /// Replay-packed instructions squashed by a carry ripple and
    /// re-issued full-width.
    pub replay_squashed: u64,
}

/// Branch-prediction outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Control-transfer instructions committed.
    pub committed: u64,
    /// Conditional branches committed.
    pub cond_committed: u64,
    /// Correct-path mispredictions (each triggered a recovery).
    pub mispredicts: u64,
}

impl BranchStats {
    /// Prediction accuracy over committed control instructions.
    pub fn accuracy(&self) -> f64 {
        if self.committed == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.committed as f64
        }
    }
}

/// All statistics for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions fetched (includes wrong path).
    pub fetched: u64,
    /// Instructions dispatched into the RUU (includes wrong path).
    pub dispatched: u64,
    /// Instructions issued to functional units (includes wrong path and
    /// replay re-issues).
    pub issued: u64,
    /// Instructions committed (architecturally retired).
    pub committed: u64,
    /// Instructions squashed by recoveries.
    pub squashed: u64,
    /// Committed-instruction operand-width histogram (Figure 1).
    pub width_committed: WidthHistogram,
    /// Executed-instruction operand-width histogram (wrong path
    /// included).
    pub width_executed: WidthHistogram,
    /// Per-PC precision fluctuation over *executed* ops (Figure 2 —
    /// the perfect/realistic contrast comes from wrong-path execution).
    pub fluctuation: FluctuationTracker,
    /// Narrow-operation breakdown over executed ops (Figures 4, 5).
    pub breakdown: NarrowBreakdown,
    /// Integer-unit power accounting (Figures 6, 7).
    pub power: PowerAccumulator,
    /// Extension: narrow-width data-cache/bus traffic accounting (the
    /// paper's Section 6 future work).
    pub mem_ext: nwo_power::MemPowerExt,
    /// Packing counters (Figures 10, 11).
    pub pack: PackStats,
    /// Resource-occupancy accounting.
    pub occupancy: Occupancy,
    /// Lost-commit-slot attribution: every cycle the commit stage
    /// retires fewer than `commit_width` instructions, the missing slots
    /// are charged to one [`nwo_obs::StallCause`]; over a run
    /// `stall.total() == commit_width * cycles - committed` exactly.
    pub stall: StallBreakdown,
    /// Branch counters.
    pub branch: BranchStats,
    /// Power-saving (gated) ops with at least one operand straight from
    /// a load (the 13.1% / 1.5% statistic of Section 4.2).
    pub gated_ops_with_load_operand: u64,
    /// All gated ops (denominator for the above).
    pub gated_ops: u64,
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of gated ops fed directly by a load.
    pub fn load_operand_fraction(&self) -> f64 {
        ratio(self.gated_ops_with_load_operand, self.gated_ops)
    }
}

// ---------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------

use nwo_ckpt::{CkptError, SectionReader, SectionWriter};
use nwo_obs::StallCause;

impl nwo_ckpt::Checkpointable for WidthHistogram {
    fn save(&self, w: &mut SectionWriter) {
        for &c in &self.counts {
            w.put_u64(c);
        }
        w.put_u64(self.total);
    }

    fn restore(&mut self, r: &mut SectionReader) -> Result<(), CkptError> {
        for c in self.counts.iter_mut() {
            *c = r.take_u64("width histogram bucket")?;
        }
        self.total = r.take_u64("width histogram total")?;
        let sum: u64 = self.counts.iter().sum();
        if sum != self.total {
            return Err(CkptError::Mismatch {
                what: "width histogram total",
                found: self.total,
                expected: sum,
            });
        }
        Ok(())
    }
}

/// Serialized sorted by PC so identical trackers always produce
/// byte-identical payloads (the in-memory `HashMap` order is not
/// deterministic).
impl nwo_ckpt::Checkpointable for FluctuationTracker {
    fn save(&self, w: &mut SectionWriter) {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_unstable_by_key(|(pc, _)| **pc);
        w.put_u64(entries.len() as u64);
        for (pc, (last, fluct, execs)) in entries {
            w.put_u64(*pc);
            w.put_bool(*last);
            w.put_bool(*fluct);
            w.put_u64(*execs);
        }
    }

    fn restore(&mut self, r: &mut SectionReader) -> Result<(), CkptError> {
        let n = r.take_len(u64::MAX, "fluctuation tracker entry count")?;
        self.map.clear();
        for _ in 0..n {
            let pc = r.take_u64("fluctuation tracker pc")?;
            let last = r.take_bool("fluctuation tracker narrowness")?;
            let fluct = r.take_bool("fluctuation tracker flip flag")?;
            let execs = r.take_u64("fluctuation tracker executions")?;
            self.map.insert(pc, (last, fluct, execs));
        }
        Ok(())
    }
}

impl nwo_ckpt::Checkpointable for NarrowBreakdown {
    fn save(&self, w: &mut SectionWriter) {
        for (total, n16, n33) in &self.by_class {
            w.put_u64(*total);
            w.put_u64(*n16);
            w.put_u64(*n33);
        }
        w.put_u64(self.total_instructions);
    }

    fn restore(&mut self, r: &mut SectionReader) -> Result<(), CkptError> {
        for entry in self.by_class.iter_mut() {
            entry.0 = r.take_u64("breakdown class total")?;
            entry.1 = r.take_u64("breakdown class narrow16")?;
            entry.2 = r.take_u64("breakdown class narrow33")?;
        }
        self.total_instructions = r.take_u64("breakdown total")?;
        Ok(())
    }
}

impl nwo_ckpt::Checkpointable for Occupancy {
    fn save(&self, w: &mut SectionWriter) {
        w.put_u64(self.issue_slots.len() as u64);
        for &c in &self.issue_slots {
            w.put_u64(c);
        }
        w.put_u64(self.ruu_sum);
        w.put_u64(self.alu_sum);
        w.put_u64(self.issue_saturated);
    }

    fn restore(&mut self, r: &mut SectionReader) -> Result<(), CkptError> {
        let n = r.take_len(1 << 16, "occupancy issue-slot bucket count")?;
        self.issue_slots.clear();
        for _ in 0..n {
            self.issue_slots
                .push(r.take_u64("occupancy issue-slot bucket")?);
        }
        self.ruu_sum = r.take_u64("occupancy ruu_sum")?;
        self.alu_sum = r.take_u64("occupancy alu_sum")?;
        self.issue_saturated = r.take_u64("occupancy issue_saturated")?;
        Ok(())
    }
}

impl nwo_ckpt::Checkpointable for PackStats {
    fn save(&self, w: &mut SectionWriter) {
        w.put_u64(self.groups);
        w.put_u64(self.packed_ops);
        w.put_u64(self.slots_saved);
        w.put_u64(self.replay_issued);
        w.put_u64(self.replay_squashed);
    }

    fn restore(&mut self, r: &mut SectionReader) -> Result<(), CkptError> {
        self.groups = r.take_u64("pack groups")?;
        self.packed_ops = r.take_u64("pack packed_ops")?;
        self.slots_saved = r.take_u64("pack slots_saved")?;
        self.replay_issued = r.take_u64("pack replay_issued")?;
        self.replay_squashed = r.take_u64("pack replay_squashed")?;
        Ok(())
    }
}

impl nwo_ckpt::Checkpointable for BranchStats {
    fn save(&self, w: &mut SectionWriter) {
        w.put_u64(self.committed);
        w.put_u64(self.cond_committed);
        w.put_u64(self.mispredicts);
    }

    fn restore(&mut self, r: &mut SectionReader) -> Result<(), CkptError> {
        self.committed = r.take_u64("branch committed")?;
        self.cond_committed = r.take_u64("branch cond_committed")?;
        self.mispredicts = r.take_u64("branch mispredicts")?;
        Ok(())
    }
}

/// Serializes a [`StallBreakdown`] through its public API — `nwo-obs`
/// stays dependency-free, so the encoding lives here: a cause count
/// (layout guard) followed by one slot counter per [`StallCause::ALL`]
/// entry, in display order.
pub(crate) fn save_stall(b: &StallBreakdown, w: &mut SectionWriter) {
    w.put_u64(StallCause::ALL.len() as u64);
    for cause in StallCause::ALL {
        w.put_u64(b.get(cause));
    }
}

/// Inverse of [`save_stall`]; rejects a file written with a different
/// cause taxonomy.
pub(crate) fn restore_stall(r: &mut SectionReader) -> Result<StallBreakdown, CkptError> {
    let n = r.take_u64("stall cause count")?;
    if n != StallCause::ALL.len() as u64 {
        return Err(CkptError::Mismatch {
            what: "stall cause count",
            found: n,
            expected: StallCause::ALL.len() as u64,
        });
    }
    let mut b = StallBreakdown::new();
    for cause in StallCause::ALL {
        b.charge(cause, r.take_u64("stall cause slots")?);
    }
    Ok(b)
}

impl nwo_ckpt::Checkpointable for SimStats {
    fn save(&self, w: &mut SectionWriter) {
        use nwo_ckpt::Checkpointable as Ckpt;
        w.put_u64(self.cycles);
        w.put_u64(self.fetched);
        w.put_u64(self.dispatched);
        w.put_u64(self.issued);
        w.put_u64(self.committed);
        w.put_u64(self.squashed);
        Ckpt::save(&self.width_committed, w);
        Ckpt::save(&self.width_executed, w);
        Ckpt::save(&self.fluctuation, w);
        Ckpt::save(&self.breakdown, w);
        Ckpt::save(&self.power, w);
        Ckpt::save(&self.mem_ext, w);
        Ckpt::save(&self.pack, w);
        Ckpt::save(&self.occupancy, w);
        save_stall(&self.stall, w);
        Ckpt::save(&self.branch, w);
        w.put_u64(self.gated_ops_with_load_operand);
        w.put_u64(self.gated_ops);
    }

    fn restore(&mut self, r: &mut SectionReader) -> Result<(), CkptError> {
        use nwo_ckpt::Checkpointable as Ckpt;
        self.cycles = r.take_u64("stats cycles")?;
        self.fetched = r.take_u64("stats fetched")?;
        self.dispatched = r.take_u64("stats dispatched")?;
        self.issued = r.take_u64("stats issued")?;
        self.committed = r.take_u64("stats committed")?;
        self.squashed = r.take_u64("stats squashed")?;
        Ckpt::restore(&mut self.width_committed, r)?;
        Ckpt::restore(&mut self.width_executed, r)?;
        Ckpt::restore(&mut self.fluctuation, r)?;
        Ckpt::restore(&mut self.breakdown, r)?;
        Ckpt::restore(&mut self.power, r)?;
        Ckpt::restore(&mut self.mem_ext, r)?;
        Ckpt::restore(&mut self.pack, r)?;
        Ckpt::restore(&mut self.occupancy, r)?;
        self.stall = restore_stall(r)?;
        Ckpt::restore(&mut self.branch, r)?;
        self.gated_ops_with_load_operand = r.take_u64("stats gated_ops_with_load_operand")?;
        self.gated_ops = r.take_u64("stats gated_ops")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_cumulative_behaviour() {
        let mut h = WidthHistogram::new();
        h.record(17, 2); // width 5
        h.record(0xffff, 1); // width 16
        h.record(0x1_0000_0000, 4); // width 33
        assert_eq!(h.total(), 3);
        assert!((h.cumulative(4) - 0.0).abs() < 1e-12);
        assert!((h.cumulative(5) - 1.0 / 3.0).abs() < 1e-12);
        assert!((h.cumulative(16) - 2.0 / 3.0).abs() < 1e-12);
        assert!((h.cumulative(32) - 2.0 / 3.0).abs() < 1e-12);
        assert!((h.cumulative(33) - 1.0).abs() < 1e-12);
        assert!((h.cumulative(64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = WidthHistogram::new();
        a.record(1, 1);
        let mut b = WidthHistogram::new();
        b.record(0x1_0000, 1); // width 17
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.at(1), 1);
        assert_eq!(a.at(17), 1);
    }

    #[test]
    fn histogram_log2_export_preserves_buckets() {
        let mut h = WidthHistogram::new();
        h.record(17, 2); // width 5
        h.record(17, 3); // width 5
        h.record(0x1_0000_0000, 4); // width 33
        let log2 = h.to_log2();
        assert_eq!(log2.count(), 3);
        assert_eq!(log2.bucket(5), 2);
        assert_eq!(log2.bucket(33), 1);
        assert_eq!(log2.max_bucket(), Some(33));
        assert!((log2.mean() - (5.0 + 5.0 + 33.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fluctuation_detects_flips() {
        let mut f = FluctuationTracker::new();
        // PC 0x100 stays narrow; PC 0x200 flips.
        f.record(0x100, 1, 2);
        f.record(0x100, 3, 4);
        f.record(0x200, 1, 2);
        f.record(0x200, 1 << 30, 2);
        assert_eq!(f.static_instructions(), 2);
        assert!((f.fluctuating_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fluctuation_ignores_single_executions() {
        let mut f = FluctuationTracker::new();
        f.record(0x100, 1, 2);
        assert_eq!(f.fluctuating_fraction(), 0.0);
    }

    #[test]
    fn breakdown_fractions() {
        let mut b = NarrowBreakdown::new();
        b.record(OpClass::IntArith, 17, 2); // narrow16 arith
        b.record(OpClass::Load, 0x1_0000_0000, 16); // narrow33 memory
        b.record(OpClass::Mult, 1 << 40, 2); // wide mult
        b.record(OpClass::System, 0, 0); // counted in denominator only
        assert_eq!(b.total_instructions, 4);
        assert!((b.narrow16_fraction(0) - 0.25).abs() < 1e-12);
        assert!((b.narrow16_total_fraction() - 0.25).abs() < 1e-12);
        assert!((b.narrow33_fraction(4) - 0.25).abs() < 1e-12);
        assert!((b.narrow33_total_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(b.by_class[3], (1, 0, 0));
    }

    #[test]
    fn class_slots_cover_everything_but_system() {
        assert_eq!(class_slot(OpClass::IntArith), Some(0));
        assert_eq!(class_slot(OpClass::Div), Some(3));
        assert_eq!(class_slot(OpClass::Store), Some(4));
        assert_eq!(class_slot(OpClass::Jump), Some(5));
        assert_eq!(class_slot(OpClass::System), None);
        assert_eq!(CLASS_SLOT_NAMES.len(), 6);
    }

    #[test]
    fn branch_accuracy() {
        let b = BranchStats {
            committed: 100,
            cond_committed: 80,
            mispredicts: 10,
        };
        assert!((b.accuracy() - 0.9).abs() < 1e-12);
        assert_eq!(BranchStats::default().accuracy(), 1.0);
    }

    #[test]
    fn ipc_computation() {
        let stats = SimStats {
            cycles: 50,
            committed: 100,
            ..SimStats::default()
        };
        assert!((stats.ipc() - 2.0).abs() < 1e-12);
    }
}
