//! Simulator configuration. [`SimConfig::default`] reproduces the
//! baseline machine of Table 1 verbatim.

use nwo_bpred::PredictorConfig;
use nwo_core::{GatingConfig, PackConfig};
use nwo_mem::HierarchyConfig;

/// Largest `trace_limit` [`SimConfig::validate`] accepts: in-memory
/// retention of 2^24 records (~1 GiB) is the point past which only a
/// streaming sink makes sense.
pub const MAX_TRACE_LIMIT: usize = 1 << 24;

/// Branch-prediction mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorChoice {
    /// Oracle prediction: fetch always follows the true path (the paper's
    /// "perfect branch prediction" configurations).
    Perfect,
    /// A real trained predictor.
    Real(PredictorConfig),
}

/// Which of the paper's two optimizations is active.
///
/// "Since the power optimization involves clock gating functional units
/// and the performance optimization involves executing instructions in
/// parallel, only one technique can be used at a time." (Section 5)
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimization {
    /// Baseline machine. Power statistics are still collected (gating is
    /// timing-neutral), using the default [`GatingConfig`].
    None,
    /// Operand-based clock gating (Section 4).
    ClockGating(GatingConfig),
    /// Issue-time operation packing (Section 5).
    Packing(PackConfig),
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Register update unit entries (Table 1: 80).
    pub ruu_size: usize,
    /// Load/store queue entries (Table 1: 40).
    pub lsq_size: usize,
    /// Fetch queue entries (Table 1: 8).
    pub ifq_size: usize,
    /// Instructions fetched per cycle (Table 1: 4).
    pub fetch_width: usize,
    /// Instructions decoded/dispatched per cycle (Table 1: 4).
    pub decode_width: usize,
    /// Issue slots per cycle, out-of-order (Table 1: 4). A packed group
    /// consumes a single slot.
    pub issue_width: usize,
    /// Instructions committed per cycle, in-order (Table 1: 4).
    pub commit_width: usize,
    /// Integer ALUs; arithmetic, logical, shift, memory and branch
    /// operations all contend for these (Table 1: 4).
    pub int_alus: usize,
    /// Integer multiply/divide units (Table 1: 1).
    pub int_muldiv: usize,
    /// ALU latency in cycles.
    pub alu_latency: u64,
    /// Pipelined multiply latency in cycles.
    pub mult_latency: u64,
    /// Non-pipelined divide latency in cycles.
    pub div_latency: u64,
    /// Branch prediction mode (Table 1: the combining predictor).
    pub predictor: PredictorChoice,
    /// Extra fetch-redirect cycles after a misprediction resolves
    /// (Table 1: 2).
    pub mispredict_penalty: u64,
    /// Memory hierarchy (Table 1 caches, TLBs and memory).
    pub hierarchy: HierarchyConfig,
    /// Active optimization.
    pub optimization: Optimization,
    /// Gating configuration used for the always-on power bookkeeping when
    /// `optimization` is not [`Optimization::ClockGating`].
    pub power_bookkeeping: GatingConfig,
    /// Zero-detect performed on values arriving from the data cache
    /// (Section 4.2 discusses processors where this is impossible; when
    /// false, load results carry unknown width tags).
    pub zero_detect_loads: bool,
    /// Hard cycle limit (guards against simulator deadlock).
    pub max_cycles: u64,
    /// Record a pipeline trace for the first N committed instructions
    /// (0 disables tracing). Each record carries the fetch, dispatch,
    /// issue, completion and commit cycles — SimpleScalar's `ptrace`.
    pub trace_limit: usize,
    /// Run a lockstep architectural oracle (a second functional
    /// emulator) against every committed instruction, turning silent
    /// state corruption into a typed
    /// [`SimError::Divergence`](crate::SimError::Divergence) (`nwo sim
    /// --verify`).
    pub verify: bool,
}

impl Default for SimConfig {
    /// The Table 1 baseline configuration.
    fn default() -> Self {
        SimConfig {
            ruu_size: 80,
            lsq_size: 40,
            ifq_size: 8,
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            int_alus: 4,
            int_muldiv: 1,
            alu_latency: 1,
            mult_latency: 3,
            div_latency: 20,
            predictor: PredictorChoice::Real(PredictorConfig::default()),
            mispredict_penalty: 2,
            hierarchy: HierarchyConfig::default(),
            optimization: Optimization::None,
            power_bookkeeping: GatingConfig::default(),
            zero_detect_loads: true,
            max_cycles: u64::MAX,
            trace_limit: 0,
            verify: false,
        }
    }
}

impl SimConfig {
    /// Switches to perfect (oracle) branch prediction.
    pub fn with_perfect_prediction(mut self) -> Self {
        self.predictor = PredictorChoice::Perfect;
        self
    }

    /// Enables clock gating with the given configuration.
    pub fn with_gating(mut self, gating: GatingConfig) -> Self {
        self.optimization = Optimization::ClockGating(gating);
        self
    }

    /// Enables operation packing with the given configuration.
    pub fn with_packing(mut self, pack: PackConfig) -> Self {
        self.optimization = Optimization::Packing(pack);
        self
    }

    /// The paper's widened front end (Section 5.4): decode and fetch
    /// width raised from 4 to 8.
    pub fn with_wide_decode(mut self) -> Self {
        self.fetch_width = 8;
        self.decode_width = 8;
        self.ifq_size = 16;
        self
    }

    /// Enables pipeline tracing for the first `limit` committed
    /// instructions.
    pub fn with_trace(mut self, limit: usize) -> Self {
        self.trace_limit = limit;
        self
    }

    /// The Figure 11 comparison machine: issue width 8 and 8 integer
    /// ALUs (fetch/decode/commit stay at 4).
    pub fn with_eight_issue(mut self) -> Self {
        self.issue_width = 8;
        self.int_alus = 8;
        self
    }

    /// Enables the lockstep architectural oracle.
    pub fn with_verify(mut self) -> Self {
        self.verify = true;
        self
    }

    /// The [`nwo_core::PackConfig`] in effect, if packing is enabled.
    pub fn pack_config(&self) -> Option<PackConfig> {
        match self.optimization {
            Optimization::Packing(p) => Some(p),
            _ => None,
        }
    }

    /// The gating configuration used for power bookkeeping.
    pub fn gating_config(&self) -> GatingConfig {
        match self.optimization {
            Optimization::ClockGating(g) => g,
            _ => self.power_bookkeeping,
        }
    }

    /// A stable 64-bit fingerprint of the full configuration — equal
    /// fingerprints mean every field (including the nested gating,
    /// packing, predictor and hierarchy configurations) is equal, so a
    /// simulation result for one config can stand in for the other.
    ///
    /// The experiment harness keys its memo cache on this value
    /// (`(benchmark, scale, fingerprint)`), deduplicating the many
    /// figures that re-simulate the same machine. Implemented as FNV-1a
    /// over the `Debug` rendering: every field is integer, bool or
    /// enum, so the rendering is deterministic and injective for the
    /// configurations the harness constructs. The value is stable
    /// within a build but is not a cross-version serialization contract.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in format!("{self:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// A fingerprint of only the *warm-state-bearing* configuration: the
    /// memory hierarchy and the branch predictor. Two configs with equal
    /// warm fingerprints train identical cache/TLB/predictor state
    /// during warmup, so a warmed checkpoint taken under one is valid
    /// for the other even when they differ in, say, issue width or the
    /// active optimization. The checkpoint `meta` section embeds this
    /// value and restore rejects a mismatch with
    /// [`nwo_ckpt::CkptError::Mismatch`].
    pub fn warm_fingerprint(&self) -> u64 {
        nwo_ckpt::fnv1a(format!("{:?}|{:?}", self.hierarchy, self.predictor).as_bytes())
    }

    /// Validates structural parameters, returning the first problem as
    /// a typed [`ConfigError`]. Configurations can arrive from the
    /// command line, so a bad one is an input error, not an invariant
    /// violation.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] describing the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let positives: [(bool, &'static str); 11] = [
            (self.ruu_size > 0, "RUU size"),
            (self.lsq_size > 0, "LSQ size"),
            (self.ifq_size > 0, "fetch queue size"),
            (self.fetch_width > 0, "fetch width"),
            (self.decode_width > 0, "decode width"),
            (self.issue_width > 0, "issue width"),
            (self.commit_width > 0, "commit width"),
            (self.int_alus > 0, "integer ALU count"),
            (self.int_muldiv > 0, "integer mul/div unit count"),
            (self.alu_latency >= 1, "ALU latency"),
            (self.max_cycles > 0, "max_cycles"),
        ];
        for (ok, what) in positives {
            if !ok {
                return Err(ConfigError::ZeroParameter { what });
            }
        }
        // `trace_limit` retains every record in memory; past this point
        // the in-memory trace cannot be honoured without defeating its
        // purpose — stream with a JsonlSink instead (`--trace-out`).
        if self.trace_limit > MAX_TRACE_LIMIT {
            return Err(ConfigError::TraceLimitTooLarge {
                requested: self.trace_limit,
            });
        }
        Ok(())
    }
}

/// A structurally invalid [`SimConfig`] or run configuration —
/// reachable from bad command-line input, hence an error rather than
/// a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A capacity, width or latency that must be positive is zero.
    ZeroParameter {
        /// Human-readable name of the offending parameter.
        what: &'static str,
    },
    /// `trace_limit` exceeds the in-memory cap [`MAX_TRACE_LIMIT`].
    TraceLimitTooLarge {
        /// The requested limit.
        requested: usize,
    },
    /// An output path (`--profile-out`, `--telemetry-out`, …) cannot
    /// be written — caught up front so a long simulation never runs
    /// just to fail at the final write.
    UnwritableOutput {
        /// The flag that supplied the path.
        flag: &'static str,
        /// The offending path as given.
        path: String,
        /// Why the path is unwritable.
        reason: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroParameter { what } => {
                write!(f, "{what} must be positive")
            }
            ConfigError::TraceLimitTooLarge { requested } => write!(
                f,
                "trace_limit {requested} exceeds the in-memory cap {MAX_TRACE_LIMIT}; \
                 use a streaming trace sink for longer traces"
            ),
            ConfigError::UnwritableOutput { flag, path, reason } => {
                write!(f, "{flag} {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Checks that `path`'s parent directory exists, is a directory, and
/// is not read-only — the up-front guard behind every `*-out` flag, so
/// an unwritable destination is a typed [`ConfigError`] before the run
/// instead of an I/O panic after it.
///
/// # Errors
///
/// [`ConfigError::UnwritableOutput`] naming the flag, path and reason.
pub fn validate_output_parent(flag: &'static str, path: &str) -> Result<(), ConfigError> {
    let unwritable = |reason| ConfigError::UnwritableOutput {
        flag,
        path: path.to_string(),
        reason,
    };
    if path.is_empty() {
        return Err(unwritable("empty path"));
    }
    let parent = match std::path::Path::new(path).parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => std::path::Path::new("."),
    };
    match std::fs::metadata(parent) {
        Err(_) => Err(unwritable("parent directory does not exist")),
        Ok(meta) if !meta.is_dir() => Err(unwritable("parent is not a directory")),
        Ok(meta) if meta.permissions().readonly() => {
            Err(unwritable("parent directory is read-only"))
        }
        Ok(_) => Ok(()),
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit Table 1 tweaks read better
mod tests {
    use super::*;

    #[test]
    fn default_is_table1() {
        let c = SimConfig::default();
        assert_eq!(c.ruu_size, 80);
        assert_eq!(c.lsq_size, 40);
        assert_eq!(c.ifq_size, 8);
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.decode_width, 4);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.commit_width, 4);
        assert_eq!(c.int_alus, 4);
        assert_eq!(c.int_muldiv, 1);
        assert_eq!(c.mispredict_penalty, 2);
        assert!(matches!(c.predictor, PredictorChoice::Real(_)));
        assert_eq!(c.optimization, Optimization::None);
        assert!(c.zero_detect_loads);
        assert!(!c.verify, "the oracle is opt-in");
        c.validate().expect("Table 1 is valid");
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::default()
            .with_perfect_prediction()
            .with_packing(PackConfig::with_replay())
            .with_wide_decode();
        assert_eq!(c.predictor, PredictorChoice::Perfect);
        assert_eq!(c.decode_width, 8);
        assert_eq!(c.fetch_width, 8);
        assert!(c.pack_config().unwrap().replay);
        c.validate().expect("composed builders stay valid");
    }

    #[test]
    fn eight_issue_machine() {
        let c = SimConfig::default().with_eight_issue();
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.int_alus, 8);
        assert_eq!(c.decode_width, 4, "figure 11 keeps decode at 4");
    }

    #[test]
    fn gating_config_resolution() {
        let base = SimConfig::default();
        assert_eq!(base.gating_config(), GatingConfig::default());
        let custom = GatingConfig {
            gate33: false,
            ..GatingConfig::default()
        };
        let gated = SimConfig::default().with_gating(custom);
        assert_eq!(gated.gating_config(), custom);
        assert!(gated.pack_config().is_none());
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        assert_eq!(
            SimConfig::default().fingerprint(),
            SimConfig::default().fingerprint(),
            "identical configs share a fingerprint"
        );
        let base = SimConfig::default().fingerprint();
        let mut ruu = SimConfig::default();
        ruu.ruu_size += 1;
        assert_ne!(base, ruu.fingerprint(), "scalar fields are hashed");
        let mut zdl = SimConfig::default();
        zdl.zero_detect_loads = false;
        assert_ne!(base, zdl.fingerprint(), "bool fields are hashed");
        assert_ne!(
            base,
            SimConfig::default().with_perfect_prediction().fingerprint(),
            "predictor choice is hashed"
        );
        assert_ne!(
            base,
            SimConfig::default()
                .with_gating(GatingConfig::default())
                .fingerprint(),
            "the optimization variant is hashed"
        );
        let custom_gate = GatingConfig {
            gate33: false,
            ..GatingConfig::default()
        };
        assert_ne!(
            SimConfig::default()
                .with_gating(GatingConfig::default())
                .fingerprint(),
            SimConfig::default().with_gating(custom_gate).fingerprint(),
            "nested config fields are hashed"
        );
    }

    #[test]
    fn warm_fingerprint_tracks_only_warm_state() {
        let base = SimConfig::default().warm_fingerprint();
        let mut wide = SimConfig::default();
        wide.issue_width = 8;
        wide.int_alus = 8;
        assert_eq!(
            base,
            wide.warm_fingerprint(),
            "issue width does not affect warmed state"
        );
        assert_ne!(
            base,
            SimConfig::default()
                .with_perfect_prediction()
                .warm_fingerprint(),
            "the predictor choice does"
        );
        let mut mem = SimConfig::default();
        mem.hierarchy.memory_latency += 1;
        assert_ne!(base, mem.warm_fingerprint(), "the hierarchy does");
    }

    #[test]
    fn zero_ruu_rejected() {
        let mut c = SimConfig::default();
        c.ruu_size = 0;
        let err = c.validate().expect_err("zero RUU is invalid");
        assert_eq!(err, ConfigError::ZeroParameter { what: "RUU size" });
        assert!(err.to_string().contains("RUU"), "{err}");
    }

    #[test]
    fn oversized_trace_limit_rejected() {
        let mut c = SimConfig::default();
        c.trace_limit = MAX_TRACE_LIMIT + 1;
        let err = c.validate().expect_err("oversized trace limit is invalid");
        assert_eq!(
            err,
            ConfigError::TraceLimitTooLarge {
                requested: MAX_TRACE_LIMIT + 1
            }
        );
        assert!(err.to_string().contains("trace_limit"), "{err}");
    }

    #[test]
    fn zero_max_cycles_rejected() {
        let mut c = SimConfig::default();
        c.max_cycles = 0;
        let err = c.validate().expect_err("zero max_cycles is invalid");
        assert!(err.to_string().contains("max_cycles"), "{err}");
    }

    #[test]
    fn output_parent_validation() {
        let dir = std::env::temp_dir().join(format!("nwo-cfg-out-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ok = dir.join("trace.json");
        validate_output_parent("--profile-out", ok.to_str().unwrap())
            .expect("existing writable parent is accepted");
        validate_output_parent("--profile-out", "bare-name.json")
            .expect("a bare filename writes to the current directory");

        let missing = dir.join("no-such-subdir/trace.json");
        let err = validate_output_parent("--profile-out", missing.to_str().unwrap())
            .expect_err("missing parent is rejected");
        assert_eq!(
            err,
            ConfigError::UnwritableOutput {
                flag: "--profile-out",
                path: missing.to_str().unwrap().to_string(),
                reason: "parent directory does not exist",
            }
        );
        assert!(err.to_string().contains("--profile-out"), "{err}");

        let file = dir.join("plain-file");
        std::fs::write(&file, b"x").expect("write");
        let through_file = format!("{}/tele.jsonl", file.display());
        let err = validate_output_parent("--telemetry-out", &through_file)
            .expect_err("a file is not a directory");
        assert!(
            err.to_string().contains("parent is not a directory"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
