//! The speculative functional front end.
//!
//! Following SimpleScalar's `sim-outorder`, instructions execute
//! *functionally, in fetch order*, against an architected register file.
//! When fetch detects that a just-executed branch was mispredicted, the
//! machine keeps fetching down the *predicted* (wrong) path; those
//! wrong-path instructions execute against a speculative overlay
//! (a shadow register map and a byte-granular store hash) so they see
//! real wrong-path values — which is what makes the paper's Figure 2
//! (operand-width fluctuation under realistic vs perfect prediction) and
//! the wrong-path packing effects observable.
//!
//! Recovery throws the overlay away and resumes at the branch's true
//! target.

use nwo_isa::{
    access_bytes, alu_result, branch_taken, ExecRecord, Format, Instr, Opcode, OperandB, Program,
    Reg, TEXT_BASE,
};
use nwo_mem::MainMemory;
use std::collections::HashMap;

/// Speculative in-order functional execution engine.
#[derive(Debug, Clone)]
pub struct Frontend {
    regs: [u64; 32],
    pc: u64,
    mem: MainMemory,
    decoded: Vec<Option<Instr>>,
    /// `halt` executed on the correct path: program over.
    halted: bool,
    /// Currently executing down a known-wrong path.
    spec: bool,
    /// Wrong-path fetch ran off the rails (bad PC or wrong-path halt);
    /// fetch stalls until recovery.
    stalled: bool,
    spec_regs: HashMap<u8, u64>,
    spec_mem: HashMap<u64, u8>,
}

impl Frontend {
    /// Loads `program` (text, data, ABI registers) into a fresh engine.
    pub fn new(program: &Program) -> Self {
        let mut mem = MainMemory::new();
        for (i, &word) in program.text.iter().enumerate() {
            mem.write_u32(TEXT_BASE + 4 * i as u64, word);
        }
        mem.write_bytes(nwo_isa::DATA_BASE, &program.data);
        Frontend {
            regs: Program::initial_registers(),
            pc: program.entry,
            mem,
            decoded: program
                .text
                .iter()
                .map(|&w| Instr::decode(w).ok())
                .collect(),
            halted: false,
            spec: false,
            stalled: false,
            spec_regs: HashMap::new(),
            spec_mem: HashMap::new(),
        }
    }

    /// Next PC to fetch.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// `halt` has executed on the correct path.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Wrong-path fetch is stalled until a recovery redirects it.
    pub fn stalled(&self) -> bool {
        self.stalled
    }

    /// Currently in wrong-path (speculative) mode.
    pub fn spec_mode(&self) -> bool {
        self.spec
    }

    /// Architected (correct-path) register value — overlay ignored.
    #[cfg(test)]
    pub fn arch_reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index() as usize]
        }
    }

    /// The correct-path memory image.
    #[allow(dead_code)] // diagnostic access for tests and tooling
    pub fn mem(&self) -> &MainMemory {
        &self.mem
    }

    /// The full correct-path architectural state: registers, next PC,
    /// halt flag and memory. Used to re-base the verification oracle
    /// after a checkpoint restore replaces warmed frontend state.
    pub(crate) fn arch_state(&self) -> (&[u64; 32], u64, bool, &MainMemory) {
        (&self.regs, self.pc, self.halted, &self.mem)
    }

    fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            return 0;
        }
        if self.spec {
            if let Some(&v) = self.spec_regs.get(&r.index()) {
                return v;
            }
        }
        self.regs[r.index() as usize]
    }

    fn set_reg(&mut self, r: Reg, value: u64) {
        if r.is_zero() {
            return;
        }
        if self.spec {
            self.spec_regs.insert(r.index(), value);
        } else {
            self.regs[r.index() as usize] = value;
        }
    }

    fn read_byte(&self, addr: u64) -> u8 {
        if self.spec {
            if let Some(&b) = self.spec_mem.get(&addr) {
                return b;
            }
        }
        self.mem.read_u8(addr)
    }

    fn read(&self, op: Opcode, addr: u64) -> u64 {
        let n = access_bytes(op);
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate().take(n as usize) {
            *b = self.read_byte(addr.wrapping_add(i as u64));
        }
        let raw = u64::from_le_bytes(bytes);
        match op {
            Opcode::Ldl => raw as u32 as i32 as i64 as u64,
            _ => raw,
        }
    }

    fn write(&mut self, op: Opcode, addr: u64, value: u64) {
        let n = access_bytes(op);
        let bytes = value.to_le_bytes();
        for (i, &b) in bytes.iter().enumerate().take(n as usize) {
            let a = addr.wrapping_add(i as u64);
            if self.spec {
                self.spec_mem.insert(a, b);
            } else {
                self.mem.write_u8(a, b);
            }
        }
    }

    fn fetch_instr(&self, pc: u64) -> Option<Instr> {
        if pc < TEXT_BASE || !pc.is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - TEXT_BASE) / 4) as usize;
        self.decoded.get(idx).copied().flatten()
    }

    /// Executes the instruction at the current PC and advances to the
    /// *actual* next PC. Returns `None` when the engine cannot fetch:
    /// the program has halted, the wrong path is stalled, or the PC is
    /// invalid (a correct-path invalid PC also returns `None` — the
    /// machine treats that as a program error).
    pub fn step(&mut self) -> Option<ExecRecord> {
        if self.halted || self.stalled {
            return None;
        }
        let pc = self.pc;
        let Some(instr) = self.fetch_instr(pc) else {
            // Off the rails. On the wrong path this is expected; on the
            // correct path the caller surfaces an error.
            if self.spec {
                self.stalled = true;
            }
            return None;
        };
        let record = self.execute(pc, instr);
        self.pc = record.next_pc;
        Some(record)
    }

    fn execute(&mut self, pc: u64, instr: Instr) -> ExecRecord {
        let op = instr.op;
        let mut record = ExecRecord {
            pc,
            instr,
            op_a: 0,
            op_b: 0,
            result: None,
            dest: None,
            mem_addr: None,
            store_value: None,
            taken: false,
            next_pc: pc.wrapping_add(4),
        };
        match op.format() {
            Format::Operate => {
                let a = self.reg(instr.ra);
                let b = match instr.b {
                    OperandB::Reg(r) => self.reg(r),
                    OperandB::Lit(l) => l as u64,
                };
                let result = if op.is_cmov() {
                    // Conditional move: the old destination is the third
                    // source.
                    if nwo_isa::cmov_taken(op, a) {
                        b
                    } else {
                        self.reg(instr.rc)
                    }
                } else {
                    alu_result(op, a, b)
                };
                self.set_reg(instr.rc, result);
                record.op_a = a;
                record.op_b = b;
                record.result = Some(result);
                record.dest = Some(instr.rc);
            }
            Format::Memory => {
                let base = self.reg(instr.rb());
                let scaled = match op {
                    Opcode::Ldah => (instr.disp as i64 as u64) << 16,
                    _ => instr.disp as i64 as u64,
                };
                record.op_a = base;
                record.op_b = scaled;
                match op {
                    Opcode::Lda | Opcode::Ldah => {
                        let result = alu_result(op, base, scaled);
                        self.set_reg(instr.ra, result);
                        record.result = Some(result);
                        record.dest = Some(instr.ra);
                    }
                    _ if op.is_load() => {
                        let addr = base.wrapping_add(scaled);
                        let value = self.read(op, addr);
                        self.set_reg(instr.ra, value);
                        record.mem_addr = Some(addr);
                        record.result = Some(value);
                        record.dest = Some(instr.ra);
                    }
                    _ => {
                        let addr = base.wrapping_add(scaled);
                        let value = self.reg(instr.ra);
                        self.write(op, addr, value);
                        record.mem_addr = Some(addr);
                        record.store_value = Some(value);
                    }
                }
            }
            Format::Branch => {
                let a = self.reg(instr.ra);
                record.op_a = a;
                let taken = branch_taken(op, a);
                record.taken = taken;
                if matches!(op, Opcode::Br | Opcode::Bsr) {
                    let link = pc.wrapping_add(4);
                    self.set_reg(instr.ra, link);
                    record.result = Some(link);
                    record.dest = Some(instr.ra);
                }
                if taken {
                    record.next_pc = instr.branch_target(pc);
                }
            }
            Format::Jump => {
                let target = self.reg(instr.rb()) & !3;
                record.op_a = self.reg(instr.rb());
                let link = pc.wrapping_add(4);
                self.set_reg(instr.ra, link);
                record.result = Some(link);
                record.dest = Some(instr.ra);
                record.taken = true;
                record.next_pc = target;
            }
            Format::System => match op {
                Opcode::Halt => {
                    if self.spec {
                        // A wrong-path halt just stalls fetch.
                        self.stalled = true;
                    } else {
                        self.halted = true;
                    }
                    record.next_pc = pc;
                }
                Opcode::Nop => {}
                Opcode::Outb | Opcode::Outq => {
                    // Output side effects happen at commit, in the machine.
                    record.op_a = self.reg(instr.ra);
                }
                _ => unreachable!("system format covers halt/nop/outb/outq"),
            },
        }
        record
    }

    /// Switches into wrong-path mode (a correct-path branch just turned
    /// out mispredicted at fetch).
    pub fn enter_spec(&mut self) {
        debug_assert!(!self.spec, "only one unresolved correct-path mispredict");
        self.spec = true;
    }

    /// Redirects fetch (used both to follow a prediction and after a
    /// wrong-path branch resolves). Clears any wrong-path stall.
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
        if self.spec {
            self.stalled = false;
        }
    }

    /// Full recovery: discard the wrong-path overlay and resume at the
    /// true target of the mispredicted branch.
    pub fn recover(&mut self, target: u64) {
        self.spec = false;
        self.stalled = false;
        self.spec_regs.clear();
        self.spec_mem.clear();
        self.pc = target;
    }

    /// A stable digest of the decoded text segment, identifying the
    /// loaded program. Checkpoints embed it so restoring under a
    /// different program is rejected instead of silently producing
    /// nonsense.
    pub(crate) fn code_digest(&self) -> u64 {
        nwo_ckpt::fnv1a(format!("{:?}", self.decoded).as_bytes())
    }
}

/// Serializes the architected (correct-path) state: registers, PC, the
/// halted flag and the full memory image. The decoded text segment is
/// derived from the program and is not serialized; the speculative
/// overlay is transient and cleared on restore (checkpoints are taken at
/// the warmup boundary, where no wrong path is in flight).
impl nwo_ckpt::Checkpointable for Frontend {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        for &reg in &self.regs {
            w.put_u64(reg);
        }
        w.put_u64(self.pc);
        w.put_bool(self.halted);
        nwo_ckpt::Checkpointable::save(&self.mem, w);
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        for reg in self.regs.iter_mut() {
            *reg = r.take_u64("frontend register")?;
        }
        self.pc = r.take_u64("frontend pc")?;
        self.halted = r.take_bool("frontend halted")?;
        self.spec = false;
        self.stalled = false;
        self.spec_regs.clear();
        self.spec_mem.clear();
        nwo_ckpt::Checkpointable::restore(&mut self.mem, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::assemble;

    fn fe(src: &str) -> Frontend {
        Frontend::new(&assemble(src).expect("assembles"))
    }

    #[test]
    fn correct_path_matches_emulator_semantics() {
        let src = "main: li t0, 5\n addq t0, 3, t1\n outq t1\n halt";
        let mut f = fe(src);
        let r1 = f.step().unwrap();
        assert_eq!(r1.result, Some(5));
        let r2 = f.step().unwrap();
        assert_eq!(r2.op_a, 5);
        assert_eq!(r2.result, Some(8));
        let r3 = f.step().unwrap();
        assert_eq!(r3.op_a, 8);
        let r4 = f.step().unwrap();
        assert_eq!(r4.instr.op, Opcode::Halt);
        assert!(f.halted());
        assert!(f.step().is_none());
    }

    #[test]
    fn wrong_path_executes_in_overlay() {
        // after: t0 = 1; branch to skip (taken); wrong path would clobber t0.
        let src = concat!(
            "main: li t0, 1\n",
            " br skip\n",
            " li t0, 99\n", // wrong path
            "skip: outq t0\n halt"
        );
        let mut f = fe(src);
        f.step().unwrap(); // li
        let br = f.step().unwrap(); // br (taken)
        assert!(br.taken);
        // Pretend the predictor said not-taken: wrong path.
        f.enter_spec();
        f.set_pc(br.pc + 4);
        let wrong = f.step().unwrap();
        assert_eq!(wrong.result, Some(99));
        assert_eq!(f.arch_reg(Reg::new(1)), 1, "architected state untouched");
        // Recovery resumes the true path with t0 intact.
        f.recover(br.next_pc);
        assert!(!f.spec_mode());
        let outq = f.step().unwrap();
        assert_eq!(outq.op_a, 1);
    }

    #[test]
    fn wrong_path_stores_do_not_touch_memory() {
        let src = concat!(
            ".data\nslot: .quad 7\n.text\n",
            "main: la t0, slot\n", // 2 instrs
            " br skip\n",
            " stq zero, 0(t0)\n", // wrong path store
            "skip: ldq t1, 0(t0)\n outq t1\n halt"
        );
        let mut f = fe(src);
        f.step().unwrap();
        f.step().unwrap();
        let br = f.step().unwrap();
        f.enter_spec();
        f.set_pc(br.pc + 4);
        let store = f.step().unwrap();
        assert_eq!(store.store_value, Some(0));
        f.recover(br.next_pc);
        let load = f.step().unwrap();
        assert_eq!(load.result, Some(7), "store must have been contained");
    }

    #[test]
    fn wrong_path_loads_see_wrong_path_stores() {
        let src = concat!(
            ".data\nslot: .quad 7\n.text\n",
            "main: la t0, slot\n",
            " br skip\n",
            "wrong: stq t0, 0(t0)\n",
            " ldq t2, 0(t0)\n",
            "skip: halt"
        );
        let mut f = fe(src);
        f.step().unwrap();
        f.step().unwrap();
        let br = f.step().unwrap();
        f.enter_spec();
        f.set_pc(br.pc + 4);
        f.step().unwrap(); // wrong-path store of t0 (an address)
        let load = f.step().unwrap();
        assert_eq!(
            load.result,
            Some(f.arch_reg(Reg::new(1))),
            "forwarded in overlay"
        );
    }

    #[test]
    fn wrong_path_halt_stalls_until_recovery() {
        let src = concat!(
            "main: br skip\n",
            " halt\n", // wrong path halt
            "skip: nop\n halt"
        );
        let mut f = fe(src);
        let br = f.step().unwrap();
        f.enter_spec();
        f.set_pc(br.pc + 4);
        assert!(f.step().is_some()); // executes the wrong-path halt
        assert!(f.stalled());
        assert!(!f.halted(), "machine not architecturally halted");
        assert!(f.step().is_none());
        f.recover(br.next_pc);
        assert!(f.step().is_some()); // nop on the true path
    }

    #[test]
    fn wrong_path_bad_pc_stalls() {
        let src = "main: clr t3\n br ok\nok: jmp (t3)\n halt";
        let mut f = fe(src);
        f.step().unwrap();
        let br = f.step().unwrap();
        f.enter_spec();
        f.set_pc(0x4); // garbage
        assert!(f.step().is_none());
        assert!(f.stalled());
        f.recover(br.next_pc);
        assert!(!f.stalled());
    }

    #[test]
    fn correct_path_bad_pc_returns_none_without_stall_flag() {
        let src = "main: nop"; // falls off the end
        let mut f = fe(src);
        f.step().unwrap();
        assert!(f.step().is_none());
        assert!(
            !f.stalled() && !f.halted(),
            "caller decides this is an error"
        );
    }
}
