//! End-of-run report: one struct carrying every number the paper's
//! figures need, with a human-readable `Display`.

use crate::stats::SimStats;
use nwo_bpred::PredictorStats;
use nwo_mem::HierarchyStats;
use nwo_obs::StallBreakdown;
use nwo_power::PowerReport;
use std::fmt;

/// Summary of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Full statistics (histograms, breakdowns, packing counters, …).
    pub stats: SimStats,
    /// Lost-commit-slot attribution (a clone of `stats.stall`, kept
    /// directly on the report for figure code and CSV export).
    pub stall: StallBreakdown,
    /// Whether operation packing was configured for the run — the
    /// `Display` impl prints the packing line whenever the optimization
    /// was on, even if no group ever formed (a zero row is a result,
    /// not an absence of one).
    pub packing_enabled: bool,
    /// Integer-unit power summary (Figures 6 and 7).
    pub power: PowerReport,
    /// Memory-system narrow-width extension summary (Section 6 future
    /// work).
    pub mem_ext: nwo_power::MemPowerReport,
    /// Cache and TLB counters.
    pub hierarchy: HierarchyStats,
    /// Predictor counters (absent under perfect prediction).
    pub predictor: Option<PredictorStats>,
    /// Bytes emitted by committed `outb` instructions.
    pub out_bytes: Vec<u8>,
    /// Quadwords emitted by committed `outq` instructions.
    pub out_quads: Vec<u64>,
}

impl SimReport {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Serializes the full report into a standalone checkpoint container
    /// (one `report` section) — the payload the bench harness persists
    /// into its `NWO_CACHE_DIR` disk memo cache.
    pub fn to_ckpt_bytes(&self) -> Vec<u8> {
        let mut w = nwo_ckpt::CheckpointWriter::new();
        w.write_section("report", self);
        w.to_bytes()
    }

    /// Inverse of [`SimReport::to_ckpt_bytes`]. Verifies magic, format
    /// version, code salt and the section CRC before decoding.
    ///
    /// # Errors
    ///
    /// Any [`nwo_ckpt::CkptError`] for a foreign, stale, truncated or
    /// corrupted container.
    pub fn from_ckpt_bytes(bytes: &[u8]) -> Result<SimReport, nwo_ckpt::CkptError> {
        let reader = nwo_ckpt::CheckpointReader::from_bytes(bytes)?;
        let mut report = SimReport::zeroed();
        reader.restore_section("report", &mut report)?;
        Ok(report)
    }

    /// An all-zero receiver for [`SimReport::from_ckpt_bytes`].
    fn zeroed() -> SimReport {
        SimReport {
            stats: SimStats::default(),
            stall: StallBreakdown::new(),
            packing_enabled: false,
            power: nwo_power::PowerAccumulator::new().report(1),
            mem_ext: nwo_power::MemPowerExt::new().report(1),
            hierarchy: HierarchyStats::default(),
            predictor: None,
            out_bytes: Vec::new(),
            out_quads: Vec::new(),
        }
    }
}

impl nwo_ckpt::Checkpointable for SimReport {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        use nwo_ckpt::Checkpointable as Ckpt;
        Ckpt::save(&self.stats, w);
        w.put_bool(self.packing_enabled);
        Ckpt::save(&self.power, w);
        Ckpt::save(&self.mem_ext, w);
        Ckpt::save(&self.hierarchy, w);
        w.put_bool(self.predictor.is_some());
        if let Some(p) = &self.predictor {
            Ckpt::save(p, w);
        }
        w.put_bytes(&self.out_bytes);
        w.put_u64(self.out_quads.len() as u64);
        for &q in &self.out_quads {
            w.put_u64(q);
        }
        // `stall` is a clone of `stats.stall` by construction; it is
        // rebuilt on restore rather than stored twice.
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        use nwo_ckpt::Checkpointable as Ckpt;
        Ckpt::restore(&mut self.stats, r)?;
        self.packing_enabled = r.take_bool("report packing_enabled")?;
        Ckpt::restore(&mut self.power, r)?;
        Ckpt::restore(&mut self.mem_ext, r)?;
        Ckpt::restore(&mut self.hierarchy, r)?;
        if r.take_bool("report predictor presence")? {
            let mut stats = PredictorStats::default();
            Ckpt::restore(&mut stats, r)?;
            self.predictor = Some(stats);
        } else {
            self.predictor = None;
        }
        self.out_bytes = r.take_bytes(u64::MAX, "report out_bytes")?;
        let quads = r.take_len(u64::MAX, "report out_quads count")?;
        self.out_quads = Vec::new();
        for _ in 0..quads {
            self.out_quads.push(r.take_u64("report out_quad")?);
        }
        self.stall = self.stats.stall.clone();
        Ok(())
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.stats;
        writeln!(f, "cycles:               {}", s.cycles)?;
        writeln!(f, "committed:            {}", s.committed)?;
        writeln!(f, "ipc:                  {:.4}", s.ipc())?;
        writeln!(f, "fetched/issued:       {} / {}", s.fetched, s.issued)?;
        writeln!(f, "squashed:             {}", s.squashed)?;
        writeln!(
            f,
            "branches:             {} committed, {} mispredicted ({:.2}% accuracy)",
            s.branch.committed,
            s.branch.mispredicts,
            s.branch.accuracy() * 100.0
        )?;
        writeln!(
            f,
            "narrow ops:           {:.1}% <=16 bits, {:.1}% <=33 bits (executed)",
            s.breakdown.narrow16_total_fraction() * 100.0,
            s.breakdown.narrow33_total_fraction() * 100.0
        )?;
        writeln!(
            f,
            "power (int unit):     {:.1} mW baseline, {:.1} mW gated ({:.1}% reduction)",
            self.power.baseline_mw_per_cycle,
            self.power.gated_mw_per_cycle,
            self.power.reduction_percent
        )?;
        writeln!(
            f,
            "mem ext (Section 6):  {:.1}% of moved bytes redundant; data-array+bus power -{:.1}%",
            self.mem_ext.redundant_byte_fraction * 100.0,
            self.mem_ext.reduction_percent
        )?;
        if self.packing_enabled || s.pack.groups > 0 {
            writeln!(
                f,
                "packing:              {} groups, {} ops packed, {} slots saved, {} replays ({} squashed)",
                s.pack.groups,
                s.pack.packed_ops,
                s.pack.slots_saved,
                s.pack.replay_issued,
                s.pack.replay_squashed
            )?;
        }
        if self.stall.total() > 0 {
            write!(f, "lost commit slots:    {} (", self.stall.total())?;
            let mut first = true;
            for (cause, slots) in self.stall.iter() {
                if slots == 0 {
                    continue;
                }
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{cause} {:.1}%", self.stall.fraction(cause) * 100.0)?;
            }
            writeln!(f, ")")?;
        }
        writeln!(
            f,
            "occupancy:            RUU {:.1} avg, {:.2} ALUs busy, issue saturated {:.1}% of cycles",
            s.occupancy.avg_ruu(s.cycles),
            s.occupancy.avg_alus(s.cycles),
            s.occupancy.saturation_fraction(s.cycles) * 100.0
        )?;
        writeln!(
            f,
            "L1D miss rate:        {:.4}",
            self.hierarchy.l1d.miss_rate()
        )?;
        Ok(())
    }
}
