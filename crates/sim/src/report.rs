//! End-of-run report: one struct carrying every number the paper's
//! figures need, with a human-readable `Display`.

use crate::stats::SimStats;
use nwo_bpred::PredictorStats;
use nwo_mem::HierarchyStats;
use nwo_obs::StallBreakdown;
use nwo_power::PowerReport;
use std::fmt;

/// Summary of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Full statistics (histograms, breakdowns, packing counters, …).
    pub stats: SimStats,
    /// Lost-commit-slot attribution (a clone of `stats.stall`, kept
    /// directly on the report for figure code and CSV export).
    pub stall: StallBreakdown,
    /// Whether operation packing was configured for the run — the
    /// `Display` impl prints the packing line whenever the optimization
    /// was on, even if no group ever formed (a zero row is a result,
    /// not an absence of one).
    pub packing_enabled: bool,
    /// Integer-unit power summary (Figures 6 and 7).
    pub power: PowerReport,
    /// Memory-system narrow-width extension summary (Section 6 future
    /// work).
    pub mem_ext: nwo_power::MemPowerReport,
    /// Cache and TLB counters.
    pub hierarchy: HierarchyStats,
    /// Predictor counters (absent under perfect prediction).
    pub predictor: Option<PredictorStats>,
    /// Bytes emitted by committed `outb` instructions.
    pub out_bytes: Vec<u8>,
    /// Quadwords emitted by committed `outq` instructions.
    pub out_quads: Vec<u64>,
}

impl SimReport {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.stats;
        writeln!(f, "cycles:               {}", s.cycles)?;
        writeln!(f, "committed:            {}", s.committed)?;
        writeln!(f, "ipc:                  {:.4}", s.ipc())?;
        writeln!(f, "fetched/issued:       {} / {}", s.fetched, s.issued)?;
        writeln!(f, "squashed:             {}", s.squashed)?;
        writeln!(
            f,
            "branches:             {} committed, {} mispredicted ({:.2}% accuracy)",
            s.branch.committed,
            s.branch.mispredicts,
            s.branch.accuracy() * 100.0
        )?;
        writeln!(
            f,
            "narrow ops:           {:.1}% <=16 bits, {:.1}% <=33 bits (executed)",
            s.breakdown.narrow16_total_fraction() * 100.0,
            s.breakdown.narrow33_total_fraction() * 100.0
        )?;
        writeln!(
            f,
            "power (int unit):     {:.1} mW baseline, {:.1} mW gated ({:.1}% reduction)",
            self.power.baseline_mw_per_cycle,
            self.power.gated_mw_per_cycle,
            self.power.reduction_percent
        )?;
        writeln!(
            f,
            "mem ext (Section 6):  {:.1}% of moved bytes redundant; data-array+bus power -{:.1}%",
            self.mem_ext.redundant_byte_fraction * 100.0,
            self.mem_ext.reduction_percent
        )?;
        if self.packing_enabled || s.pack.groups > 0 {
            writeln!(
                f,
                "packing:              {} groups, {} ops packed, {} slots saved, {} replays ({} squashed)",
                s.pack.groups,
                s.pack.packed_ops,
                s.pack.slots_saved,
                s.pack.replay_issued,
                s.pack.replay_squashed
            )?;
        }
        if self.stall.total() > 0 {
            write!(f, "lost commit slots:    {} (", self.stall.total())?;
            let mut first = true;
            for (cause, slots) in self.stall.iter() {
                if slots == 0 {
                    continue;
                }
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{cause} {:.1}%", self.stall.fraction(cause) * 100.0)?;
            }
            writeln!(f, ")")?;
        }
        writeln!(
            f,
            "occupancy:            RUU {:.1} avg, {:.2} ALUs busy, issue saturated {:.1}% of cycles",
            s.occupancy.avg_ruu(s.cycles),
            s.occupancy.avg_alus(s.cycles),
            s.occupancy.saturation_fraction(s.cycles) * 100.0
        )?;
        writeln!(
            f,
            "L1D miss rate:        {:.4}",
            self.hierarchy.l1d.miss_rate()
        )?;
        Ok(())
    }
}
