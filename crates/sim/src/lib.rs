#![warn(missing_docs)]

//! Cycle-level out-of-order processor simulator — the SimpleScalar
//! `sim-outorder` equivalent the paper's evaluation runs on, extended in
//! its decode and issue stages with the narrow-width mechanisms:
//!
//! * **dispatch** computes operand width tags and stores them in the RUU
//!   ("In decode, bitwidths are calculated for dynamic data and stored in
//!   the reservation station entry", Section 3.1);
//! * **issue** packs ready narrow-width operations of the same opcode
//!   into shared ALUs (Section 5), optionally with replay speculation;
//! * **writeback/issue** account operand-based clock gating power
//!   (Section 4) — timing-neutral, so every run carries power numbers.
//!
//! # Example
//!
//! ```
//! use nwo_isa::assemble;
//! use nwo_sim::{Simulator, SimConfig};
//!
//! let program = assemble(r#"
//!     main:
//!         clr  t0
//!         li   t1, 10
//!     loop:
//!         addq t0, t1, t0
//!         subq t1, 1, t1
//!         bgt  t1, loop
//!         outq t0
//!         halt
//! "#)?;
//! let mut sim = Simulator::new(&program, SimConfig::default());
//! let report = sim.run(1_000_000)?;
//! assert_eq!(report.out_quads, vec![55]);
//! assert!(report.ipc() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod config;
mod frontend;
mod machine;
mod report;
mod stats;

pub use config::{Optimization, PredictorChoice, SimConfig};
pub use machine::{Machine, SimError, TraceRecord};
pub use report::SimReport;
pub use stats::{
    class_slot, BranchStats, FluctuationTracker, NarrowBreakdown, PackStats, SimStats,
    WidthHistogram, CLASS_SLOT_NAMES,
};

use nwo_isa::Program;

/// High-level driver: construct, optionally warm up, run, report.
#[derive(Debug)]
pub struct Simulator {
    machine: Machine,
}

impl Simulator {
    /// Builds a simulator for `program` under `config`.
    pub fn new(program: &Program, config: SimConfig) -> Simulator {
        Simulator {
            machine: Machine::new(program, config),
        }
    }

    /// Fast-forwards `insts` instructions functionally (warming caches
    /// and the branch predictor) before detailed simulation — the
    /// paper's Section 3.2 methodology.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::BadFetch`] for ill-formed programs.
    pub fn warmup(&mut self, insts: u64) -> Result<u64, SimError> {
        self.machine.warmup(insts)
    }

    /// Runs until `halt` commits or `max_insts` instructions commit,
    /// then produces the report.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(&mut self, max_insts: u64) -> Result<SimReport, SimError> {
        self.machine.run(max_insts)?;
        Ok(self.report())
    }

    /// The pipeline trace collected so far (empty unless
    /// [`SimConfig::trace_limit`] is set).
    pub fn trace(&self) -> &[TraceRecord] {
        self.machine.trace()
    }

    /// Builds a report from the current state (also usable mid-run).
    pub fn report(&self) -> SimReport {
        let stats = self.machine.stats().clone();
        let cycles = stats.cycles.max(self.machine.cycle).max(1);
        SimReport {
            power: stats.power.report(cycles),
            mem_ext: stats.mem_ext.report(cycles),
            hierarchy: self.machine.hierarchy_stats(),
            predictor: self.machine.predictor_stats(),
            out_bytes: self.machine.out_bytes().to_vec(),
            out_quads: self.machine.out_quads().to_vec(),
            stats,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        self.machine.stats()
    }

    /// True once `halt` has committed.
    pub fn finished(&self) -> bool {
        self.machine.done
    }
}
