#![warn(missing_docs)]

//! Cycle-level out-of-order processor simulator — the SimpleScalar
//! `sim-outorder` equivalent the paper's evaluation runs on, extended in
//! its decode and issue stages with the narrow-width mechanisms:
//!
//! * **dispatch** computes operand width tags and stores them in the RUU
//!   ("In decode, bitwidths are calculated for dynamic data and stored in
//!   the reservation station entry", Section 3.1);
//! * **issue** packs ready narrow-width operations of the same opcode
//!   into shared ALUs (Section 5), optionally with replay speculation;
//! * **writeback/issue** account operand-based clock gating power
//!   (Section 4) — timing-neutral, so every run carries power numbers.
//!
//! # Example
//!
//! ```
//! use nwo_isa::assemble;
//! use nwo_sim::{Simulator, SimConfig};
//!
//! let program = assemble(r#"
//!     main:
//!         clr  t0
//!         li   t1, 10
//!     loop:
//!         addq t0, t1, t0
//!         subq t1, 1, t1
//!         bgt  t1, loop
//!         outq t0
//!         halt
//! "#)?;
//! let mut sim = Simulator::new(&program, SimConfig::default());
//! let report = sim.run(1_000_000)?;
//! assert_eq!(report.out_quads, vec![55]);
//! assert!(report.ipc() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod config;
mod frontend;
mod machine;
mod report;
mod stats;

pub use config::{
    validate_output_parent, ConfigError, Optimization, PredictorChoice, SimConfig, MAX_TRACE_LIMIT,
};
pub use machine::{DeadlockSnapshot, Machine, SimError, TraceRecord};
pub use nwo_ckpt as ckpt;
pub use nwo_obs as obs;
pub use nwo_verify as verify;
pub use report::SimReport;
pub use stats::{
    class_slot, BranchStats, FluctuationTracker, NarrowBreakdown, PackStats, SimStats,
    WidthHistogram, CLASS_SLOT_NAMES,
};

use nwo_isa::Program;

/// High-level driver: construct, optionally warm up, run, report.
#[derive(Debug)]
pub struct Simulator {
    machine: Machine,
}

impl Simulator {
    /// Builds a simulator for `program` under `config`.
    pub fn new(program: &Program, config: SimConfig) -> Simulator {
        Simulator {
            machine: Machine::new(program, config),
        }
    }

    /// Fast-forwards `insts` instructions functionally (warming caches
    /// and the branch predictor) before detailed simulation — the
    /// paper's Section 3.2 methodology.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::BadFetch`] for ill-formed programs.
    pub fn warmup(&mut self, insts: u64) -> Result<u64, SimError> {
        self.machine.warmup(insts)
    }

    /// Runs until `halt` commits or `max_insts` instructions commit,
    /// then produces the report.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(&mut self, max_insts: u64) -> Result<SimReport, SimError> {
        self.machine.run(max_insts)?;
        Ok(self.report())
    }

    /// The pipeline trace retained so far (empty unless
    /// [`SimConfig::trace_limit`] is set or a retaining sink is
    /// installed via [`Simulator::set_trace_sink`]).
    pub fn trace(&self) -> Vec<TraceRecord> {
        self.machine.trace()
    }

    /// The raw [`nwo_obs::CommitRecord`]s retained by the trace sink —
    /// the input of [`nwo_obs::pipeview::render`].
    pub fn trace_commits(&self) -> Vec<nwo_obs::CommitRecord> {
        self.machine.trace_commits()
    }

    /// Replaces the trace sink. Install a [`nwo_obs::JsonlSink`] to
    /// stream every pipeline event to disk in O(1) resident memory, a
    /// [`nwo_obs::RingSink`] to retain a bounded window, or a
    /// [`nwo_obs::TeeSink`] for both. Returns the previous sink,
    /// flushed.
    pub fn set_trace_sink(
        &mut self,
        sink: Box<dyn nwo_obs::TraceSink>,
    ) -> Box<dyn nwo_obs::TraceSink> {
        self.machine.set_trace_sink(sink)
    }

    /// Collects every counter in the machine — core pipeline, stall
    /// breakdown, caches and TLBs, branch predictor, power model — into
    /// one machine-readable [`nwo_obs::Snapshot`] (the payload behind
    /// `nwo sim --json` and each `--interval-stats` line).
    pub fn snapshot(&self) -> nwo_obs::Snapshot {
        self.machine.build_snapshot()
    }

    /// Serializes the warmed machine state (post-[`Simulator::warmup`],
    /// pre-[`Simulator::run`]) into a versioned checkpoint container.
    /// See [`Machine::checkpoint`].
    pub fn checkpoint(&self) -> Vec<u8> {
        self.machine.checkpoint()
    }

    /// Restores warmed state saved by [`Simulator::checkpoint`],
    /// replacing the warmup phase. See [`Machine::restore_checkpoint`].
    ///
    /// # Errors
    ///
    /// Any [`nwo_ckpt::CkptError`] for a foreign, stale, truncated,
    /// corrupted or mismatched checkpoint; the machine is untouched on
    /// error.
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), nwo_ckpt::CkptError> {
        self.machine.restore_checkpoint(bytes)
    }

    /// Turns on per-PC lost-commit-slot attribution (`--stall-detail`).
    pub fn enable_stall_detail(&mut self) {
        self.machine.enable_stall_detail();
    }

    /// Commits checked by the lockstep oracle so far (`None` when
    /// [`SimConfig::verify`] is off). See [`Machine::oracle_checked`].
    pub fn oracle_checked(&self) -> Option<u64> {
        self.machine.oracle_checked()
    }

    /// Arms one deterministic datapath fault for a fault campaign. See
    /// [`Machine::inject_datapath_fault`].
    pub fn inject_datapath_fault(&mut self, fault: nwo_verify::DatapathFault) {
        self.machine.inject_datapath_fault(fault);
    }

    /// Flips one bit of branch-predictor state for a fault campaign.
    /// See [`Machine::inject_predictor_fault`].
    pub fn inject_predictor_fault(&mut self, entropy: u64) -> bool {
        self.machine.inject_predictor_fault(entropy)
    }

    /// The per-PC stall breakdowns collected so far (`None` unless
    /// [`Simulator::enable_stall_detail`] was called before running).
    pub fn stall_detail(&self) -> Option<&std::collections::HashMap<u64, nwo_obs::StallBreakdown>> {
        self.machine.stall_detail()
    }

    /// Streams a metrics snapshot to `out` as one JSON line every
    /// `every` cycles of the run (`--interval-stats`). `every == 0`
    /// disables the stream.
    pub fn set_interval_stats(&mut self, every: u64, out: Box<dyn std::io::Write>) {
        self.machine.set_interval_stats(every, out);
    }

    /// Streams compact per-interval telemetry samples to `out` as one
    /// JSON line every `every` cycles (`--telemetry-out`): cycle, IPC,
    /// stall breakdown, power and width-histogram deciles — all
    /// **deltas over the interval**, unlike the cumulative
    /// [`Simulator::set_interval_stats`] snapshots. `every == 0`
    /// disables the stream.
    pub fn set_telemetry(&mut self, every: u64, out: Box<dyn std::io::Write>) {
        self.machine.set_telemetry(every, out);
    }

    /// Builds a report from the current state (also usable mid-run).
    pub fn report(&self) -> SimReport {
        let stats = self.machine.stats().clone();
        let cycles = stats.cycles.max(self.machine.cycle).max(1);
        SimReport {
            power: stats.power.report(cycles),
            mem_ext: stats.mem_ext.report(cycles),
            hierarchy: self.machine.hierarchy_stats(),
            predictor: self.machine.predictor_stats(),
            out_bytes: self.machine.out_bytes().to_vec(),
            out_quads: self.machine.out_quads().to_vec(),
            stall: stats.stall.clone(),
            packing_enabled: self.machine.config.pack_config().is_some(),
            stats,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        self.machine.stats()
    }

    /// True once `halt` has committed.
    pub fn finished(&self) -> bool {
        self.machine.done
    }
}
