//! Machine-level checkpoint fidelity: a warmup→checkpoint→restore→run
//! sequence must be indistinguishable from an uninterrupted
//! warmup→run — byte-for-byte at the report level — and every way a
//! checkpoint can be wrong (corrupt, truncated, foreign program, foreign
//! warm config) must be a typed rejection that leaves the machine
//! untouched.

use nwo_sim::ckpt::CkptError;
use nwo_sim::{SimConfig, SimReport, Simulator};
use proptest::prelude::*;

/// A kernel with enough loop trips, memory traffic and branches to give
/// warmup something to train, and enough left over for the timed run to
/// be non-trivial.
fn kernel(iters: u64) -> nwo_isa::Program {
    nwo_isa::assemble(&format!(
        concat!(
            "main: clr t0\n",
            " li t1, {iters}\n",
            " li t2, 0x2000\n",
            "loop: addq t0, t1, t0\n",
            " stq t0, 0(t2)\n",
            " ldq t3, 0(t2)\n",
            " and t3, 0xff, t4\n",
            " outb t4\n",
            " addq t2, 8, t2\n",
            " subq t1, 1, t1\n",
            " bgt t1, loop\n",
            " outq t0\n",
            " halt\n",
        ),
        iters = iters
    ))
    .expect("assembles")
}

const WARMUP: u64 = 200;
const RUN_LIMIT: u64 = 1_000_000;

/// Warmup → checkpoint → (uninterrupted report, checkpoint bytes).
fn warm_and_run(config: &SimConfig) -> (SimReport, Vec<u8>) {
    let program = kernel(100);
    let mut sim = Simulator::new(&program, config.clone());
    sim.warmup(WARMUP).expect("warms");
    let ckpt = sim.checkpoint();
    let report = sim.run(RUN_LIMIT).expect("runs");
    (report, ckpt)
}

#[test]
fn restore_then_run_is_byte_identical_to_uninterrupted_run() {
    let config = SimConfig::default();
    let (baseline, ckpt) = warm_and_run(&config);

    let program = kernel(100);
    let mut resumed = Simulator::new(&program, config);
    resumed.restore_checkpoint(&ckpt).expect("restores");
    let report = resumed.run(RUN_LIMIT).expect("runs");

    assert_eq!(report.out_bytes, baseline.out_bytes);
    assert_eq!(report.out_quads, baseline.out_quads);
    // The strongest form of the claim: the full serialized reports are
    // byte-identical, so every counter, histogram and power figure agrees.
    assert_eq!(report.to_ckpt_bytes(), baseline.to_ckpt_bytes());
}

#[test]
fn restore_works_across_non_warm_config_changes() {
    // The warm fingerprint deliberately covers only hierarchy + predictor
    // shape, so a checkpoint taken at issue width 4 restores into an
    // issue-width-2 machine (the whole point of sweeping configs off one
    // warmed image).
    let config = SimConfig::default();
    let (_, ckpt) = warm_and_run(&config);

    let mut narrow = config.clone();
    narrow.issue_width = 2;
    narrow.commit_width = 2;
    let program = kernel(100);
    let mut sim = Simulator::new(&program, narrow);
    sim.restore_checkpoint(&ckpt)
        .expect("restores across issue width");
    let report = sim.run(RUN_LIMIT).expect("runs");
    assert_eq!(report.out_quads, vec![5050]);
}

#[test]
fn corrupted_payload_is_a_crc_mismatch() {
    let (_, mut ckpt) = warm_and_run(&SimConfig::default());
    // Flip a bit deep in the last section's payload: the container header
    // stays intact, so this must surface as a CRC failure.
    let last = ckpt.len() - 1;
    ckpt[last] ^= 0x40;
    let program = kernel(100);
    let mut sim = Simulator::new(&program, SimConfig::default());
    match sim.restore_checkpoint(&ckpt) {
        Err(CkptError::CrcMismatch { .. }) => {}
        other => panic!("expected CrcMismatch, got {other:?}"),
    }
    // The machine is untouched: it still runs from cycle zero correctly.
    let report = sim.run(RUN_LIMIT).expect("runs cold");
    assert_eq!(report.out_quads, vec![5050]);
}

#[test]
fn foreign_program_is_a_code_digest_mismatch() {
    let (_, ckpt) = warm_and_run(&SimConfig::default());
    let other = kernel(101); // one more loop trip: different immediate
    let mut sim = Simulator::new(&other, SimConfig::default());
    match sim.restore_checkpoint(&ckpt) {
        Err(CkptError::Mismatch { what, .. }) => {
            assert!(what.contains("code"), "unexpected what: {what}");
        }
        other => panic!("expected Mismatch, got {other:?}"),
    }
}

#[test]
fn foreign_warm_config_is_a_fingerprint_mismatch() {
    let (_, ckpt) = warm_and_run(&SimConfig::default());
    let mut config = SimConfig::default();
    config.hierarchy.memory_latency = 200;
    let program = kernel(100);
    let mut sim = Simulator::new(&program, config);
    match sim.restore_checkpoint(&ckpt) {
        Err(CkptError::Mismatch { what, .. }) => {
            assert!(what.contains("fingerprint"), "unexpected what: {what}");
        }
        other => panic!("expected Mismatch, got {other:?}"),
    }
}

#[test]
fn restore_overwrites_prior_warmup_wholesale() {
    // Restoring into a machine that already warmed up some other amount
    // discards that warm state entirely: results match the baseline that
    // warmed `WARMUP` instructions, not a blend.
    let config = SimConfig::default();
    let (baseline, ckpt) = warm_and_run(&config);
    let program = kernel(100);
    let mut sim = Simulator::new(&program, config);
    sim.warmup(50).expect("warms");
    sim.restore_checkpoint(&ckpt).expect("restores over warmup");
    let report = sim.run(RUN_LIMIT).expect("runs");
    assert_eq!(report.to_ckpt_bytes(), baseline.to_ckpt_bytes());
}

#[test]
fn restore_after_timed_run_is_rejected() {
    let (_, ckpt) = warm_and_run(&SimConfig::default());
    let program = kernel(100);
    let mut sim = Simulator::new(&program, SimConfig::default());
    sim.run(RUN_LIMIT).expect("runs");
    match sim.restore_checkpoint(&ckpt) {
        Err(CkptError::Malformed(_)) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn report_round_trips_through_its_container() {
    let (report, _) = warm_and_run(&SimConfig::default());
    let bytes = report.to_ckpt_bytes();
    let restored = SimReport::from_ckpt_bytes(&bytes).expect("parses");
    assert_eq!(restored.to_ckpt_bytes(), bytes, "re-save is byte-identical");
    assert_eq!(restored.out_quads, report.out_quads);
    assert_eq!(restored.stats.committed, report.stats.committed);
    assert_eq!(restored.stall, report.stall);
}

#[test]
fn stall_detail_partitions_the_global_breakdown() {
    let program = kernel(50);
    let mut sim = Simulator::new(&program, SimConfig::default());
    sim.enable_stall_detail();
    sim.run(RUN_LIMIT).expect("runs");
    let per_pc = sim.stall_detail().expect("enabled");
    assert!(!per_pc.is_empty(), "a real run loses some commit slots");
    let attributed: u64 = per_pc.values().map(|b| b.total()).sum();
    assert_eq!(
        attributed,
        sim.stats().stall.total(),
        "per-PC attribution must partition the global stall total"
    );
}

/// `Write` adapter sharing one buffer with the test body, so the
/// interval sink (which takes ownership of its writer) can be inspected.
#[derive(Clone)]
struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn interval_stats_stream_parseable_snapshots() {
    let buf = SharedBuf(std::sync::Arc::new(std::sync::Mutex::new(Vec::new())));
    let program = kernel(100);
    let mut sim = Simulator::new(&program, SimConfig::default());
    sim.set_interval_stats(50, Box::new(buf.clone()));
    sim.run(RUN_LIMIT).expect("runs");
    let final_cycles = sim.stats().cycles;

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf-8");
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(
        lines.len() as u64 >= final_cycles / 50,
        "one snapshot per 50 cycles: got {} lines for {} cycles",
        lines.len(),
        final_cycles
    );
    let mut last_cycles = 0u64;
    for line in &lines {
        let value = nwo_sim::obs::json::parse(line).expect("valid JSON");
        // Snapshot keys are flat dotted paths; cycle counts must be
        // present and non-decreasing across the stream.
        let snap_cycles = value
            .get("sim.cycles")
            .and_then(|c| c.as_u64())
            .expect("sim.cycles present");
        assert!(snap_cycles >= last_cycles);
        last_cycles = snap_cycles;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Truncating a machine checkpoint anywhere is a typed error, never
    /// a panic or a silent partial restore.
    #[test]
    fn truncated_machine_checkpoint_is_rejected(cut_seed in any::<u64>()) {
        let program = kernel(20);
        let mut sim = Simulator::new(&program, SimConfig::default());
        sim.warmup(50).expect("warms");
        let ckpt = sim.checkpoint();
        let cut = (cut_seed % ckpt.len() as u64) as usize;
        let mut receiver = Simulator::new(&program, SimConfig::default());
        prop_assert!(receiver.restore_checkpoint(&ckpt[..cut]).is_err());
        // And the receiver still works from cold afterwards.
        let report = receiver.run(RUN_LIMIT).expect("runs cold");
        prop_assert_eq!(report.out_quads, vec![210]);
    }

    /// Warmup length does not change restore fidelity: any split point
    /// gives the same final architectural output as an uninterrupted run.
    #[test]
    fn any_warmup_split_preserves_output(warm in 1u64..400) {
        let program = kernel(40);
        let config = SimConfig::default();
        let mut a = Simulator::new(&program, config.clone());
        a.warmup(warm).expect("warms");
        let ckpt = a.checkpoint();
        let base = a.run(RUN_LIMIT).expect("runs");

        let mut b = Simulator::new(&program, config);
        b.restore_checkpoint(&ckpt).expect("restores");
        let resumed = b.run(RUN_LIMIT).expect("runs");
        prop_assert_eq!(&resumed.out_bytes, &base.out_bytes);
        prop_assert_eq!(&resumed.out_quads, &base.out_quads);
        prop_assert_eq!(resumed.to_ckpt_bytes(), base.to_ckpt_bytes());
    }
}
