//! Pure operational semantics, shared by the functional emulator and the
//! cycle-level simulator so values can never diverge between the two.

use crate::op::Opcode;

fn sext32(v: u64) -> u64 {
    v as u32 as i32 as i64 as u64
}

/// Computes the result of an ALU operation (operate-format opcodes plus
/// `lda`/`ldah`, whose second operand is the scaled displacement).
///
/// Division by zero yields zero (this machine has no arithmetic traps),
/// and `i64::MIN / -1` wraps, matching two's-complement hardware.
///
/// # Panics
///
/// Panics (in debug builds) if called with a non-ALU opcode.
pub fn alu_result(op: Opcode, a: u64, b: u64) -> u64 {
    match op {
        Opcode::Addq | Opcode::Lda | Opcode::Ldah => a.wrapping_add(b),
        Opcode::Subq => a.wrapping_sub(b),
        Opcode::Addl => sext32(a.wrapping_add(b)),
        Opcode::Subl => sext32(a.wrapping_sub(b)),
        Opcode::Cmpeq => (a == b) as u64,
        Opcode::Cmplt => ((a as i64) < (b as i64)) as u64,
        Opcode::Cmple => ((a as i64) <= (b as i64)) as u64,
        Opcode::Cmpult => (a < b) as u64,
        Opcode::Cmpule => (a <= b) as u64,
        Opcode::And => a & b,
        Opcode::Bis => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Bic => a & !b,
        Opcode::Ornot => a | !b,
        Opcode::Eqv => a ^ !b,
        Opcode::Sextb => b as u8 as i8 as i64 as u64,
        Opcode::Sextw => b as u16 as i16 as i64 as u64,
        Opcode::Sll => a << (b & 63),
        Opcode::Srl => a >> (b & 63),
        Opcode::Sra => ((a as i64) >> (b & 63)) as u64,
        Opcode::Mulq => a.wrapping_mul(b),
        Opcode::Mull => sext32(a.wrapping_mul(b)),
        Opcode::Divq => {
            if b == 0 {
                0
            } else {
                (a as i64).wrapping_div(b as i64) as u64
            }
        }
        Opcode::Remq => {
            if b == 0 {
                0
            } else {
                (a as i64).wrapping_rem(b as i64) as u64
            }
        }
        other => {
            debug_assert!(false, "alu_result called with non-ALU opcode {other}");
            0
        }
    }
}

/// Evaluates a conditional-move condition given the tested register
/// value `a`: when true, the move happens.
///
/// # Panics
///
/// Panics (in debug builds) if called with a non-cmov opcode.
pub fn cmov_taken(op: Opcode, a: u64) -> bool {
    match op {
        Opcode::Cmoveq => a == 0,
        Opcode::Cmovne => a != 0,
        Opcode::Cmovlt => (a as i64) < 0,
        Opcode::Cmovge => (a as i64) >= 0,
        other => {
            debug_assert!(false, "cmov_taken called with non-cmov opcode {other}");
            false
        }
    }
}

/// Evaluates a conditional-branch direction given the tested register
/// value `a`. `br` and `bsr` are unconditionally taken.
///
/// # Panics
///
/// Panics (in debug builds) if called with a non-branch opcode.
pub fn branch_taken(op: Opcode, a: u64) -> bool {
    match op {
        Opcode::Br | Opcode::Bsr => true,
        Opcode::Beq => a == 0,
        Opcode::Bne => a != 0,
        Opcode::Blt => (a as i64) < 0,
        Opcode::Ble => (a as i64) <= 0,
        Opcode::Bgt => (a as i64) > 0,
        Opcode::Bge => (a as i64) >= 0,
        Opcode::Blbc => a & 1 == 0,
        Opcode::Blbs => a & 1 == 1,
        other => {
            debug_assert!(false, "branch_taken called with non-branch opcode {other}");
            false
        }
    }
}

/// Number of bytes moved by a load or store opcode.
///
/// # Panics
///
/// Panics (in debug builds) if called with a non-memory opcode.
pub fn access_bytes(op: Opcode) -> u64 {
    match op {
        Opcode::Ldq | Opcode::Stq => 8,
        Opcode::Ldl | Opcode::Stl => 4,
        Opcode::Ldwu | Opcode::Stw => 2,
        Opcode::Ldbu | Opcode::Stb => 1,
        other => {
            debug_assert!(false, "access_bytes called with non-memory opcode {other}");
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadword_arithmetic_wraps() {
        assert_eq!(alu_result(Opcode::Addq, u64::MAX, 1), 0);
        assert_eq!(alu_result(Opcode::Subq, 0, 1), u64::MAX);
        assert_eq!(alu_result(Opcode::Addq, 17, 2), 19);
    }

    #[test]
    fn longword_arithmetic_sign_extends() {
        // 0x7fff_ffff + 1 overflows to a negative longword.
        assert_eq!(
            alu_result(Opcode::Addl, 0x7fff_ffff, 1),
            0xffff_ffff_8000_0000
        );
        assert_eq!(alu_result(Opcode::Subl, 0, 1), u64::MAX);
        assert_eq!(alu_result(Opcode::Addl, 5, 7), 12);
    }

    #[test]
    fn compares_are_zero_or_one() {
        assert_eq!(alu_result(Opcode::Cmpeq, 3, 3), 1);
        assert_eq!(alu_result(Opcode::Cmpeq, 3, 4), 0);
        // Signed vs unsigned comparison of -1 and 1.
        let neg1 = (-1i64) as u64;
        assert_eq!(alu_result(Opcode::Cmplt, neg1, 1), 1);
        assert_eq!(alu_result(Opcode::Cmpult, neg1, 1), 0);
        assert_eq!(alu_result(Opcode::Cmple, 5, 5), 1);
        assert_eq!(alu_result(Opcode::Cmpule, 6, 5), 0);
    }

    #[test]
    fn logical_identities() {
        let a = 0xf0f0_f0f0_1234_5678u64;
        let b = 0x0ff0_0ff0_8765_4321u64;
        assert_eq!(alu_result(Opcode::And, a, b), a & b);
        assert_eq!(alu_result(Opcode::Bis, a, b), a | b);
        assert_eq!(alu_result(Opcode::Xor, a, b), a ^ b);
        assert_eq!(alu_result(Opcode::Bic, a, b), a & !b);
        assert_eq!(alu_result(Opcode::Ornot, a, b), a | !b);
        assert_eq!(alu_result(Opcode::Eqv, a, b), a ^ !b);
    }

    #[test]
    fn sign_extension_ops() {
        assert_eq!(alu_result(Opcode::Sextb, 0, 0x80), 0xffff_ffff_ffff_ff80);
        assert_eq!(alu_result(Opcode::Sextb, 0, 0x7f), 0x7f);
        assert_eq!(alu_result(Opcode::Sextw, 0, 0x8000), 0xffff_ffff_ffff_8000);
        assert_eq!(alu_result(Opcode::Sextw, 0, 0x1234), 0x1234);
    }

    #[test]
    fn shifts_mask_amount_to_six_bits() {
        assert_eq!(alu_result(Opcode::Sll, 1, 65), 2);
        assert_eq!(alu_result(Opcode::Srl, 0x8000_0000_0000_0000, 63), 1);
        assert_eq!(alu_result(Opcode::Sra, 0x8000_0000_0000_0000, 63), u64::MAX);
    }

    #[test]
    fn multiply_forms() {
        // 2^40 * 2^30 = 2^70 wraps to 0 modulo 2^64.
        assert_eq!(alu_result(Opcode::Mulq, 1 << 40, 1 << 30), 0);
        assert_eq!(alu_result(Opcode::Mulq, 7, 6), 42);
        // mull keeps only the low 32 bits, sign-extended.
        assert_eq!(
            alu_result(Opcode::Mull, 0x1_0000_0001, 0x8000_0000),
            0xffff_ffff_8000_0000
        );
    }

    #[test]
    fn division_avoids_traps() {
        assert_eq!(alu_result(Opcode::Divq, 42, 0), 0);
        assert_eq!(alu_result(Opcode::Remq, 42, 0), 0);
        assert_eq!(alu_result(Opcode::Divq, (-7i64) as u64, 2), (-3i64) as u64);
        assert_eq!(alu_result(Opcode::Remq, (-7i64) as u64, 2), (-1i64) as u64);
        // i64::MIN / -1 wraps instead of trapping.
        assert_eq!(
            alu_result(Opcode::Divq, i64::MIN as u64, (-1i64) as u64),
            i64::MIN as u64
        );
    }

    #[test]
    fn cmov_conditions() {
        let neg = (-3i64) as u64;
        assert!(cmov_taken(Opcode::Cmoveq, 0) && !cmov_taken(Opcode::Cmoveq, 1));
        assert!(cmov_taken(Opcode::Cmovne, 5) && !cmov_taken(Opcode::Cmovne, 0));
        assert!(cmov_taken(Opcode::Cmovlt, neg) && !cmov_taken(Opcode::Cmovlt, 0));
        assert!(cmov_taken(Opcode::Cmovge, 0) && !cmov_taken(Opcode::Cmovge, neg));
    }

    #[test]
    fn branch_directions() {
        let neg = (-5i64) as u64;
        assert!(branch_taken(Opcode::Br, 0));
        assert!(branch_taken(Opcode::Bsr, 0));
        assert!(branch_taken(Opcode::Beq, 0) && !branch_taken(Opcode::Beq, 1));
        assert!(branch_taken(Opcode::Bne, 1) && !branch_taken(Opcode::Bne, 0));
        assert!(branch_taken(Opcode::Blt, neg) && !branch_taken(Opcode::Blt, 0));
        assert!(branch_taken(Opcode::Ble, 0) && !branch_taken(Opcode::Ble, 1));
        assert!(branch_taken(Opcode::Bgt, 1) && !branch_taken(Opcode::Bgt, 0));
        assert!(branch_taken(Opcode::Bge, 0) && !branch_taken(Opcode::Bge, neg));
        assert!(branch_taken(Opcode::Blbc, 2) && !branch_taken(Opcode::Blbc, 3));
        assert!(branch_taken(Opcode::Blbs, 3) && !branch_taken(Opcode::Blbs, 2));
    }

    #[test]
    fn access_sizes() {
        assert_eq!(access_bytes(Opcode::Ldq), 8);
        assert_eq!(access_bytes(Opcode::Stl), 4);
        assert_eq!(access_bytes(Opcode::Ldwu), 2);
        assert_eq!(access_bytes(Opcode::Stb), 1);
    }
}
