//! Executable program images.
//!
//! A [`Program`] is the output of the assembler and the input to both the
//! functional emulator and the cycle-level simulator. The memory layout
//! deliberately reproduces the property the paper highlights in Figure 1:
//! heap and stack live above 4 GB, so data addresses are **33-bit**
//! quantities while small integer data stays narrow.

use crate::instr::Instr;
use crate::reg::Reg;
use std::collections::HashMap;

/// Base address of the text (code) segment.
pub const TEXT_BASE: u64 = 0x1_0000;
/// Base address of the data segment. Bit 32 is set so that global-data
/// addresses require 33 bits, reproducing the address-width peak of
/// Figure 1 in the paper.
pub const DATA_BASE: u64 = 0x1_0000_0000;
/// Initial stack pointer (stack grows down). Also a 33-bit address.
pub const STACK_TOP: u64 = 0x1_7fff_ff00;

/// An assembled program image.
///
/// # Example
///
/// ```
/// use nwo_isa::assemble;
///
/// let prog = assemble("main: halt")?;
/// assert_eq!(prog.entry, nwo_isa::TEXT_BASE);
/// assert_eq!(prog.text.len(), 1);
/// # Ok::<(), nwo_isa::AsmError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Encoded instruction words, loaded starting at [`TEXT_BASE`].
    pub text: Vec<u32>,
    /// Initialised data bytes, loaded starting at [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Entry point (the `main` label when present, else [`TEXT_BASE`]).
    pub entry: u64,
    /// Label → address map for both segments.
    pub symbols: HashMap<String, u64>,
}

impl Program {
    /// Decodes the instruction at byte address `addr`, if it lies in text.
    pub fn instr_at(&self, addr: u64) -> Option<Instr> {
        if addr < TEXT_BASE || !addr.is_multiple_of(4) {
            return None;
        }
        let idx = ((addr - TEXT_BASE) / 4) as usize;
        self.text.get(idx).and_then(|&w| Instr::decode(w).ok())
    }

    /// Address of a label.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Number of instructions in the text segment.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True when the text segment is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Disassembles the whole text segment, one instruction per line.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, &word) in self.text.iter().enumerate() {
            let addr = TEXT_BASE + 4 * i as u64;
            match Instr::decode(word) {
                Ok(instr) => {
                    let _ = writeln!(out, "{addr:#010x}: {instr}");
                }
                Err(_) => {
                    let _ = writeln!(out, "{addr:#010x}: .word {word:#010x}");
                }
            }
        }
        out
    }

    /// Serialises the image to the `NWO1` container format: a 20-byte
    /// header (magic, entry, text words, data bytes) followed by the two
    /// segments. Symbols are not stored.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.text.len() * 4 + self.data.len());
        out.extend_from_slice(b"NWO1");
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.extend_from_slice(&(self.text.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        for &w in &self.text {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&self.data);
        out
    }

    /// Deserialises an `NWO1` container produced by [`Program::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on a bad magic number or truncated
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Program, String> {
        if bytes.len() < 20 || &bytes[0..4] != b"NWO1" {
            return Err("not an NWO1 program image".to_string());
        }
        let entry = u64::from_le_bytes(bytes[4..12].try_into().expect("sized"));
        let text_words = u32::from_le_bytes(bytes[12..16].try_into().expect("sized")) as usize;
        let data_len = u32::from_le_bytes(bytes[16..20].try_into().expect("sized")) as usize;
        let need = 20 + text_words * 4 + data_len;
        if bytes.len() < need {
            return Err(format!(
                "truncated NWO1 image: {} bytes, need {need}",
                bytes.len()
            ));
        }
        let text = bytes[20..20 + text_words * 4]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("sized")))
            .collect();
        let data = bytes[20 + text_words * 4..need].to_vec();
        Ok(Program {
            text,
            data,
            entry,
            symbols: HashMap::new(),
        })
    }

    /// The architectural register state at program start: `gp` points at
    /// the data segment, `sp` at the stack top, everything else is zero.
    pub fn initial_registers() -> [u64; 32] {
        let mut regs = [0u64; 32];
        regs[Reg::GP.index() as usize] = DATA_BASE;
        regs[Reg::SP.index() as usize] = STACK_TOP;
        regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the layout contract
    fn layout_constants_have_33_bit_data_addresses() {
        assert!(DATA_BASE >> 32 == 1, "data base must set bit 32");
        assert!(STACK_TOP >> 32 == 1, "stack must set bit 32");
        assert!(TEXT_BASE < (1 << 31), "text must be reachable by li");
    }

    #[test]
    fn initial_registers_convention() {
        let regs = Program::initial_registers();
        assert_eq!(regs[Reg::GP.index() as usize], DATA_BASE);
        assert_eq!(regs[Reg::SP.index() as usize], STACK_TOP);
        assert_eq!(regs[0], 0);
        assert_eq!(regs[31], 0);
    }

    #[test]
    fn instr_at_bounds() {
        let prog = Program {
            text: vec![Instr::system(Opcode::Halt, Reg::ZERO).encode()],
            ..Program::default()
        };
        assert_eq!(prog.instr_at(TEXT_BASE).unwrap().op, Opcode::Halt);
        assert!(prog.instr_at(TEXT_BASE + 4).is_none());
        assert!(prog.instr_at(TEXT_BASE + 1).is_none());
        assert!(prog.instr_at(0).is_none());
        assert_eq!(prog.len(), 1);
        assert!(!prog.is_empty());
    }

    #[test]
    fn nwo1_container_round_trips() {
        let prog = Program {
            text: vec![
                Instr::operate_lit(Opcode::Addq, Reg::new(1), 2, Reg::new(1)).encode(),
                Instr::system(Opcode::Halt, Reg::ZERO).encode(),
            ],
            data: vec![1, 2, 3, 4, 5],
            entry: TEXT_BASE + 4,
            symbols: HashMap::new(),
        };
        let bytes = prog.to_bytes();
        let back = Program::from_bytes(&bytes).expect("round trips");
        assert_eq!(back.text, prog.text);
        assert_eq!(back.data, prog.data);
        assert_eq!(back.entry, prog.entry);
    }

    #[test]
    fn nwo1_rejects_garbage() {
        assert!(Program::from_bytes(b"ELF!").is_err());
        assert!(Program::from_bytes(&[]).is_err());
        let mut bytes = Program::default().to_bytes();
        bytes[15] = 0xff; // claim a huge text segment
        assert!(Program::from_bytes(&bytes).is_err());
    }

    #[test]
    fn disassemble_formats_lines() {
        let prog = Program {
            text: vec![
                Instr::operate_lit(Opcode::Addq, Reg::new(1), 2, Reg::new(1)).encode(),
                Instr::system(Opcode::Halt, Reg::ZERO).encode(),
            ],
            ..Program::default()
        };
        let dis = prog.disassemble();
        assert!(dis.contains("addq t0, #2, t0"));
        assert!(dis.contains("halt"));
    }
}
