//! Opcodes, instruction formats and operation classes.

use std::fmt;

/// Instruction encoding format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// `op ra, rb|#lit, rc` — three-register (or register/literal) ALU form.
    Operate,
    /// `op ra, disp16(rb)` — loads, stores, and the `lda`/`ldah` address ops.
    Memory,
    /// `op ra, disp21` — PC-relative conditional branches, `br`, `bsr`.
    Branch,
    /// `op ra, (rb)` — register-indirect `jmp`/`jsr`/`ret`.
    Jump,
    /// `halt`, `nop`, `outb`, `outq`.
    System,
}

/// Functional-unit class of an operation.
///
/// This is the classification the paper's power model (Table 4) and
/// packing rules key on: arithmetic and compares run on the carry-lookahead
/// adder, logical operations on the bit-wise unit, shifts on the shifter,
/// multiplies/divides on the Booth multiplier, and memory/branch
/// operations use the adder for effective-address computation or compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Add/subtract/compare — uses the adder.
    IntArith,
    /// Bit-wise logical operations.
    Logic,
    /// Shift operations.
    Shift,
    /// Integer multiply.
    Mult,
    /// Integer divide/remainder.
    Div,
    /// Memory load (adder computes the effective address).
    Load,
    /// Memory store (adder computes the effective address).
    Store,
    /// PC-relative branch (adder performs the compare).
    Branch,
    /// Register-indirect jump.
    Jump,
    /// Halt / nop / output.
    System,
}

impl OpClass {
    /// True for classes that execute on an integer ALU and produce a
    /// register result subject to the paper's width analysis (Figure 4's
    /// arithmetic / logical / shift / multiply breakdown).
    pub fn is_width_analyzed(self) -> bool {
        matches!(
            self,
            OpClass::IntArith | OpClass::Logic | OpClass::Shift | OpClass::Mult | OpClass::Div
        )
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntArith => "arith",
            OpClass::Logic => "logic",
            OpClass::Shift => "shift",
            OpClass::Mult => "mult",
            OpClass::Div => "div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Jump => "jump",
            OpClass::System => "system",
        };
        f.write_str(s)
    }
}

macro_rules! opcodes {
    ($( $variant:ident = $code:literal, $mnemonic:literal, $format:ident, $class:ident; )*) => {
        /// Machine opcodes.
        ///
        /// The set is Alpha-flavoured: quadword (64-bit) and longword
        /// (sign-extending 32-bit) arithmetic, register/8-bit-literal ALU
        /// forms, displacement addressing and PC-relative branches.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Opcode {
            $(
                #[doc = concat!("`", $mnemonic, "`")]
                $variant = $code,
            )*
        }

        impl Opcode {
            /// All opcodes, in encoding order.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$variant),*];

            /// The 6-bit encoding of this opcode.
            pub const fn code(self) -> u8 {
                self as u8
            }

            /// Decodes a 6-bit opcode field.
            pub fn from_code(code: u8) -> Option<Opcode> {
                match code {
                    $( $code => Some(Opcode::$variant), )*
                    _ => None,
                }
            }

            /// The assembly mnemonic.
            pub const fn mnemonic(self) -> &'static str {
                match self {
                    $( Opcode::$variant => $mnemonic, )*
                }
            }

            /// Parses a mnemonic (case-insensitive).
            pub fn from_mnemonic(s: &str) -> Option<Opcode> {
                let lower = s.to_ascii_lowercase();
                match lower.as_str() {
                    $( $mnemonic => Some(Opcode::$variant), )*
                    _ => None,
                }
            }

            /// The encoding format of this opcode.
            pub const fn format(self) -> Format {
                match self {
                    $( Opcode::$variant => Format::$format, )*
                }
            }

            /// The functional-unit class of this opcode.
            pub const fn class(self) -> OpClass {
                match self {
                    $( Opcode::$variant => OpClass::$class, )*
                }
            }
        }
    };
}

opcodes! {
    // Quadword arithmetic.
    Addq = 0x00, "addq", Operate, IntArith;
    Subq = 0x01, "subq", Operate, IntArith;
    // Longword (32-bit, sign-extending) arithmetic.
    Addl = 0x02, "addl", Operate, IntArith;
    Subl = 0x03, "subl", Operate, IntArith;
    // Compares (results are 0/1).
    Cmpeq = 0x04, "cmpeq", Operate, IntArith;
    Cmplt = 0x05, "cmplt", Operate, IntArith;
    Cmple = 0x06, "cmple", Operate, IntArith;
    Cmpult = 0x07, "cmpult", Operate, IntArith;
    Cmpule = 0x08, "cmpule", Operate, IntArith;
    // Logical.
    And = 0x09, "and", Operate, Logic;
    Bis = 0x0a, "bis", Operate, Logic;
    Xor = 0x0b, "xor", Operate, Logic;
    Bic = 0x0c, "bic", Operate, Logic;
    Ornot = 0x0d, "ornot", Operate, Logic;
    Eqv = 0x0e, "eqv", Operate, Logic;
    Sextb = 0x0f, "sextb", Operate, Logic;
    Sextw = 0x10, "sextw", Operate, Logic;
    // Shifts.
    Sll = 0x11, "sll", Operate, Shift;
    Srl = 0x12, "srl", Operate, Shift;
    Sra = 0x13, "sra", Operate, Shift;
    // Multiply / divide.
    Mulq = 0x14, "mulq", Operate, Mult;
    Mull = 0x15, "mull", Operate, Mult;
    Divq = 0x16, "divq", Operate, Div;
    Remq = 0x17, "remq", Operate, Div;
    // Address arithmetic (memory format, executes on the adder).
    Lda = 0x18, "lda", Memory, IntArith;
    Ldah = 0x19, "ldah", Memory, IntArith;
    // Loads.
    Ldq = 0x1a, "ldq", Memory, Load;
    Ldl = 0x1b, "ldl", Memory, Load;
    Ldwu = 0x1c, "ldwu", Memory, Load;
    Ldbu = 0x1d, "ldbu", Memory, Load;
    // Stores.
    Stq = 0x1e, "stq", Memory, Store;
    Stl = 0x1f, "stl", Memory, Store;
    Stw = 0x20, "stw", Memory, Store;
    Stb = 0x21, "stb", Memory, Store;
    // Branches.
    Br = 0x22, "br", Branch, Branch;
    Bsr = 0x23, "bsr", Branch, Branch;
    Beq = 0x24, "beq", Branch, Branch;
    Bne = 0x25, "bne", Branch, Branch;
    Blt = 0x26, "blt", Branch, Branch;
    Ble = 0x27, "ble", Branch, Branch;
    Bgt = 0x28, "bgt", Branch, Branch;
    Bge = 0x29, "bge", Branch, Branch;
    Blbc = 0x2a, "blbc", Branch, Branch;
    Blbs = 0x2b, "blbs", Branch, Branch;
    // Jumps.
    Jmp = 0x2c, "jmp", Jump, Jump;
    Jsr = 0x2d, "jsr", Jump, Jump;
    Ret = 0x2e, "ret", Jump, Jump;
    // Conditional moves (three-source: the old destination value is an
    // input). Class IntArith: the compare runs on the adder.
    Cmoveq = 0x33, "cmoveq", Operate, IntArith;
    Cmovne = 0x34, "cmovne", Operate, IntArith;
    Cmovlt = 0x35, "cmovlt", Operate, IntArith;
    Cmovge = 0x36, "cmovge", Operate, IntArith;
    // System.
    Halt = 0x2f, "halt", System, System;
    Nop = 0x30, "nop", System, System;
    Outb = 0x31, "outb", System, System;
    Outq = 0x32, "outq", System, System;
}

impl Opcode {
    /// True for conditional branches (direction depends on a register).
    pub fn is_cond_branch(self) -> bool {
        matches!(
            self,
            Opcode::Beq
                | Opcode::Bne
                | Opcode::Blt
                | Opcode::Ble
                | Opcode::Bgt
                | Opcode::Bge
                | Opcode::Blbc
                | Opcode::Blbs
        )
    }

    /// True for any control-transfer instruction.
    pub fn is_control(self) -> bool {
        matches!(self.format(), Format::Branch | Format::Jump)
    }

    /// True for calls (push the return-address stack).
    pub fn is_call(self) -> bool {
        matches!(self, Opcode::Bsr | Opcode::Jsr)
    }

    /// True for returns (pop the return-address stack).
    pub fn is_return(self) -> bool {
        self == Opcode::Ret
    }

    /// True for conditional moves, whose destination register is also a
    /// source (the move may not happen).
    pub fn is_cmov(self) -> bool {
        matches!(
            self,
            Opcode::Cmoveq | Opcode::Cmovne | Opcode::Cmovlt | Opcode::Cmovge
        )
    }

    /// True for loads.
    pub fn is_load(self) -> bool {
        self.class() == OpClass::Load
    }

    /// True for stores.
    pub fn is_store(self) -> bool {
        self.class() == OpClass::Store
    }

    /// True when the operation writes a register result.
    pub fn writes_register(self) -> bool {
        match self.format() {
            Format::Operate | Format::Memory => !self.is_store(),
            // br/bsr and jumps write the return-address register.
            Format::Branch => matches!(self, Opcode::Br | Opcode::Bsr),
            Format::Jump => true,
            Format::System => false,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_code(op.code()), Some(op));
        }
    }

    #[test]
    fn mnemonics_round_trip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn codes_are_unique_and_fit_six_bits() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(op.code() < 64, "{op} exceeds the 6-bit opcode field");
            assert!(seen.insert(op.code()), "duplicate code for {op}");
        }
    }

    #[test]
    fn unknown_code_rejected() {
        assert_eq!(Opcode::from_code(0x3f), None);
    }

    #[test]
    fn class_assignments() {
        assert_eq!(Opcode::Addq.class(), OpClass::IntArith);
        assert_eq!(Opcode::Lda.class(), OpClass::IntArith);
        assert_eq!(Opcode::And.class(), OpClass::Logic);
        assert_eq!(Opcode::Sll.class(), OpClass::Shift);
        assert_eq!(Opcode::Mulq.class(), OpClass::Mult);
        assert_eq!(Opcode::Ldq.class(), OpClass::Load);
        assert_eq!(Opcode::Stb.class(), OpClass::Store);
        assert_eq!(Opcode::Beq.class(), OpClass::Branch);
        assert_eq!(Opcode::Ret.class(), OpClass::Jump);
    }

    #[test]
    fn cmov_flags() {
        assert!(Opcode::Cmoveq.is_cmov());
        assert!(Opcode::Cmovge.is_cmov());
        assert!(!Opcode::Addq.is_cmov());
        assert_eq!(Opcode::Cmovne.class(), OpClass::IntArith);
        assert!(Opcode::Cmovlt.writes_register());
    }

    #[test]
    fn control_and_call_flags() {
        assert!(Opcode::Beq.is_cond_branch());
        assert!(!Opcode::Br.is_cond_branch());
        assert!(Opcode::Br.is_control());
        assert!(Opcode::Jsr.is_call());
        assert!(Opcode::Bsr.is_call());
        assert!(Opcode::Ret.is_return());
        assert!(!Opcode::Addq.is_control());
    }

    #[test]
    fn register_write_flags() {
        assert!(Opcode::Addq.writes_register());
        assert!(Opcode::Ldq.writes_register());
        assert!(Opcode::Lda.writes_register());
        assert!(!Opcode::Stq.writes_register());
        assert!(Opcode::Bsr.writes_register());
        assert!(!Opcode::Beq.writes_register());
        assert!(Opcode::Ret.writes_register());
        assert!(!Opcode::Halt.writes_register());
    }

    #[test]
    fn width_analyzed_classes() {
        assert!(OpClass::IntArith.is_width_analyzed());
        assert!(OpClass::Mult.is_width_analyzed());
        assert!(!OpClass::Load.is_width_analyzed());
        assert!(!OpClass::Branch.is_width_analyzed());
    }
}
