//! Integer register file names.
//!
//! The ISA follows Alpha conventions: 32 general-purpose 64-bit integer
//! registers, with `r31` hard-wired to zero. Software-convention aliases
//! (`t0`, `sp`, `gp`, …) match the Alpha calling standard so the workload
//! assembly reads like real Alpha code.

use std::fmt;

/// An integer register index in `0..=31`.
///
/// `Reg::ZERO` (`r31`) reads as zero and discards writes.
///
/// # Example
///
/// ```
/// use nwo_isa::Reg;
///
/// let sp = Reg::SP;
/// assert_eq!(sp.index(), 30);
/// assert_eq!("t3".parse::<Reg>()?, Reg::new(4));
/// assert_eq!(Reg::new(31), Reg::ZERO);
/// # Ok::<(), nwo_isa::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Return-value register (`r0`).
    pub const V0: Reg = Reg(0);
    /// First argument register (`r16`).
    pub const A0: Reg = Reg(16);
    /// Return-address register (`r26`).
    pub const RA: Reg = Reg(26);
    /// Procedure value register (`r27`).
    pub const PV: Reg = Reg(27);
    /// Assembler temporary (`r28`).
    pub const AT: Reg = Reg(28);
    /// Global pointer (`r29`) — initialised to the data-segment base.
    pub const GP: Reg = Reg(29);
    /// Stack pointer (`r30`).
    pub const SP: Reg = Reg(30);
    /// Hard-wired zero register (`r31`).
    pub const ZERO: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub const fn new(index: u8) -> Reg {
        assert!(index < 32, "register index out of range");
        Reg(index)
    }

    /// The register's index in `0..=31`.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// True for the hard-wired zero register `r31`.
    pub const fn is_zero(self) -> bool {
        self.0 == 31
    }

    /// The canonical software-convention name (`v0`, `t0`, `sp`, …).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "s0", "s1", "s2", "s3", "s4",
            "s5", "fp", "a0", "a1", "a2", "a3", "a4", "a5", "t8", "t9", "t10", "t11", "ra", "pv",
            "at", "gp", "sp", "zero",
        ];
        NAMES[self.0 as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Error returned when parsing an unknown register name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    name: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register `{}`", self.name)
    }
}

impl std::error::Error for ParseRegError {}

impl std::str::FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        // Numeric form: r0..r31.
        if let Some(num) = lower.strip_prefix('r') {
            if let Ok(n) = num.parse::<u8>() {
                if n < 32 {
                    return Ok(Reg(n));
                }
            }
        }
        // Alias form.
        for i in 0..32u8 {
            if Reg(i).name() == lower {
                return Ok(Reg(i));
            }
        }
        Err(ParseRegError {
            name: s.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_names_parse() {
        for i in 0..32u8 {
            let r: Reg = format!("r{i}").parse().unwrap();
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn alias_names_round_trip() {
        for i in 0..32u8 {
            let r = Reg::new(i);
            let parsed: Reg = r.name().parse().unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn well_known_aliases() {
        assert_eq!("sp".parse::<Reg>().unwrap(), Reg::new(30));
        assert_eq!("gp".parse::<Reg>().unwrap(), Reg::new(29));
        assert_eq!("ra".parse::<Reg>().unwrap(), Reg::new(26));
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::ZERO);
        assert_eq!("a0".parse::<Reg>().unwrap(), Reg::new(16));
    }

    #[test]
    fn bad_names_rejected() {
        assert!("r32".parse::<Reg>().is_err());
        assert!("x5".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::SP.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_large_index() {
        Reg::new(32);
    }

    #[test]
    fn case_insensitive_parse() {
        assert_eq!("SP".parse::<Reg>().unwrap(), Reg::SP);
        assert_eq!("R7".parse::<Reg>().unwrap(), Reg::new(7));
    }
}
