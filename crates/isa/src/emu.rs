//! Functional (instruction-accurate) emulator.
//!
//! The emulator is the reference semantics for the ISA. The cycle-level
//! simulator in `nwo-sim` drives the same step logic through
//! [`ExecRecord`]s, and integration tests co-simulate the two to prove the
//! out-of-order core commits exactly the emulator's instruction stream.
//!
//! The emulator is also the fast-forward engine used to warm caches and
//! branch predictors before detailed simulation, mirroring the paper's
//! warmup methodology (Section 3.2).

use crate::exec::{access_bytes, alu_result, branch_taken};
use crate::instr::{Instr, OperandB};
use crate::op::{Format, Opcode};
use crate::program::{Program, TEXT_BASE};
use crate::reg::Reg;
use nwo_mem::MainMemory;
use std::fmt;

/// Everything observable about one dynamic instruction execution.
///
/// This record carries the operand *values* the paper's hardware would
/// see — the inputs to the zero/ones-detect logic — plus the result and
/// control-flow outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecRecord {
    /// Address of the instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub instr: Instr,
    /// First source operand value (register `ra` for operate ops, base
    /// register for memory ops, tested register for branches, target
    /// register for jumps).
    pub op_a: u64,
    /// Second source operand value (register/literal for operate ops,
    /// scaled displacement for memory ops, zero otherwise).
    pub op_b: u64,
    /// Result value written to the destination register, if any.
    pub result: Option<u64>,
    /// Destination register, if any.
    pub dest: Option<Reg>,
    /// Effective address for loads and stores.
    pub mem_addr: Option<u64>,
    /// Value stored (stores only).
    pub store_value: Option<u64>,
    /// Branch/jump direction (always true for jumps and `br`/`bsr`).
    pub taken: bool,
    /// Address of the next instruction actually executed.
    pub next_pc: u64,
}

impl ExecRecord {
    /// True when this record is a control-transfer instruction.
    pub fn is_control(&self) -> bool {
        self.instr.op.is_control()
    }
}

/// Reasons the emulator can stop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// PC left the text segment or hit an undecodable word.
    BadInstruction {
        /// The faulting PC.
        pc: u64,
    },
    /// `run` hit its step limit before `halt`.
    StepLimit {
        /// The limit that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::BadInstruction { pc } => {
                write!(f, "invalid instruction fetch at {pc:#x}")
            }
            EmuError::StepLimit { limit } => {
                write!(f, "step limit of {limit} instructions exceeded before halt")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// The functional emulator.
///
/// # Example
///
/// ```
/// use nwo_isa::{assemble, Emulator};
///
/// let prog = assemble("main: li t0, 40\n addq t0, 2, t0\n outq t0\n halt")?;
/// let mut emu = Emulator::new(&prog);
/// emu.run(1000)?;
/// assert_eq!(emu.outq(), &[42]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Emulator {
    regs: [u64; 32],
    pc: u64,
    mem: MainMemory,
    halted: bool,
    icount: u64,
    out_bytes: Vec<u8>,
    out_quads: Vec<u64>,
    /// Decoded text segment for fast stepping.
    decoded: Vec<Option<Instr>>,
}

impl Emulator {
    /// Loads `program` into a fresh machine (registers per the ABI:
    /// `gp` → data base, `sp` → stack top).
    pub fn new(program: &Program) -> Self {
        let mut mem = MainMemory::new();
        for (i, &word) in program.text.iter().enumerate() {
            mem.write_u32(TEXT_BASE + 4 * i as u64, word);
        }
        mem.write_bytes(crate::program::DATA_BASE, &program.data);
        let decoded = program
            .text
            .iter()
            .map(|&w| Instr::decode(w).ok())
            .collect();
        Emulator {
            regs: Program::initial_registers(),
            pc: program.entry,
            mem,
            halted: false,
            icount: 0,
            out_bytes: Vec::new(),
            out_quads: Vec::new(),
            decoded,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Reads a register (reads of `r31` are always zero).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index() as usize]
        }
    }

    /// Writes a register (writes to `r31` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }

    /// The machine's memory.
    pub fn mem(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable access to memory (for pre-poking test inputs).
    pub fn mem_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// True once `halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Overwrites the architectural state — registers, PC, halt flag
    /// and memory — with externally supplied values, keeping the
    /// decoded program. This re-bases a reference emulator onto state
    /// it never saw executing (e.g. a restored simulator checkpoint) so
    /// lockstep checking can continue from there.
    pub fn sync_arch_state(&mut self, regs: &[u64; 32], pc: u64, halted: bool, mem: &MainMemory) {
        self.regs = *regs;
        self.pc = pc;
        self.halted = halted;
        self.mem = mem.clone();
    }

    /// Number of instructions executed so far.
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Bytes emitted by `outb`.
    pub fn output(&self) -> &[u8] {
        &self.out_bytes
    }

    /// Quadwords emitted by `outq`.
    pub fn outq(&self) -> &[u64] {
        &self.out_quads
    }

    fn fetch(&self, pc: u64) -> Result<Instr, EmuError> {
        if pc >= TEXT_BASE && pc.is_multiple_of(4) {
            let idx = ((pc - TEXT_BASE) / 4) as usize;
            if let Some(Some(instr)) = self.decoded.get(idx) {
                return Ok(*instr);
            }
        }
        Err(EmuError::BadInstruction { pc })
    }

    /// Executes one instruction and returns its record.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::BadInstruction`] on an invalid fetch. Stepping
    /// a halted machine returns the `halt` record again without effect.
    pub fn step(&mut self) -> Result<ExecRecord, EmuError> {
        let pc = self.pc;
        let instr = self.fetch(pc)?;
        let record = self.execute(pc, instr);
        self.pc = record.next_pc;
        self.icount += 1;
        Ok(record)
    }

    fn execute(&mut self, pc: u64, instr: Instr) -> ExecRecord {
        let op = instr.op;
        let mut record = ExecRecord {
            pc,
            instr,
            op_a: 0,
            op_b: 0,
            result: None,
            dest: None,
            mem_addr: None,
            store_value: None,
            taken: false,
            next_pc: pc.wrapping_add(4),
        };
        match op.format() {
            Format::Operate => {
                let a = self.reg(instr.ra);
                let b = match instr.b {
                    OperandB::Reg(r) => self.reg(r),
                    OperandB::Lit(l) => l as u64,
                };
                let result = if op.is_cmov() {
                    // Conditional move: the old destination is the third
                    // source.
                    if crate::exec::cmov_taken(op, a) {
                        b
                    } else {
                        self.reg(instr.rc)
                    }
                } else {
                    alu_result(op, a, b)
                };
                self.set_reg(instr.rc, result);
                record.op_a = a;
                record.op_b = b;
                record.result = Some(result);
                record.dest = Some(instr.rc);
            }
            Format::Memory => {
                let base = self.reg(instr.rb());
                let scaled = match op {
                    Opcode::Ldah => (instr.disp as i64 as u64) << 16,
                    _ => instr.disp as i64 as u64,
                };
                record.op_a = base;
                record.op_b = scaled;
                match op {
                    Opcode::Lda | Opcode::Ldah => {
                        let result = alu_result(op, base, scaled);
                        self.set_reg(instr.ra, result);
                        record.result = Some(result);
                        record.dest = Some(instr.ra);
                    }
                    _ if op.is_load() => {
                        let addr = base.wrapping_add(scaled);
                        let value = self.load(op, addr);
                        self.set_reg(instr.ra, value);
                        record.mem_addr = Some(addr);
                        record.result = Some(value);
                        record.dest = Some(instr.ra);
                    }
                    _ => {
                        let addr = base.wrapping_add(scaled);
                        let value = self.reg(instr.ra);
                        self.store(op, addr, value);
                        record.mem_addr = Some(addr);
                        record.store_value = Some(value);
                    }
                }
            }
            Format::Branch => {
                let a = self.reg(instr.ra);
                record.op_a = a;
                let taken = branch_taken(op, a);
                record.taken = taken;
                if matches!(op, Opcode::Br | Opcode::Bsr) {
                    let link = pc.wrapping_add(4);
                    self.set_reg(instr.ra, link);
                    record.result = Some(link);
                    record.dest = Some(instr.ra);
                }
                if taken {
                    record.next_pc = instr.branch_target(pc);
                }
            }
            Format::Jump => {
                let target = self.reg(instr.rb()) & !3;
                record.op_a = self.reg(instr.rb());
                let link = pc.wrapping_add(4);
                self.set_reg(instr.ra, link);
                record.result = Some(link);
                record.dest = Some(instr.ra);
                record.taken = true;
                record.next_pc = target;
            }
            Format::System => match op {
                Opcode::Halt => {
                    self.halted = true;
                    record.next_pc = pc;
                }
                Opcode::Nop => {}
                Opcode::Outb => {
                    let v = self.reg(instr.ra);
                    record.op_a = v;
                    self.out_bytes.push(v as u8);
                }
                Opcode::Outq => {
                    let v = self.reg(instr.ra);
                    record.op_a = v;
                    self.out_quads.push(v);
                }
                _ => unreachable!("system format covers halt/nop/outb/outq"),
            },
        }
        record
    }

    fn load(&self, op: Opcode, addr: u64) -> u64 {
        match access_bytes(op) {
            8 => self.mem.read_u64(addr),
            4 => self.mem.read_u32(addr) as i32 as i64 as u64,
            2 => self.mem.read_u16(addr) as u64,
            _ => self.mem.read_u8(addr) as u64,
        }
    }

    fn store(&mut self, op: Opcode, addr: u64, value: u64) {
        match access_bytes(op) {
            8 => self.mem.write_u64(addr, value),
            4 => self.mem.write_u32(addr, value as u32),
            2 => self.mem.write_u16(addr, value as u16),
            _ => self.mem.write_u8(addr, value as u8),
        }
    }

    /// Runs until `halt`, returning the number of instructions executed.
    ///
    /// # Errors
    ///
    /// [`EmuError::StepLimit`] if `halt` is not reached within `limit`
    /// instructions; [`EmuError::BadInstruction`] on an invalid fetch.
    pub fn run(&mut self, limit: u64) -> Result<u64, EmuError> {
        let start = self.icount;
        while !self.halted {
            if self.icount - start >= limit {
                return Err(EmuError::StepLimit { limit });
            }
            self.step()?;
        }
        Ok(self.icount - start)
    }
}

impl nwo_ckpt::Checkpointable for Emulator {
    /// The decoded text segment is derived from the program image and is
    /// not serialized; restore requires an emulator loaded from the same
    /// program.
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        for &reg in &self.regs {
            w.put_u64(reg);
        }
        w.put_u64(self.pc);
        w.put_bool(self.halted);
        w.put_u64(self.icount);
        w.put_bytes(&self.out_bytes);
        w.put_u64(self.out_quads.len() as u64);
        for &q in &self.out_quads {
            w.put_u64(q);
        }
        nwo_ckpt::Checkpointable::save(&self.mem, w);
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        for reg in self.regs.iter_mut() {
            *reg = r.take_u64("emulator register")?;
        }
        self.pc = r.take_u64("emulator pc")?;
        self.halted = r.take_bool("emulator halted")?;
        self.icount = r.take_u64("emulator icount")?;
        self.out_bytes = r.take_bytes(u64::MAX, "emulator out_bytes")?;
        let quads = r.take_len(u64::MAX, "emulator out_quads count")?;
        self.out_quads.clear();
        for _ in 0..quads {
            self.out_quads.push(r.take_u64("emulator out_quad")?);
        }
        nwo_ckpt::Checkpointable::restore(&mut self.mem, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str) -> Emulator {
        let prog = assemble(src).expect("assembles");
        let mut emu = Emulator::new(&prog);
        emu.run(1_000_000).expect("halts");
        emu
    }

    #[test]
    fn arithmetic_and_output() {
        let emu = run("main: li t0, 40\n addq t0, 2, t0\n outq t0\n halt");
        assert_eq!(emu.outq(), &[42]);
        assert!(emu.halted());
    }

    #[test]
    fn loop_sums_one_to_ten() {
        let emu = run(concat!(
            "main: clr t0\n",
            " li t1, 10\n",
            "loop: addq t0, t1, t0\n",
            " subq t1, 1, t1\n",
            " bgt t1, loop\n",
            " outq t0\n",
            " halt"
        ));
        assert_eq!(emu.outq(), &[55]);
    }

    #[test]
    fn loads_and_stores_round_trip_through_data() {
        let emu = run(concat!(
            ".data\n",
            "src: .quad 0x1122334455667788\n",
            "dst: .space 8\n",
            ".text\n",
            "main: la t0, src\n",
            " la t1, dst\n",
            " ldq t2, 0(t0)\n",
            " stq t2, 0(t1)\n",
            " ldbu t3, 0(t1)\n",
            " outq t3\n",
            " ldwu t3, 0(t1)\n",
            " outq t3\n",
            " ldl t3, 4(t1)\n",
            " outq t3\n",
            " halt"
        ));
        assert_eq!(emu.outq(), &[0x88, 0x7788, 0x11223344]);
    }

    #[test]
    fn ldl_sign_extends() {
        let emu = run(concat!(
            ".data\nv: .long 0x80000000\n.text\n",
            "main: la t0, v\n ldl t1, 0(t0)\n outq t1\n halt"
        ));
        assert_eq!(emu.outq(), &[0xffff_ffff_8000_0000]);
    }

    #[test]
    fn call_and_return() {
        let emu = run(concat!(
            "main: li a0, 5\n",
            " call double\n",
            " outq v0\n",
            " halt\n",
            "double: addq a0, a0, v0\n",
            " ret"
        ));
        assert_eq!(emu.outq(), &[10]);
    }

    #[test]
    fn jump_table_dispatch() {
        let emu = run(concat!(
            ".data\n",
            "table: .quad case0, case1\n",
            ".text\n",
            "main: la t0, table\n",
            " li t1, 1\n",
            " sll t1, 3, t2\n",
            " addq t0, t2, t2\n",
            " ldq pv, 0(t2)\n",
            " jmp (pv)\n",
            "case0: li v0, 100\n br done\n",
            "case1: li v0, 200\n br done\n",
            "done: outq v0\n halt"
        ));
        assert_eq!(emu.outq(), &[200]);
    }

    #[test]
    fn stack_push_pop() {
        let emu = run(concat!(
            "main: li t0, 77\n",
            " subq sp, 8, sp\n",
            " stq t0, 0(sp)\n",
            " clr t0\n",
            " ldq t0, 0(sp)\n",
            " addq sp, 8, sp\n",
            " outq t0\n halt"
        ));
        assert_eq!(emu.outq(), &[77]);
    }

    #[test]
    fn outb_collects_bytes() {
        let emu = run("main: li t0, 'H'\n outb t0\n li t0, 'i'\n outb t0\n halt");
        assert_eq!(emu.output(), b"Hi");
    }

    #[test]
    fn zero_register_is_immutable() {
        let emu = run("main: li t0, 9\n addq t0, 1, zero\n outq zero\n halt");
        assert_eq!(emu.outq(), &[0]);
    }

    #[test]
    fn step_limit_detected() {
        let prog = assemble("main: br main").unwrap();
        let mut emu = Emulator::new(&prog);
        assert_eq!(emu.run(100), Err(EmuError::StepLimit { limit: 100 }));
    }

    #[test]
    fn bad_fetch_detected() {
        let prog = assemble("main: nop").unwrap(); // falls off the end
        let mut emu = Emulator::new(&prog);
        emu.step().unwrap();
        assert!(matches!(emu.step(), Err(EmuError::BadInstruction { .. })));
    }

    #[test]
    fn records_capture_operands() {
        let prog = assemble("main: li t0, 17\n addq t0, 2, t1\n halt").unwrap();
        let mut emu = Emulator::new(&prog);
        emu.step().unwrap();
        let rec = emu.step().unwrap();
        assert_eq!(rec.op_a, 17);
        assert_eq!(rec.op_b, 2);
        assert_eq!(rec.result, Some(19));
        assert_eq!(rec.dest, Some(Reg::new(2)));
    }

    #[test]
    fn branch_record_taken_flag() {
        let prog = assemble("main: clr t0\n beq t0, main\n halt").unwrap();
        let mut emu = Emulator::new(&prog);
        emu.step().unwrap();
        let rec = emu.step().unwrap();
        assert!(rec.taken);
        assert_eq!(rec.next_pc, prog.entry);
    }

    #[test]
    fn conditional_moves() {
        let emu = run(concat!(
            "main: li t0, 5\n li t1, 9\n li t2, 100\n",
            " cmoveq zero, t1, t0\n", // condition true: t0 = 9
            " outq t0\n",
            " cmovne zero, t2, t0\n", // condition false: t0 unchanged
            " outq t0\n",
            " li t3, -1\n",
            " cmovlt t3, t2, t0\n", // negative: t0 = 100
            " outq t0\n",
            " cmovge t3, t1, t0\n", // not >= 0: unchanged
            " outq t0\n halt"
        ));
        assert_eq!(emu.outq(), &[9, 9, 100, 100]);
    }

    #[test]
    fn halt_freezes_machine() {
        let prog = assemble("main: halt").unwrap();
        let mut emu = Emulator::new(&prog);
        emu.run(10).unwrap();
        let pc = emu.pc();
        assert!(emu.halted());
        // Stepping a halted machine stays put.
        emu.step().unwrap();
        assert_eq!(emu.pc(), pc);
    }
}
