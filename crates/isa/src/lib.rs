#![warn(missing_docs)]

//! A 64-bit Alpha-flavoured RISC instruction set, assembler and functional
//! emulator — the ISA substrate for the HPCA '99 narrow-width-operand
//! study.
//!
//! The design goal is to preserve every ISA property the paper's
//! optimizations depend on:
//!
//! * 64-bit two's-complement integer registers (`r31` hard-wired to zero);
//! * operate-format instructions with an 8-bit literal form, so immediate
//!   operands have statically-known widths;
//! * longword (`addl`, `ldl`, …) operations that sign-extend 32-bit
//!   results, like Alpha;
//! * displacement addressing whose effective-address adds run on the
//!   integer adder (they dominate the 33-bit operand population of
//!   Figure 1);
//! * `lda`/`ldah` address arithmetic, giving realistic gp-relative
//!   addressing sequences.
//!
//! # Quick start
//!
//! ```
//! use nwo_isa::{assemble, Emulator};
//!
//! let program = assemble(r#"
//!     main:
//!         li   t0, 6
//!         li   t1, 7
//!         mulq t0, t1, v0
//!         outq v0
//!         halt
//! "#)?;
//! let mut emu = Emulator::new(&program);
//! emu.run(100)?;
//! assert_eq!(emu.outq(), &[42]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod asm;
mod emu;
mod exec;
mod instr;
mod op;
mod program;
mod reg;

pub use asm::{assemble, AsmError};
pub use emu::{EmuError, Emulator, ExecRecord};
pub use exec::{access_bytes, alu_result, branch_taken, cmov_taken};
pub use instr::{DecodeError, Instr, OperandB};
pub use op::{Format, OpClass, Opcode};
pub use program::{Program, DATA_BASE, STACK_TOP, TEXT_BASE};
pub use reg::{ParseRegError, Reg};
