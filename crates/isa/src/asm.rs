//! Two-pass text assembler.
//!
//! Supports `.text`/`.data` sections, labels, data directives, the full
//! opcode set, and the usual convenience pseudo-instructions (`li`, `la`,
//! `mov`, `clr`, `call`, bare `ret`/`br`). Comments start with `;` or `//`.
//!
//! ```
//! use nwo_isa::assemble;
//!
//! let prog = assemble(r#"
//!     .data
//! greeting:
//!     .asciiz "hi"
//!     .text
//! main:
//!     la   a0, greeting     ; expands to ldah/lda off gp
//!     ldbu t0, 0(a0)
//!     outb t0
//!     halt
//! "#)?;
//! assert!(prog.symbol("greeting").is_some());
//! # Ok::<(), nwo_isa::AsmError>(())
//! ```

use crate::instr::Instr;
use crate::op::{Format, Opcode};
use crate::program::{Program, DATA_BASE, TEXT_BASE};
use crate::reg::Reg;
use std::collections::HashMap;
use std::fmt;

/// An assembly error with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// A text-segment slot awaiting final encoding.
#[derive(Debug, Clone)]
enum Slot {
    Ready(Instr),
    /// A branch to a label, resolved once label addresses are known.
    BranchTo {
        op: Opcode,
        ra: Reg,
        target: String,
    },
    /// High half of a two-instruction `la` expansion.
    LaHigh {
        rd: Reg,
        label: String,
        offset: i64,
    },
    /// Low half of a two-instruction `la` expansion.
    LaLow {
        rd: Reg,
        label: String,
        offset: i64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// A pending data patch: write the address of `label` as a quadword at
/// `offset` in the data image.
#[derive(Debug, Clone)]
struct QuadPatch {
    offset: usize,
    label: String,
    line: usize,
}

#[derive(Default)]
struct Assembler {
    slots: Vec<(usize, Slot)>,
    data: Vec<u8>,
    symbols: HashMap<String, u64>,
    /// `.equ` constants; must be defined before use.
    equates: HashMap<String, i64>,
    /// Labels waiting for the next emission in their section.
    pending_labels: Vec<(usize, String)>,
    section: Option<Section>,
    patches: Vec<QuadPatch>,
}

/// Assembles `source` into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] identifying the first offending line for any
/// syntax error, unknown mnemonic/register/label, duplicate label, or
/// out-of-range literal or displacement.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut asm = Assembler {
        section: Some(Section::Text),
        ..Assembler::default()
    };

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        asm.process_line(line_no, line)?;
    }
    if let Some(&(line, ref label)) = asm.pending_labels.first() {
        // Labels at the very end of a section bind to the current end.
        let _ = label;
        asm.flush_labels(line)?;
    }
    asm.finish()
}

fn strip_comment(line: &str) -> &str {
    // Comments: `;` or `//`, but not inside string/char literals.
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut in_char = false;
    let mut escaped = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if escaped {
            escaped = false;
        } else if c == '\\' && (in_str || in_char) {
            escaped = true;
        } else if c == '"' && !in_char {
            in_str = !in_str;
        } else if c == '\'' && !in_str {
            in_char = !in_char;
        } else if !in_str && !in_char {
            if c == ';' {
                return &line[..i];
            }
            if c == '/' && bytes.get(i + 1) == Some(&b'/') {
                return &line[..i];
            }
        }
        i += 1;
    }
    line
}

impl Assembler {
    fn process_line(&mut self, line_no: usize, line: &str) -> Result<(), AsmError> {
        let mut rest = line;
        // Leading labels (possibly several on one line).
        while let Some(colon) = find_label_colon(rest) {
            let name = rest[..colon].trim();
            if !is_valid_label(name) {
                return err(line_no, format!("invalid label name `{name}`"));
            }
            self.pending_labels.push((line_no, name.to_string()));
            rest = rest[colon + 1..].trim_start();
        }
        let rest = rest.trim();
        if rest.is_empty() {
            return Ok(());
        }
        if let Some(directive) = rest.strip_prefix('.') {
            self.process_directive(line_no, directive)
        } else {
            self.flush_labels_to_text(line_no)?;
            self.process_instruction(line_no, rest)
        }
    }

    fn flush_labels(&mut self, line_no: usize) -> Result<(), AsmError> {
        match self.section {
            Some(Section::Text) | None => self.flush_labels_to_text(line_no),
            Some(Section::Data) => self.flush_labels_to_data(line_no),
        }
    }

    fn flush_labels_to_text(&mut self, _line_no: usize) -> Result<(), AsmError> {
        let addr = TEXT_BASE + 4 * self.slots.len() as u64;
        for (line, label) in std::mem::take(&mut self.pending_labels) {
            if self.symbols.insert(label.clone(), addr).is_some() {
                return err(line, format!("duplicate label `{label}`"));
            }
        }
        Ok(())
    }

    fn flush_labels_to_data(&mut self, _line_no: usize) -> Result<(), AsmError> {
        let addr = DATA_BASE + self.data.len() as u64;
        for (line, label) in std::mem::take(&mut self.pending_labels) {
            if self.symbols.insert(label.clone(), addr).is_some() {
                return err(line, format!("duplicate label `{label}`"));
            }
        }
        Ok(())
    }

    fn process_directive(&mut self, line_no: usize, directive: &str) -> Result<(), AsmError> {
        let (name, args) = match directive.find(char::is_whitespace) {
            Some(pos) => (&directive[..pos], directive[pos..].trim()),
            None => (directive, ""),
        };
        match name {
            "text" => {
                self.flush_labels(line_no)?;
                self.section = Some(Section::Text);
                Ok(())
            }
            "data" => {
                self.flush_labels(line_no)?;
                self.section = Some(Section::Data);
                Ok(())
            }
            "equ" => {
                let (name, value) = args.split_once(',').ok_or_else(|| AsmError {
                    line: line_no,
                    message: ".equ expects `NAME, value`".to_string(),
                })?;
                let name = name.trim();
                if !is_valid_label(name) {
                    return err(line_no, format!("bad .equ name `{name}`"));
                }
                let value = self.resolve_int(value).map_err(|_| AsmError {
                    line: line_no,
                    message: format!("bad .equ value `{}`", value.trim()),
                })?;
                if self.equates.insert(name.to_string(), value).is_some() {
                    return err(line_no, format!("duplicate .equ `{name}`"));
                }
                Ok(())
            }
            "quad" | "long" | "word" | "byte" | "ascii" | "asciiz" | "space" | "align" => {
                if self.section != Some(Section::Data) {
                    return err(line_no, format!(".{name} is only valid in .data"));
                }
                self.flush_labels_to_data(line_no)?;
                self.process_data_directive(line_no, name, args)
            }
            other => err(line_no, format!("unknown directive `.{other}`")),
        }
    }

    fn process_data_directive(
        &mut self,
        line_no: usize,
        name: &str,
        args: &str,
    ) -> Result<(), AsmError> {
        match name {
            "quad" => {
                for item in split_operands(args) {
                    let item = item.trim();
                    if let Ok(v) = self.resolve_int(item) {
                        self.data.extend_from_slice(&(v as u64).to_le_bytes());
                    } else if is_valid_label(item) {
                        self.patches.push(QuadPatch {
                            offset: self.data.len(),
                            label: item.to_string(),
                            line: line_no,
                        });
                        self.data.extend_from_slice(&0u64.to_le_bytes());
                    } else {
                        return err(line_no, format!("bad .quad operand `{item}`"));
                    }
                }
                Ok(())
            }
            "long" => self.emit_ints(line_no, args, 4, i32::MIN as i64, u32::MAX as i64),
            "word" => self.emit_ints(line_no, args, 2, i16::MIN as i64, u16::MAX as i64),
            "byte" => self.emit_ints(line_no, args, 1, i8::MIN as i64, u8::MAX as i64),
            "ascii" | "asciiz" => {
                let bytes = parse_string(line_no, args)?;
                self.data.extend_from_slice(&bytes);
                if name == "asciiz" {
                    self.data.push(0);
                }
                Ok(())
            }
            "space" => {
                let n = self
                    .resolve_int(args)
                    .map_err(|_| AsmError {
                        line: line_no,
                        message: format!("bad .space size `{args}`"),
                    })?
                    .max(0) as usize;
                self.data.resize(self.data.len() + n, 0);
                Ok(())
            }
            "align" => {
                let n = self.resolve_int(args).unwrap_or(0);
                if n <= 0 || (n as u64).count_ones() != 1 {
                    return err(
                        line_no,
                        format!("bad .align `{args}` (power of two required)"),
                    );
                }
                while !(self.data.len() as u64).is_multiple_of(n as u64) {
                    self.data.push(0);
                }
                Ok(())
            }
            _ => unreachable!("checked by caller"),
        }
    }

    fn emit_ints(
        &mut self,
        line_no: usize,
        args: &str,
        bytes: usize,
        min: i64,
        max: i64,
    ) -> Result<(), AsmError> {
        for item in split_operands(args) {
            let v = self.resolve_int(item.trim()).map_err(|_| AsmError {
                line: line_no,
                message: format!("bad integer `{}`", item.trim()),
            })?;
            if v < min || v > max {
                return err(
                    line_no,
                    format!("value {v} out of range for {bytes}-byte datum"),
                );
            }
            self.data
                .extend_from_slice(&(v as u64).to_le_bytes()[..bytes]);
        }
        Ok(())
    }

    fn emit(&mut self, line_no: usize, slot: Slot) {
        self.slots.push((line_no, slot));
    }

    fn process_instruction(&mut self, line_no: usize, text: &str) -> Result<(), AsmError> {
        if self.section != Some(Section::Text) {
            return err(line_no, "instructions are only valid in .text");
        }
        let (mnemonic, args) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = split_operands(args)
            .into_iter()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();

        // Pseudo-instructions first.
        match mnemonic.to_ascii_lowercase().as_str() {
            "mov" => {
                let (rs, rd) = (reg(line_no, &ops, 0)?, reg(line_no, &ops, 1)?);
                self.emit(
                    line_no,
                    Slot::Ready(Instr::operate(Opcode::Bis, rs, rs, rd)),
                );
                return Ok(());
            }
            "clr" => {
                let rd = reg(line_no, &ops, 0)?;
                self.emit(
                    line_no,
                    Slot::Ready(Instr::operate(Opcode::Bis, Reg::ZERO, Reg::ZERO, rd)),
                );
                return Ok(());
            }
            "li" => {
                let rd = reg(line_no, &ops, 0)?;
                let imm = int(self, line_no, &ops, 1)?;
                self.expand_li(line_no, rd, imm)?;
                return Ok(());
            }
            "la" => {
                let rd = reg(line_no, &ops, 0)?;
                let expr = operand(line_no, &ops, 1)?;
                // Accept `label` or `label+offset` / `label-offset`.
                let (label, offset) = match expr.rfind(['+', '-']).filter(|&p| p > 0) {
                    Some(pos) if !is_valid_label(expr) => {
                        let (name, rest) = expr.split_at(pos);
                        let offset = self.resolve_int(rest).map_err(|_| AsmError {
                            line: line_no,
                            message: format!("bad offset in `{expr}`"),
                        })?;
                        (name.trim(), offset)
                    }
                    _ => (expr, 0),
                };
                if !is_valid_label(label) {
                    return err(line_no, format!("bad label `{label}` for la"));
                }
                self.emit(
                    line_no,
                    Slot::LaHigh {
                        rd,
                        label: label.to_string(),
                        offset,
                    },
                );
                self.emit(
                    line_no,
                    Slot::LaLow {
                        rd,
                        label: label.to_string(),
                        offset,
                    },
                );
                return Ok(());
            }
            "call" => {
                let label = operand(line_no, &ops, 0)?;
                self.emit(
                    line_no,
                    Slot::BranchTo {
                        op: Opcode::Bsr,
                        ra: Reg::RA,
                        target: label.to_string(),
                    },
                );
                return Ok(());
            }
            _ => {}
        }

        let op = Opcode::from_mnemonic(mnemonic).ok_or_else(|| AsmError {
            line: line_no,
            message: format!("unknown mnemonic `{mnemonic}`"),
        })?;
        match op.format() {
            Format::Operate => self.asm_operate(line_no, op, &ops),
            Format::Memory => self.asm_memory(line_no, op, &ops),
            Format::Branch => self.asm_branch(line_no, op, &ops),
            Format::Jump => self.asm_jump(line_no, op, &ops),
            Format::System => self.asm_system(line_no, op, &ops),
        }
    }

    fn expand_li(&mut self, line_no: usize, rd: Reg, imm: i64) -> Result<(), AsmError> {
        if (-32768..=32767).contains(&imm) {
            self.emit(
                line_no,
                Slot::Ready(Instr::memory(Opcode::Lda, rd, imm as i32, Reg::ZERO)),
            );
            return Ok(());
        }
        let lo = imm as i16 as i64;
        let hi = (imm - lo) >> 16;
        if !(-32768..=32767).contains(&hi) {
            return err(
                line_no,
                format!("li constant {imm} does not fit in 32 bits; build it with shifts"),
            );
        }
        self.emit(
            line_no,
            Slot::Ready(Instr::memory(Opcode::Ldah, rd, hi as i32, Reg::ZERO)),
        );
        self.emit(
            line_no,
            Slot::Ready(Instr::memory(Opcode::Lda, rd, lo as i32, rd)),
        );
        Ok(())
    }

    fn asm_operate(&mut self, line_no: usize, op: Opcode, ops: &[&str]) -> Result<(), AsmError> {
        // Unary sugar for sextb/sextw: `sextb rb, rc`.
        if matches!(op, Opcode::Sextb | Opcode::Sextw) && ops.len() == 2 {
            let rb = reg(line_no, ops, 0)?;
            let rc = reg(line_no, ops, 1)?;
            self.emit(line_no, Slot::Ready(Instr::operate(op, Reg::ZERO, rb, rc)));
            return Ok(());
        }
        if ops.len() != 3 {
            return err(line_no, format!("{op} expects `ra, rb|#lit, rc`"));
        }
        let ra = reg(line_no, ops, 0)?;
        let rc = reg(line_no, ops, 2)?;
        let b = ops[1];
        if let Ok(rb) = b.parse::<Reg>() {
            self.emit(line_no, Slot::Ready(Instr::operate(op, ra, rb, rc)));
            return Ok(());
        }
        let raw = b.strip_prefix('#').unwrap_or(b);
        let mut imm = self.resolve_int(raw).map_err(|_| AsmError {
            line: line_no,
            message: format!("bad operand `{b}` (register or literal expected)"),
        })?;
        let mut op = op;
        // Negative literals on add/sub flip the operation.
        if imm < 0 {
            let flipped = match op {
                Opcode::Addq => Some(Opcode::Subq),
                Opcode::Subq => Some(Opcode::Addq),
                Opcode::Addl => Some(Opcode::Subl),
                Opcode::Subl => Some(Opcode::Addl),
                _ => None,
            };
            if let Some(f) = flipped {
                op = f;
                imm = -imm;
            }
        }
        if !(0..=255).contains(&imm) {
            return err(
                line_no,
                format!("literal {imm} out of range 0..=255 (use li into a register)"),
            );
        }
        self.emit(
            line_no,
            Slot::Ready(Instr::operate_lit(op, ra, imm as u8, rc)),
        );
        Ok(())
    }

    fn asm_memory(&mut self, line_no: usize, op: Opcode, ops: &[&str]) -> Result<(), AsmError> {
        if ops.len() != 2 {
            return err(line_no, format!("{op} expects `ra, disp(rb)`"));
        }
        let ra = reg(line_no, ops, 0)?;
        let (disp, rb) = parse_mem_operand(self, line_no, ops[1])?;
        if !(-32768..=32767).contains(&disp) {
            return err(line_no, format!("displacement {disp} out of 16-bit range"));
        }
        self.emit(line_no, Slot::Ready(Instr::memory(op, ra, disp as i32, rb)));
        Ok(())
    }

    fn asm_branch(&mut self, line_no: usize, op: Opcode, ops: &[&str]) -> Result<(), AsmError> {
        // `br target` / `bsr target` sugar.
        let (ra, target) = match (op, ops.len()) {
            (Opcode::Br, 1) => (Reg::ZERO, ops[0]),
            (Opcode::Bsr, 1) => (Reg::RA, ops[0]),
            (_, 2) => (reg(line_no, ops, 0)?, ops[1]),
            _ => return err(line_no, format!("{op} expects `ra, target`")),
        };
        if is_valid_label(target) {
            self.emit(
                line_no,
                Slot::BranchTo {
                    op,
                    ra,
                    target: target.to_string(),
                },
            );
            Ok(())
        } else if let Ok(disp) = self.resolve_int(target) {
            self.emit(line_no, Slot::Ready(Instr::branch(op, ra, disp as i32)));
            Ok(())
        } else {
            err(line_no, format!("bad branch target `{target}`"))
        }
    }

    fn asm_jump(&mut self, line_no: usize, op: Opcode, ops: &[&str]) -> Result<(), AsmError> {
        let (ra, rb_text) = match (op, ops.len()) {
            (Opcode::Ret, 0) => {
                self.emit(
                    line_no,
                    Slot::Ready(Instr::jump(Opcode::Ret, Reg::ZERO, Reg::RA)),
                );
                return Ok(());
            }
            (Opcode::Ret, 1) | (Opcode::Jmp, 1) => (Reg::ZERO, ops[0]),
            (Opcode::Jsr, 1) => (Reg::RA, ops[0]),
            (_, 2) => (reg(line_no, ops, 0)?, ops[1]),
            _ => return err(line_no, format!("{op} expects `ra, (rb)`")),
        };
        let inner = rb_text
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .unwrap_or(rb_text);
        let rb: Reg = inner.trim().parse().map_err(|_| AsmError {
            line: line_no,
            message: format!("bad jump register `{rb_text}`"),
        })?;
        self.emit(line_no, Slot::Ready(Instr::jump(op, ra, rb)));
        Ok(())
    }

    fn asm_system(&mut self, line_no: usize, op: Opcode, ops: &[&str]) -> Result<(), AsmError> {
        let ra = match op {
            Opcode::Outb | Opcode::Outq => reg(line_no, ops, 0)?,
            _ if !ops.is_empty() => {
                return err(line_no, format!("{op} takes no operands"));
            }
            _ => Reg::ZERO,
        };
        self.emit(line_no, Slot::Ready(Instr::system(op, ra)));
        Ok(())
    }

    fn finish(mut self) -> Result<Program, AsmError> {
        // Bind any labels left at the very end of the program.
        self.flush_labels(0)?;

        // Resolve text fixups.
        let mut text = Vec::with_capacity(self.slots.len());
        for (i, (line, slot)) in self.slots.iter().enumerate() {
            let pc = TEXT_BASE + 4 * i as u64;
            let instr = match slot {
                Slot::Ready(instr) => *instr,
                Slot::BranchTo { op, ra, target } => {
                    let addr = self.lookup(*line, target)?;
                    let delta = addr as i64 - (pc as i64 + 4);
                    if delta % 4 != 0 {
                        return err(*line, format!("misaligned branch target `{target}`"));
                    }
                    let disp = delta / 4;
                    if !(-(1 << 20)..(1 << 20)).contains(&disp) {
                        return err(*line, format!("branch target `{target}` out of range"));
                    }
                    Instr::branch(*op, *ra, disp as i32)
                }
                Slot::LaHigh { rd, label, offset } => {
                    let (base_reg, off) = self.la_base(*line, label)?;
                    let off = off + offset;
                    let lo = off as i16 as i64;
                    let hi = (off - lo) >> 16;
                    if !(-32768..=32767).contains(&hi) {
                        return err(*line, format!("label `{label}` out of la range"));
                    }
                    Instr::memory(Opcode::Ldah, *rd, hi as i32, base_reg)
                }
                Slot::LaLow { rd, label, offset } => {
                    let (_, off) = self.la_base(*line, label)?;
                    let lo = (off + offset) as i16 as i64;
                    Instr::memory(Opcode::Lda, *rd, lo as i32, *rd)
                }
            };
            text.push(instr.encode());
        }

        // Patch label-valued quads in the data image.
        for patch in &self.patches {
            let addr = self.lookup(patch.line, &patch.label)?;
            self.data[patch.offset..patch.offset + 8].copy_from_slice(&addr.to_le_bytes());
        }

        let entry = self.symbols.get("main").copied().unwrap_or(TEXT_BASE);
        Ok(Program {
            text,
            data: self.data,
            entry,
            symbols: self.symbols,
        })
    }

    /// Parses an integer, resolving `.equ` constants and simple
    /// `NAME+k` / `NAME-k` expressions over them.
    fn resolve_int(&self, s: &str) -> Result<i64, ()> {
        let s = s.trim();
        if let Ok(v) = parse_int(s) {
            return Ok(v);
        }
        if let Some(&v) = self.equates.get(s) {
            return Ok(v);
        }
        // NAME+k / NAME-k (split at the last +/- not at position 0).
        if let Some(pos) = s.rfind(['+', '-']).filter(|&p| p > 0) {
            let (name, rest) = s.split_at(pos);
            if let Some(&base) = self.equates.get(name.trim()) {
                let offset = parse_int(rest).map_err(|_| ())?;
                return Ok(base.wrapping_add(offset));
            }
        }
        Err(())
    }

    fn lookup(&self, line: usize, label: &str) -> Result<u64, AsmError> {
        self.symbols.get(label).copied().ok_or_else(|| AsmError {
            line,
            message: format!("undefined label `{label}`"),
        })
    }

    /// The base register and offset used by `la`: data labels are
    /// addressed relative to `gp`, text labels as absolute constants.
    fn la_base(&self, line: usize, label: &str) -> Result<(Reg, i64), AsmError> {
        let addr = self.lookup(line, label)?;
        if addr >= DATA_BASE {
            Ok((Reg::GP, (addr - DATA_BASE) as i64))
        } else {
            Ok((Reg::ZERO, addr as i64))
        }
    }
}

fn find_label_colon(s: &str) -> Option<usize> {
    // A label is an identifier immediately followed by ':' before any
    // other token.
    let trimmed = s.trim_start();
    let offset = s.len() - trimmed.len();
    let end = trimmed
        .char_indices()
        .take_while(|(_, c)| c.is_ascii_alphanumeric() || *c == '_' || *c == '.')
        .map(|(i, c)| i + c.len_utf8())
        .last()?;
    if trimmed[end..].starts_with(':') {
        Some(offset + end)
    } else {
        None
    }
}

fn is_valid_label(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && s.parse::<Reg>().is_err()
}

fn split_operands(s: &str) -> Vec<&str> {
    // Split on top-level commas, respecting string and char literals.
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut start = 0;
    let mut in_str = false;
    let mut in_char = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        let c = b as char;
        if escaped {
            escaped = false;
        } else if c == '\\' && (in_str || in_char) {
            escaped = true;
        } else if c == '"' && !in_char {
            in_str = !in_str;
        } else if c == '\'' && !in_str {
            in_char = !in_char;
        } else if c == ',' && !in_str && !in_char {
            out.push(&s[start..i]);
            start = i + 1;
        }
    }
    if start < s.len() || !s.is_empty() {
        out.push(&s[start..]);
    }
    out.into_iter().filter(|p| !p.trim().is_empty()).collect()
}

fn parse_int(s: &str) -> Result<i64, ()> {
    let s = s.trim();
    if let Some(ch) = parse_char_literal(s) {
        return Ok(ch as i64);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).map_err(|_| ())?
    } else {
        body.replace('_', "").parse::<u64>().map_err(|_| ())?
    };
    if neg {
        if value > (i64::MAX as u64) + 1 {
            return Err(());
        }
        Ok((value as i64).wrapping_neg())
    } else {
        i64::try_from(value).or(Ok(value as i64))
    }
}

fn parse_char_literal(s: &str) -> Option<u8> {
    let inner = s.strip_prefix('\'')?.strip_suffix('\'')?;
    let mut chars = inner.chars();
    let first = chars.next()?;
    let value = if first == '\\' {
        match chars.next()? {
            'n' => b'\n',
            't' => b'\t',
            'r' => b'\r',
            '0' => 0,
            '\\' => b'\\',
            '\'' => b'\'',
            '"' => b'"',
            _ => return None,
        }
    } else {
        u8::try_from(first as u32).ok()?
    };
    chars.next().is_none().then_some(value)
}

fn parse_string(line_no: usize, s: &str) -> Result<Vec<u8>, AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|x| x.strip_suffix('"'))
        .ok_or_else(|| AsmError {
            line: line_no,
            message: format!("expected quoted string, got `{s}`"),
        })?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            let esc = chars.next().ok_or_else(|| AsmError {
                line: line_no,
                message: "dangling escape in string".to_string(),
            })?;
            out.push(match esc {
                'n' => b'\n',
                't' => b'\t',
                'r' => b'\r',
                '0' => 0,
                '\\' => b'\\',
                '"' => b'"',
                other => {
                    return err(line_no, format!("unknown escape `\\{other}`"));
                }
            });
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(out)
}

fn parse_mem_operand(asm: &Assembler, line_no: usize, s: &str) -> Result<(i64, Reg), AsmError> {
    let s = s.trim();
    if let Some(open) = s.find('(') {
        let close = s.rfind(')').ok_or_else(|| AsmError {
            line: line_no,
            message: format!("missing `)` in `{s}`"),
        })?;
        let disp_text = s[..open].trim();
        let disp = if disp_text.is_empty() {
            0
        } else {
            asm.resolve_int(disp_text).map_err(|_| AsmError {
                line: line_no,
                message: format!("bad displacement `{disp_text}`"),
            })?
        };
        let rb: Reg = s[open + 1..close].trim().parse().map_err(|_| AsmError {
            line: line_no,
            message: format!("bad base register in `{s}`"),
        })?;
        Ok((disp, rb))
    } else {
        let disp = asm.resolve_int(s).map_err(|_| AsmError {
            line: line_no,
            message: format!("bad memory operand `{s}`"),
        })?;
        Ok((disp, Reg::ZERO))
    }
}

fn operand<'a>(line_no: usize, ops: &[&'a str], idx: usize) -> Result<&'a str, AsmError> {
    ops.get(idx).copied().ok_or_else(|| AsmError {
        line: line_no,
        message: format!("missing operand {}", idx + 1),
    })
}

fn reg(line_no: usize, ops: &[&str], idx: usize) -> Result<Reg, AsmError> {
    let text = operand(line_no, ops, idx)?;
    text.parse().map_err(|_| AsmError {
        line: line_no,
        message: format!("bad register `{text}`"),
    })
}

fn int(asm: &Assembler, line_no: usize, ops: &[&str], idx: usize) -> Result<i64, AsmError> {
    let text = operand(line_no, ops, idx)?;
    asm.resolve_int(text).map_err(|_| AsmError {
        line: line_no,
        message: format!("bad integer `{text}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::OperandB;

    fn asm(src: &str) -> Program {
        assemble(src).expect("assembly should succeed")
    }

    fn first(src: &str) -> Instr {
        Instr::decode(asm(src).text[0]).unwrap()
    }

    #[test]
    fn simple_operate() {
        let i = first("addq r1, r2, r3");
        assert_eq!(i.op, Opcode::Addq);
        assert_eq!(i.ra, Reg::new(1));
        assert_eq!(i.b, OperandB::Reg(Reg::new(2)));
        assert_eq!(i.rc, Reg::new(3));
    }

    #[test]
    fn literal_operand_with_and_without_hash() {
        assert_eq!(first("addq r1, #7, r3").b, OperandB::Lit(7));
        assert_eq!(first("addq r1, 7, r3").b, OperandB::Lit(7));
        assert_eq!(first("addq r1, 0xff, r3").b, OperandB::Lit(255));
    }

    #[test]
    fn negative_literal_flips_add_to_sub() {
        let i = first("addq r1, -4, r3");
        assert_eq!(i.op, Opcode::Subq);
        assert_eq!(i.b, OperandB::Lit(4));
        let j = first("subq r1, -4, r3");
        assert_eq!(j.op, Opcode::Addq);
    }

    #[test]
    fn oversized_literal_is_an_error() {
        let e = assemble("and r1, 300, r3").unwrap_err();
        assert!(e.message.contains("out of range"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn memory_operands() {
        let i = first("ldq r4, -16(sp)");
        assert_eq!(i.op, Opcode::Ldq);
        assert_eq!(i.disp, -16);
        assert_eq!(i.rb(), Reg::SP);
        assert_eq!(first("ldq r4, (sp)").disp, 0);
        assert_eq!(first("stb r4, 8(gp)").op, Opcode::Stb);
    }

    #[test]
    fn branch_to_label_forward_and_backward() {
        let p = asm("top: addq r1, 1, r1\n beq r1, top\n bne r1, end\n nop\nend: halt");
        let beq = Instr::decode(p.text[1]).unwrap();
        assert_eq!(beq.disp, -2);
        let bne = Instr::decode(p.text[2]).unwrap();
        assert_eq!(bne.disp, 1);
    }

    #[test]
    fn br_and_call_sugar() {
        let p = asm("main: br skip\nskip: call f\nf: ret");
        let br = Instr::decode(p.text[0]).unwrap();
        assert_eq!((br.op, br.ra), (Opcode::Br, Reg::ZERO));
        let bsr = Instr::decode(p.text[1]).unwrap();
        assert_eq!((bsr.op, bsr.ra), (Opcode::Bsr, Reg::RA));
        let ret = Instr::decode(p.text[2]).unwrap();
        assert_eq!((ret.op, ret.rb()), (Opcode::Ret, Reg::RA));
    }

    #[test]
    fn li_small_is_one_instruction() {
        let p = asm("li r1, 42");
        assert_eq!(p.text.len(), 1);
        let i = Instr::decode(p.text[0]).unwrap();
        assert_eq!((i.op, i.disp), (Opcode::Lda, 42));
        assert_eq!(i.rb(), Reg::ZERO);
    }

    #[test]
    fn li_large_uses_ldah() {
        let p = asm("li r1, 0x12345678");
        assert_eq!(p.text.len(), 2);
        let hi = Instr::decode(p.text[0]).unwrap();
        let lo = Instr::decode(p.text[1]).unwrap();
        assert_eq!(hi.op, Opcode::Ldah);
        assert_eq!(lo.op, Opcode::Lda);
        // ldah adds disp<<16; lda adds sign-extended disp.
        let value = ((hi.disp as i64) << 16) + lo.disp as i64;
        assert_eq!(value, 0x12345678);
    }

    #[test]
    fn li_negative() {
        let p = asm("li r1, -100000");
        let hi = Instr::decode(p.text[0]).unwrap();
        let lo = Instr::decode(p.text[1]).unwrap();
        assert_eq!(((hi.disp as i64) << 16) + lo.disp as i64, -100000);
    }

    #[test]
    fn li_too_large_is_an_error() {
        assert!(assemble("li r1, 0x1_0000_0000").is_err());
    }

    #[test]
    fn la_data_label_is_gp_relative() {
        let p = asm(".data\nbuf: .space 8\n.text\nmain: la a0, buf\nhalt");
        assert_eq!(p.symbol("buf"), Some(DATA_BASE));
        let hi = Instr::decode(p.text[0]).unwrap();
        assert_eq!(hi.op, Opcode::Ldah);
        assert_eq!(hi.rb(), Reg::GP);
        let lo = Instr::decode(p.text[1]).unwrap();
        assert_eq!(lo.op, Opcode::Lda);
        assert_eq!(lo.rb(), Reg::new(16));
        assert_eq!(((hi.disp as i64) << 16) + lo.disp as i64, 0);
    }

    #[test]
    fn la_text_label_is_absolute() {
        let p = asm("main: la t0, main\nhalt");
        let hi = Instr::decode(p.text[0]).unwrap();
        assert_eq!(hi.rb(), Reg::ZERO);
        let lo = Instr::decode(p.text[1]).unwrap();
        assert_eq!(
            (((hi.disp as i64) << 16) + lo.disp as i64) as u64,
            TEXT_BASE
        );
    }

    #[test]
    fn data_directives_lay_out_bytes() {
        let p = asm(concat!(
            ".data\n",
            "a: .quad 1, -1\n",
            "b: .long 0x11223344\n",
            "c: .word 7\n",
            "d: .byte 1, 2, 3\n",
            "e: .asciiz \"hi\\n\"\n",
            ".align 8\n",
            "f:\n",
            "g: .space 4\n",
            ".text\nmain: halt"
        ));
        assert_eq!(p.symbol("a"), Some(DATA_BASE));
        assert_eq!(p.symbol("b"), Some(DATA_BASE + 16));
        assert_eq!(p.symbol("c"), Some(DATA_BASE + 20));
        assert_eq!(p.symbol("d"), Some(DATA_BASE + 22));
        assert_eq!(p.symbol("e"), Some(DATA_BASE + 25));
        assert_eq!(p.data[0..8], 1u64.to_le_bytes());
        assert_eq!(p.data[8..16], u64::MAX.to_le_bytes());
        assert_eq!(p.data[25..29], *b"hi\n\0");
        assert_eq!(p.symbol("f").unwrap() % 8, 0);
        assert_eq!(p.data.len() as u64, p.symbol("g").unwrap() - DATA_BASE + 4);
    }

    #[test]
    fn quad_of_label_patches_address() {
        let p = asm(".data\ntable: .quad main, other\n.text\nmain: nop\nother: halt");
        let lo = u64::from_le_bytes(p.data[0..8].try_into().unwrap());
        let hi = u64::from_le_bytes(p.data[8..16].try_into().unwrap());
        assert_eq!(lo, p.symbol("main").unwrap());
        assert_eq!(hi, p.symbol("other").unwrap());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = asm("main:\n  ; full comment\n  nop // trailing\n  halt ; done\n");
        assert_eq!(p.text.len(), 2);
    }

    #[test]
    fn semicolon_inside_string_is_not_a_comment() {
        let p = asm(".data\ns: .asciiz \"a;b\"\n.text\nmain: halt");
        assert_eq!(p.data, b"a;b\0");
    }

    #[test]
    fn char_literals_as_ints() {
        assert_eq!(first("addq r1, 'A', r2").b, OperandB::Lit(65));
        assert_eq!(first("addq r1, '\\n', r2").b, OperandB::Lit(10));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("x: nop\nx: halt").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn undefined_label_rejected() {
        let e = assemble("main: br nowhere").unwrap_err();
        assert!(e.message.contains("undefined"));
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let e = assemble("main: frobnicate r1, r2, r3").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"));
    }

    #[test]
    fn entry_is_main_or_text_base() {
        let p = asm("nop\nmain: halt");
        assert_eq!(p.entry, TEXT_BASE + 4);
        let q = asm("nop\nhalt");
        assert_eq!(q.entry, TEXT_BASE);
    }

    #[test]
    fn mov_and_clr_pseudos() {
        let i = first("mov r5, r6");
        assert_eq!(
            (i.op, i.ra, i.b, i.rc),
            (
                Opcode::Bis,
                Reg::new(5),
                OperandB::Reg(Reg::new(5)),
                Reg::new(6)
            )
        );
        let j = first("clr r7");
        assert_eq!((j.op, j.ra, j.rc), (Opcode::Bis, Reg::ZERO, Reg::new(7)));
    }

    #[test]
    fn sext_unary_sugar() {
        let i = first("sextb r3, r4");
        assert_eq!(
            (i.op, i.ra, i.b, i.rc),
            (
                Opcode::Sextb,
                Reg::ZERO,
                OperandB::Reg(Reg::new(3)),
                Reg::new(4)
            )
        );
    }

    #[test]
    fn jump_forms() {
        let i = first("jsr (pv)");
        assert_eq!((i.op, i.ra, i.rb()), (Opcode::Jsr, Reg::RA, Reg::PV));
        let j = first("jmp (t0)");
        assert_eq!((j.op, j.ra, j.rb()), (Opcode::Jmp, Reg::ZERO, Reg::new(1)));
        let k = first("ret");
        assert_eq!((k.op, k.rb()), (Opcode::Ret, Reg::RA));
    }

    #[test]
    fn multiple_labels_same_address() {
        let p = asm("a:\nb: halt");
        assert_eq!(p.symbol("a"), p.symbol("b"));
    }

    #[test]
    fn equ_constants_resolve_everywhere() {
        let p = asm(concat!(
            ".equ SIZE, 40
",
            ".equ DOUBLE, 80
",
            ".data
buf: .space SIZE
vals: .quad SIZE, DOUBLE
",
            ".text
",
            "main: li t0, SIZE
",
            " addq t0, SIZE, t1
",
            " ldq t2, SIZE(gp)
",
            " outq t1
 halt"
        ));
        assert_eq!(p.symbol("vals").unwrap() - p.symbol("buf").unwrap(), 40);
        assert_eq!(p.data[40..48], 40u64.to_le_bytes());
        let li = Instr::decode(p.text[0]).unwrap();
        assert_eq!(li.disp, 40);
        let add = Instr::decode(p.text[1]).unwrap();
        assert_eq!(add.b, OperandB::Lit(40));
        let ldq = Instr::decode(p.text[2]).unwrap();
        assert_eq!(ldq.disp, 40);
    }

    #[test]
    fn equ_expressions() {
        let p = asm(".equ BASE, 100
main: li t0, BASE+28
 li t1, BASE-1
 halt");
        assert_eq!(Instr::decode(p.text[0]).unwrap().disp, 128);
        assert_eq!(Instr::decode(p.text[1]).unwrap().disp, 99);
    }

    #[test]
    fn equ_errors() {
        assert!(assemble(
            ".equ X, 1
.equ X, 2
main: halt"
        )
        .is_err());
        assert!(assemble(
            ".equ 9bad, 1
main: halt"
        )
        .is_err());
        assert!(assemble(
            "main: li t0, UNDEFINED
 halt"
        )
        .is_err());
    }

    #[test]
    fn la_with_offset() {
        let p = asm(".data
buf: .space 64
.text
main: la a0, buf+16
 la a1, buf-0
 halt");
        let hi = Instr::decode(p.text[0]).unwrap();
        let lo = Instr::decode(p.text[1]).unwrap();
        assert_eq!(((hi.disp as i64) << 16) + lo.disp as i64, 16);
        let hi2 = Instr::decode(p.text[2]).unwrap();
        let lo2 = Instr::decode(p.text[3]).unwrap();
        assert_eq!(((hi2.disp as i64) << 16) + lo2.disp as i64, 0);
    }

    #[test]
    fn instructions_in_data_section_rejected() {
        let e = assemble(".data\naddq r1, r2, r3").unwrap_err();
        assert!(e.message.contains("only valid in .text"));
    }

    #[test]
    fn data_directive_in_text_rejected() {
        let e = assemble(".quad 1").unwrap_err();
        assert!(e.message.contains("only valid in .data"));
    }
}
