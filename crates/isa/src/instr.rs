//! Decoded instruction representation, binary encoding and decoding.
//!
//! Instructions are 32 bits. Bit layout by format (bit 31 on the left):
//!
//! ```text
//! Operate  | op:6 | ra:5 | rb:5 or lit:8 | pad | L:1 (bit 12) | pad | rc:5 |
//! Memory   | op:6 | ra:5 | rb:5 | disp16                                  |
//! Branch   | op:6 | ra:5 | disp21                                         |
//! Jump     | op:6 | ra:5 | rb:5 | 0:16                                    |
//! System   | op:6 | ra:5 | 0:21                                           |
//! ```
//!
//! When the operate literal flag `L` (bit 12) is set, bits `[20:13]` hold an
//! unsigned 8-bit literal used in place of `rb` — the Alpha operate-format
//! literal.

use crate::op::{Format, Opcode};
use crate::reg::Reg;
use std::fmt;

/// The second source of an operate-format instruction: a register or an
/// 8-bit unsigned literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandB {
    /// Register operand.
    Reg(Reg),
    /// Unsigned 8-bit literal operand.
    Lit(u8),
}

impl fmt::Display for OperandB {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperandB::Reg(r) => write!(f, "{r}"),
            OperandB::Lit(l) => write!(f, "#{l}"),
        }
    }
}

/// A decoded instruction.
///
/// Field meaning depends on [`Opcode::format`]:
///
/// * **Operate** — sources `ra` and `b`; destination `rc`.
/// * **Memory** — base `rb`, displacement `disp`; `ra` is the destination
///   (loads, `lda`, `ldah`) or the stored value (stores).
/// * **Branch** — `ra` is tested (conditional) or receives the return
///   address (`br`/`bsr`); `disp` is a signed word displacement from the
///   instruction after the branch.
/// * **Jump** — target in `rb`; `ra` receives the return address.
/// * **System** — `ra` is the output source for `outb`/`outq`.
///
/// # Example
///
/// ```
/// use nwo_isa::{Instr, Opcode, Reg};
///
/// let add = Instr::operate(Opcode::Addq, Reg::new(1), Reg::new(2), Reg::new(3));
/// let word = add.encode();
/// assert_eq!(Instr::decode(word)?, add);
/// assert_eq!(add.to_string(), "addq t0, t1, t2");
/// # Ok::<(), nwo_isa::DecodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instr {
    /// The operation.
    pub op: Opcode,
    /// First register field.
    pub ra: Reg,
    /// Second source (operate format only).
    pub b: OperandB,
    /// Destination register (operate format) / base register (memory,
    /// jump formats).
    pub rc: Reg,
    /// Signed displacement: 16-bit for memory format, 21-bit word
    /// displacement for branch format.
    pub disp: i32,
}

/// Error produced when decoding an invalid instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

impl Instr {
    /// Builds an operate-format instruction with a register second source.
    pub fn operate(op: Opcode, ra: Reg, rb: Reg, rc: Reg) -> Instr {
        debug_assert_eq!(op.format(), Format::Operate);
        Instr {
            op,
            ra,
            b: OperandB::Reg(rb),
            rc,
            disp: 0,
        }
    }

    /// Builds an operate-format instruction with a literal second source.
    pub fn operate_lit(op: Opcode, ra: Reg, lit: u8, rc: Reg) -> Instr {
        debug_assert_eq!(op.format(), Format::Operate);
        Instr {
            op,
            ra,
            b: OperandB::Lit(lit),
            rc,
            disp: 0,
        }
    }

    /// Builds a memory-format instruction `op ra, disp(rb)`.
    ///
    /// # Panics
    ///
    /// Panics if `disp` does not fit in 16 signed bits.
    pub fn memory(op: Opcode, ra: Reg, disp: i32, rb: Reg) -> Instr {
        debug_assert_eq!(op.format(), Format::Memory);
        assert!(
            (-32768..=32767).contains(&disp),
            "memory displacement {disp} out of 16-bit range"
        );
        Instr {
            op,
            ra,
            b: OperandB::Reg(rb),
            rc: rb,
            disp,
        }
    }

    /// Builds a branch-format instruction with a word displacement.
    ///
    /// # Panics
    ///
    /// Panics if `disp` does not fit in 21 signed bits.
    pub fn branch(op: Opcode, ra: Reg, disp: i32) -> Instr {
        debug_assert_eq!(op.format(), Format::Branch);
        assert!(
            (-(1 << 20)..(1 << 20)).contains(&disp),
            "branch displacement {disp} out of 21-bit range"
        );
        Instr {
            op,
            ra,
            b: OperandB::Lit(0),
            rc: Reg::ZERO,
            disp,
        }
    }

    /// Builds a jump-format instruction `op ra, (rb)`.
    pub fn jump(op: Opcode, ra: Reg, rb: Reg) -> Instr {
        debug_assert_eq!(op.format(), Format::Jump);
        Instr {
            op,
            ra,
            b: OperandB::Reg(rb),
            rc: rb,
            disp: 0,
        }
    }

    /// Builds a system-format instruction.
    pub fn system(op: Opcode, ra: Reg) -> Instr {
        debug_assert_eq!(op.format(), Format::System);
        Instr {
            op,
            ra,
            b: OperandB::Lit(0),
            rc: Reg::ZERO,
            disp: 0,
        }
    }

    /// The base register of a memory or jump format instruction.
    pub fn rb(&self) -> Reg {
        match self.b {
            OperandB::Reg(r) => r,
            OperandB::Lit(_) => Reg::ZERO,
        }
    }

    /// The branch target given this instruction's address.
    ///
    /// Valid only for branch-format instructions; the displacement is in
    /// words relative to the next instruction, as on Alpha.
    pub fn branch_target(&self, pc: u64) -> u64 {
        debug_assert_eq!(self.op.format(), Format::Branch);
        pc.wrapping_add(4)
            .wrapping_add((self.disp as i64 as u64) << 2)
    }

    /// Encodes to a 32-bit instruction word.
    pub fn encode(&self) -> u32 {
        let op = (self.op.code() as u32) << 26;
        let ra = (self.ra.index() as u32) << 21;
        match self.op.format() {
            Format::Operate => {
                let rc = self.rc.index() as u32;
                match self.b {
                    OperandB::Reg(rb) => op | ra | ((rb.index() as u32) << 16) | rc,
                    OperandB::Lit(lit) => op | ra | ((lit as u32) << 13) | (1 << 12) | rc,
                }
            }
            Format::Memory => {
                let rb = (self.rb().index() as u32) << 16;
                op | ra | rb | (self.disp as u32 & 0xffff)
            }
            Format::Branch => op | ra | (self.disp as u32 & 0x1f_ffff),
            Format::Jump => op | ra | ((self.rb().index() as u32) << 16),
            Format::System => op | ra,
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the opcode field is unassigned.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let op = Opcode::from_code((word >> 26) as u8).ok_or(DecodeError { word })?;
        let ra = Reg::new(((word >> 21) & 0x1f) as u8);
        let instr = match op.format() {
            Format::Operate => {
                let rc = Reg::new((word & 0x1f) as u8);
                if word & (1 << 12) != 0 {
                    let lit = ((word >> 13) & 0xff) as u8;
                    Instr::operate_lit(op, ra, lit, rc)
                } else {
                    let rb = Reg::new(((word >> 16) & 0x1f) as u8);
                    Instr::operate(op, ra, rb, rc)
                }
            }
            Format::Memory => {
                let rb = Reg::new(((word >> 16) & 0x1f) as u8);
                let disp = (word & 0xffff) as u16 as i16 as i32;
                Instr::memory(op, ra, disp, rb)
            }
            Format::Branch => {
                // Sign-extend the 21-bit displacement.
                let raw = word & 0x1f_ffff;
                let disp = ((raw << 11) as i32) >> 11;
                Instr::branch(op, ra, disp)
            }
            Format::Jump => {
                let rb = Reg::new(((word >> 16) & 0x1f) as u8);
                Instr::jump(op, ra, rb)
            }
            Format::System => Instr::system(op, ra),
        };
        Ok(instr)
    }
}

impl fmt::Display for Instr {
    /// Disassembles in the assembler's input syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op.format() {
            Format::Operate => write!(f, "{} {}, {}, {}", self.op, self.ra, self.b, self.rc),
            Format::Memory => write!(f, "{} {}, {}({})", self.op, self.ra, self.disp, self.rb()),
            Format::Branch => write!(f, "{} {}, {:+}", self.op, self.ra, self.disp),
            Format::Jump => write!(f, "{} {}, ({})", self.op, self.ra, self.rb()),
            Format::System => match self.op {
                Opcode::Outb | Opcode::Outq => write!(f, "{} {}", self.op, self.ra),
                _ => write!(f, "{}", self.op),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn operate_reg_round_trip() {
        let i = Instr::operate(Opcode::Addq, r(1), r(2), r(3));
        assert_eq!(Instr::decode(i.encode()).unwrap(), i);
    }

    #[test]
    fn operate_lit_round_trip() {
        let i = Instr::operate_lit(Opcode::Subq, r(5), 255, r(7));
        let d = Instr::decode(i.encode()).unwrap();
        assert_eq!(d, i);
        assert_eq!(d.b, OperandB::Lit(255));
    }

    #[test]
    fn memory_negative_disp_round_trip() {
        let i = Instr::memory(Opcode::Ldq, r(4), -32768, r(30));
        assert_eq!(Instr::decode(i.encode()).unwrap(), i);
        let j = Instr::memory(Opcode::Stb, r(4), 32767, r(30));
        assert_eq!(Instr::decode(j.encode()).unwrap(), j);
    }

    #[test]
    fn branch_disp_round_trip() {
        for disp in [-(1 << 20), -1, 0, 1, (1 << 20) - 1] {
            let i = Instr::branch(Opcode::Beq, r(9), disp);
            assert_eq!(Instr::decode(i.encode()).unwrap(), i, "disp {disp}");
        }
    }

    #[test]
    fn jump_round_trip() {
        let i = Instr::jump(Opcode::Ret, Reg::ZERO, Reg::RA);
        assert_eq!(Instr::decode(i.encode()).unwrap(), i);
    }

    #[test]
    fn system_round_trip() {
        for op in [Opcode::Halt, Opcode::Nop, Opcode::Outb, Opcode::Outq] {
            let i = Instr::system(op, r(0));
            assert_eq!(Instr::decode(i.encode()).unwrap(), i);
        }
    }

    #[test]
    fn every_opcode_round_trips() {
        for &op in Opcode::ALL {
            let i = match op.format() {
                Format::Operate => Instr::operate(op, r(1), r(2), r(3)),
                Format::Memory => Instr::memory(op, r(1), 100, r(2)),
                Format::Branch => Instr::branch(op, r(1), -5),
                Format::Jump => Instr::jump(op, r(26), r(27)),
                Format::System => Instr::system(op, r(0)),
            };
            assert_eq!(Instr::decode(i.encode()).unwrap(), i, "opcode {op}");
        }
    }

    #[test]
    fn invalid_opcode_rejected() {
        let word = 0x3fu32 << 26;
        assert!(Instr::decode(word).is_err());
    }

    #[test]
    fn branch_target_computation() {
        let i = Instr::branch(Opcode::Br, Reg::ZERO, 3);
        assert_eq!(i.branch_target(0x1000), 0x1000 + 4 + 12);
        let j = Instr::branch(Opcode::Beq, r(1), -1);
        assert_eq!(j.branch_target(0x1000), 0x1000);
    }

    #[test]
    #[should_panic(expected = "out of 16-bit range")]
    fn oversized_memory_disp_panics() {
        Instr::memory(Opcode::Ldq, r(1), 40000, r(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Instr::operate_lit(Opcode::Addq, r(1), 5, r(1)).to_string(),
            "addq t0, #5, t0"
        );
        assert_eq!(
            Instr::memory(Opcode::Ldq, r(0), -8, Reg::SP).to_string(),
            "ldq v0, -8(sp)"
        );
        assert_eq!(
            Instr::jump(Opcode::Ret, Reg::ZERO, Reg::RA).to_string(),
            "ret zero, (ra)"
        );
        assert_eq!(Instr::system(Opcode::Halt, Reg::ZERO).to_string(), "halt");
    }
}
