//! Checkpoint round-trip properties for the functional emulator: a
//! mid-run checkpoint restored into a fresh emulator (loaded from the
//! same program) continues to the exact same final state.

use nwo_ckpt::{Checkpointable, CkptError, SectionReader, SectionWriter};
use nwo_isa::{assemble, Emulator};
use proptest::prelude::*;

fn save_bytes(state: &dyn Checkpointable) -> Vec<u8> {
    let mut w = SectionWriter::new();
    state.save(&mut w);
    w.into_bytes()
}

fn restore_from(receiver: &mut dyn Checkpointable, payload: &[u8]) -> Result<(), CkptError> {
    let mut r = SectionReader::new(payload.to_vec());
    receiver.restore(&mut r)?;
    r.finish("test payload")
}

/// A store/load loop that touches memory, produces byte and quad output,
/// and runs long enough to be interrupted at interesting points.
fn loop_program(iters: u64) -> nwo_isa::Program {
    assemble(&format!(
        concat!(
            "main: clr t0\n",
            " li t1, {iters}\n",
            " li t2, 0x1000\n",
            "loop: addq t0, t1, t0\n",
            " stq t0, 0(t2)\n",
            " ldq t3, 0(t2)\n",
            " outb t3\n",
            " addq t2, 8, t2\n",
            " subq t1, 1, t1\n",
            " bgt t1, loop\n",
            " outq t0\n",
            " halt\n",
        ),
        iters = iters
    ))
    .expect("assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Stop anywhere mid-run, checkpoint, restore into a fresh emulator
    /// of the same program, and both finish in identical states.
    #[test]
    fn mid_run_checkpoint_resumes_identically(
        iters in 1u64..24,
        stop_seed in any::<u64>(),
    ) {
        let program = loop_program(iters);
        let mut original = Emulator::new(&program);
        // ~7 instructions per iteration plus prologue/epilogue.
        let total = 3 + iters * 7 + 2;
        let stop = stop_seed % total;
        for _ in 0..stop {
            if original.halted() {
                break;
            }
            original.step().expect("steps");
        }
        let payload = save_bytes(&original);

        let mut resumed = Emulator::new(&program);
        restore_from(&mut resumed, &payload).expect("restores");
        prop_assert_eq!(save_bytes(&resumed), payload, "re-save is byte-identical");
        prop_assert_eq!(resumed.pc(), original.pc());
        prop_assert_eq!(resumed.icount(), original.icount());

        original.run(1_000_000).expect("original finishes");
        resumed.run(1_000_000).expect("resumed finishes");
        prop_assert_eq!(resumed.output(), original.output());
        prop_assert_eq!(resumed.outq(), original.outq());
        prop_assert_eq!(resumed.icount(), original.icount());
        for r in 0..32u8 {
            let r = nwo_isa::Reg::new(r);
            prop_assert_eq!(resumed.reg(r), original.reg(r));
        }
    }

    /// Truncating an emulator payload at any point is a typed error.
    #[test]
    fn truncated_emulator_payload_is_rejected(cut_seed in any::<u64>()) {
        let program = loop_program(4);
        let mut emu = Emulator::new(&program);
        for _ in 0..20 {
            emu.step().expect("steps");
        }
        let payload = save_bytes(&emu);
        let cut = (cut_seed % payload.len() as u64) as usize;
        let mut receiver = Emulator::new(&program);
        prop_assert!(restore_from(&mut receiver, &payload[..cut]).is_err());
    }
}

#[test]
fn restored_halted_emulator_stays_halted() {
    let program = loop_program(2);
    let mut emu = Emulator::new(&program);
    emu.run(1_000_000).expect("halts");
    assert!(emu.halted());
    let payload = save_bytes(&emu);
    let mut restored = Emulator::new(&program);
    restore_from(&mut restored, &payload).expect("restores");
    assert!(restored.halted());
    assert_eq!(restored.output(), emu.output());
    assert_eq!(restored.outq(), emu.outq());
}
