//! Crash-consistency campaign for the disk blob cache: a seeded storm
//! of torn writes, bit flips, garbage blobs and orphaned temp files,
//! asserting `CacheDir::scrub` detects 100% of the damage, quarantine
//! makes the cache serve-clean again, and a store/load cycle recovers
//! the quarantined keys.
//!
//! The seed comes from `NWO_CHAOS_SEED` (default fixed), and every
//! assertion message carries it — any CI failure reproduces locally
//! with one env var.

use nwo_ckpt::{BlobHealth, CacheDir, CheckpointWriter, ScrubOptions, ScrubReport, SectionWriter};
use std::path::PathBuf;

/// Local copy of the repo's deterministic xorshift64 (`nwo-verify`
/// defines the canonical one; duplicating three lines here avoids a
/// dev-dependency cycle through the simulator stack).
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

fn seed_from_env(default: u64) -> u64 {
    match std::env::var("NWO_CHAOS_SEED") {
        Err(_) => default,
        Ok(text) => {
            let text = text.trim();
            match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).unwrap_or(default),
                None => text.parse().unwrap_or(default),
            }
        }
    }
}

fn banner(seed: u64) -> String {
    format!("chaos seed {seed:#018x} — rerun with NWO_CHAOS_SEED={seed:#x}")
}

fn scratch(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("nwo-scrub-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// A healthy NWOC container blob with one section derived from `tag`.
fn healthy_blob(tag: u64) -> Vec<u8> {
    let mut section = SectionWriter::new();
    section.put_u64(tag);
    section.put_bytes(format!("result-{tag}").as_bytes());
    let mut w = CheckpointWriter::new();
    w.add_section("report", section.into_bytes());
    w.to_bytes()
}

/// The ways a blob can be torn, mirroring what a killed writer or a
/// decaying disk produces.
#[derive(Debug, Clone, Copy)]
enum Tear {
    /// Truncated mid-container (killed during a non-atomic write).
    Truncate,
    /// One payload byte flipped (silent media corruption).
    FlipPayloadByte,
    /// The magic stomped (a foreign file under a `.ckpt` name).
    StompMagic,
    /// Replaced entirely with garbage.
    Garbage,
}

const TEARS: [Tear; 4] = [
    Tear::Truncate,
    Tear::FlipPayloadByte,
    Tear::StompMagic,
    Tear::Garbage,
];

fn torn_blob(rng: &mut XorShift64, tear: Tear, tag: u64) -> Vec<u8> {
    let mut bytes = healthy_blob(tag);
    match tear {
        Tear::Truncate => {
            // Never truncate to the full length — that would be no tear.
            let keep = rng.below(bytes.len() as u64 - 1) as usize;
            bytes.truncate(keep);
        }
        Tear::FlipPayloadByte => {
            // Flip inside the section payload (past the fixed header
            // and section framing) so the CRC walk must catch it.
            let header = 4 + 2 + 8 + 4 + 2 + "report".len() + 8 + 4;
            let i = header + rng.below((bytes.len() - header) as u64) as usize;
            bytes[i] ^= 1 << rng.below(8);
        }
        Tear::StompMagic => {
            let i = rng.below(4) as usize;
            bytes[i] = !bytes[i];
        }
        Tear::Garbage => {
            let len = 1 + rng.below(200) as usize;
            bytes = (0..len).map(|_| rng.below(256) as u8).collect();
        }
    }
    bytes
}

fn scrub(cache: &CacheDir, options: &ScrubOptions) -> ScrubReport {
    cache
        .scrub(options)
        .expect("scrub walks without I/O errors")
}

#[test]
fn seeded_torn_blob_campaign_is_fully_detected_and_recovered() {
    let seed = seed_from_env(0x5C_12B);
    let banner = banner(seed);
    let mut rng = XorShift64::new(seed);
    let root = scratch("campaign");
    let cache = CacheDir::new(&root);

    // A population of healthy blobs...
    const HEALTHY: u64 = 6;
    for tag in 0..HEALTHY {
        cache
            .store(&format!("healthy/{tag}"), &healthy_blob(tag))
            .expect("store");
    }
    // ...plus a seeded storm of torn ones, written *directly* (the
    // whole point is to model bytes that bypassed the atomic path),
    // covering every tear class at least once.
    const TORN: u64 = 24;
    let mut torn_keys = Vec::new();
    for i in 0..TORN {
        let tear = TEARS[if i < TEARS.len() as u64 {
            i as usize // guarantee full class coverage
        } else {
            rng.below(TEARS.len() as u64) as usize
        }];
        let key = format!("torn/{i}");
        let path = cache.path_for(&key);
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir");
        std::fs::write(&path, torn_blob(&mut rng, tear, 1000 + i)).expect("write torn blob");
        torn_keys.push(key);
    }
    // And orphaned temp files from "killed" writers.
    for i in 0..3 {
        let tmp = root.join(format!("orphan-{i}.tmp.12345.{i}"));
        std::fs::write(&tmp, b"half-written").expect("write orphan");
    }

    // Scrub must detect 100% of the damage: every torn blob Corrupt,
    // every healthy blob Ok, every orphan reaped.
    let report = scrub(&cache, &ScrubOptions::default());
    assert_eq!(
        report.entries.len() as u64,
        HEALTHY + TORN,
        "every blob examined [{banner}]"
    );
    assert_eq!(
        report.ok() as u64,
        HEALTHY,
        "healthy blobs stay Ok [{banner}]"
    );
    assert_eq!(
        report.corrupt() as u64,
        TORN,
        "every torn blob detected: {:?} [{banner}]",
        report
            .entries
            .iter()
            .filter(|e| e.health == BlobHealth::Ok)
            .map(|e| &e.file)
            .collect::<Vec<_>>()
    );
    assert_eq!(
        report.reaped_tmp.len(),
        3,
        "orphan temp files reaped [{banner}]"
    );
    assert!(
        report
            .entries
            .iter()
            .filter(|e| matches!(e.health, BlobHealth::Corrupt(_)))
            .all(|e| e.quarantined),
        "corrupt blobs quarantined [{banner}]"
    );

    // A second scrub over the quarantined cache is clean: the corrupt
    // blobs are out of service, the orphans gone.
    let second = scrub(&cache, &ScrubOptions::default());
    assert_eq!(second.corrupt(), 0, "[{banner}]");
    assert!(second.reaped_tmp.is_empty(), "[{banner}]");
    assert_eq!(second.prior_quarantined, TORN, "[{banner}]");
    assert!(second.clean(), "[{banner}]");

    // Recovery: quarantined keys read as cache misses, and a fresh
    // store round-trips — the runner's re-warm path in miniature.
    for (i, key) in torn_keys.iter().enumerate() {
        assert_eq!(
            cache.load(key).expect("load"),
            None,
            "quarantined blob must read as a miss [{banner}]"
        );
        let replacement = healthy_blob(5000 + i as u64);
        cache.store(key, &replacement).expect("re-store");
        assert_eq!(
            cache.load(key).expect("reload").as_deref(),
            Some(replacement.as_slice()),
            "[{banner}]"
        );
    }
    let healed = scrub(&cache, &ScrubOptions::default());
    assert_eq!(healed.ok() as u64, HEALTHY + TORN, "[{banner}]");
    assert_eq!(healed.corrupt(), 0, "[{banner}]");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn report_only_scrub_leaves_the_directory_untouched() {
    let seed = seed_from_env(0xD15C);
    let banner = banner(seed);
    let mut rng = XorShift64::new(seed);
    let root = scratch("report-only");
    let cache = CacheDir::new(&root);
    cache.store("good", &healthy_blob(1)).expect("store");
    let bad_path = cache.path_for("bad");
    std::fs::write(&bad_path, torn_blob(&mut rng, Tear::FlipPayloadByte, 2)).expect("write");
    let tmp = root.join("orphan.tmp.1.1");
    std::fs::write(&tmp, b"x").expect("write");

    let options = ScrubOptions {
        quarantine: false,
        reap_tmp: false,
    };
    let report = scrub(&cache, &options);
    assert_eq!(report.corrupt(), 1, "[{banner}]");
    assert_eq!(report.reaped_tmp.len(), 1, "still *reported* [{banner}]");
    assert!(report.entries.iter().all(|e| !e.quarantined), "[{banner}]");
    assert!(bad_path.exists(), "report-only keeps the blob [{banner}]");
    assert!(tmp.exists(), "report-only keeps the orphan [{banner}]");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stale_salt_blobs_are_reported_not_quarantined() {
    let root = scratch("stale");
    let cache = CacheDir::new(&root);
    let mut bytes = healthy_blob(1);
    bytes[6] ^= 0xFF; // flip a salt byte: structurally sound, foreign revision
    std::fs::create_dir_all(&root).expect("mkdir");
    std::fs::write(cache.path_for("stale"), &bytes).expect("write");
    let report = scrub(&cache, &ScrubOptions::default());
    assert_eq!(report.stale(), 1);
    assert_eq!(report.corrupt(), 0);
    assert!(!report.clean(), "stale entries keep the report non-clean");
    assert!(
        cache.path_for("stale").exists(),
        "stale blobs stay in place (this build simply regenerates them)"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_stores_to_one_key_never_publish_a_torn_blob() {
    let root = scratch("race");
    let cache = CacheDir::new(&root);
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let cache = cache.clone();
            std::thread::spawn(move || {
                let blob = healthy_blob(i);
                for _ in 0..50 {
                    cache.store("contended", &blob).expect("store");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("writer thread");
    }
    // Whatever won, the published blob is one writer's complete bytes
    // and the directory scrubs clean (no torn publish, no leftover
    // temp files from the unique-suffix scheme).
    let report = scrub(&cache, &ScrubOptions::default());
    assert_eq!(report.corrupt(), 0);
    assert!(report.reaped_tmp.is_empty());
    assert_eq!(report.ok(), 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_missing_cache_directory_scrubs_clean() {
    let root = scratch("absent");
    let cache = CacheDir::new(&root);
    let report = scrub(&cache, &ScrubOptions::default());
    assert!(report.clean());
    assert!(report.entries.is_empty());
}

#[test]
fn failure_output_embeds_the_reproduction_seed() {
    // The contract every chaos surface shares: the seed appears in the
    // message a failing assertion would print, so a CI failure is
    // reproducible with one env var.
    let seed = seed_from_env(0xABCD);
    let banner = banner(seed);
    assert!(banner.contains("NWO_CHAOS_SEED="), "{banner}");
    let result = std::panic::catch_unwind(|| {
        panic!("deliberate failure [{banner}]");
    });
    let panic = result.expect_err("the assertion fails");
    let text = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        text.contains("NWO_CHAOS_SEED="),
        "panic text must carry the seed: {text}"
    );
}
