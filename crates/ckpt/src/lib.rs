#![warn(missing_docs)]

//! Versioned binary checkpoints of warmed machine state, plus the disk
//! blob cache the bench harness persists memoized results into.
//!
//! A checkpoint file is a small container format:
//!
//! ```text
//! magic     "NWOC"                      4 bytes
//! version   format version              u16 LE
//! salt      code-version salt           u64 LE
//! count     number of sections         u32 LE
//! section*  name-len u16, name bytes,
//!           payload-len u64, crc32 u32,
//!           payload bytes
//! ```
//!
//! Every section carries its own CRC32 so corruption is localized and
//! detected *before* any state is mutated; [`CheckpointReader::from_bytes`]
//! verifies every checksum up front. The `salt` ties a file to the code
//! revision that wrote it — [`SimConfig::fingerprint`]-style Debug-format
//! hashes are stable within a build but not across versions, so a salt
//! mismatch means "regenerate", never "trust".
//!
//! Subsystems participate by implementing [`Checkpointable`]: `save`
//! serializes into a [`SectionWriter`], `restore` reads the same fields
//! back from a [`SectionReader`] in the same order. Restore is strictly
//! validated: every decode failure surfaces as a typed [`CkptError`],
//! never as garbage state or a panic.
//!
//! [`CacheDir`] is the storage layer underneath both `sim --ckpt-out`
//! files and the harness's `NWO_CACHE_DIR` disk memo cache (see
//! `docs/checkpointing.md`).
//!
//! [`SimConfig::fingerprint`]: https://docs.rs/nwo-sim

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// File magic: the first four bytes of every checkpoint.
pub const MAGIC: [u8; 4] = *b"NWOC";

/// Container format version. Bump on incompatible *container* layout
/// changes (section framing, header fields).
pub const FORMAT_VERSION: u16 = 1;

/// Section-payload layout revision. Bump whenever any `Checkpointable`
/// impl changes its field order or encoding; it feeds [`code_salt`] so
/// stale files are rejected instead of misparsed.
const LAYOUT_REV: u64 = 1;

/// The code-version salt baked into every checkpoint written by this
/// build: a hash of the crate version and the payload-layout revision.
/// Files carrying a different salt are rejected with
/// [`CkptError::StaleSalt`].
pub fn code_salt() -> u64 {
    let tag = concat!(env!("CARGO_PKG_VERSION"), "+layout=");
    fnv1a(tag.as_bytes()) ^ LAYOUT_REV.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// FNV-1a over `bytes` — the same cheap stable hash the simulator uses
/// for config fingerprints, exposed here so every layer keys its cache
/// entries identically.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ----------------------------------------------------------------------
// Errors
// ----------------------------------------------------------------------

/// Why a checkpoint could not be read. Every variant is a hard reject:
/// no partial restore ever survives an error.
#[derive(Debug)]
pub enum CkptError {
    /// The file does not start with [`MAGIC`] — not a checkpoint.
    BadMagic,
    /// The container format version is not ours.
    ForeignVersion {
        /// Version found in the file.
        found: u16,
        /// Version this build writes.
        expected: u16,
    },
    /// The file was written by a different code revision.
    StaleSalt {
        /// Salt found in the file.
        found: u64,
        /// Salt this build writes.
        expected: u64,
    },
    /// The file ends before the declared structure does.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A section's payload does not match its stored CRC32.
    CrcMismatch {
        /// Name of the corrupted section.
        section: String,
    },
    /// A section decoded to something structurally impossible.
    Malformed(String),
    /// A required section is absent.
    MissingSection(String),
    /// The checkpoint belongs to a different program or machine shape.
    Mismatch {
        /// Which identity field disagreed.
        what: &'static str,
        /// Value found in the file.
        found: u64,
        /// Value the restoring machine expects.
        expected: u64,
    },
    /// Underlying filesystem error.
    Io(io::Error),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::ForeignVersion { found, expected } => {
                write!(f, "checkpoint format version {found} (expected {expected})")
            }
            CkptError::StaleSalt { found, expected } => write!(
                f,
                "checkpoint written by a different code revision \
                 (salt {found:#018x}, expected {expected:#018x}); regenerate it"
            ),
            CkptError::Truncated { context } => {
                write!(f, "checkpoint truncated while reading {context}")
            }
            CkptError::CrcMismatch { section } => {
                write!(
                    f,
                    "checkpoint section `{section}` is corrupted (CRC mismatch)"
                )
            }
            CkptError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CkptError::MissingSection(name) => {
                write!(f, "checkpoint is missing section `{name}`")
            }
            CkptError::Mismatch {
                what,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {what} mismatch: file has {found:#x}, machine expects {expected:#x}"
            ),
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

// ----------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib polynomial)
// ----------------------------------------------------------------------

/// CRC32 (IEEE) of `bytes` — the per-section integrity check.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

// ----------------------------------------------------------------------
// Section encoding
// ----------------------------------------------------------------------

/// Append-only little-endian encoder for one section's payload.
#[derive(Debug, Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// A fresh, empty payload.
    pub fn new() -> SectionWriter {
        SectionWriter::default()
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` via its IEEE-754 bit pattern (exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// Strictly-validated little-endian decoder over one section's payload.
/// Every read past the end is a typed error, never a panic.
#[derive(Debug)]
pub struct SectionReader {
    buf: Vec<u8>,
    pos: usize,
}

impl SectionReader {
    /// Wraps `bytes` for decoding.
    pub fn new(bytes: Vec<u8>) -> SectionReader {
        SectionReader { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&[u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self, context: &'static str) -> Result<u8, CkptError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is malformed.
    pub fn take_bool(&mut self, context: &'static str) -> Result<bool, CkptError> {
        match self.take_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CkptError::Malformed(format!(
                "{context}: bool byte {other:#x}"
            ))),
        }
    }

    /// Reads a `u16`, little-endian.
    pub fn take_u16(&mut self, context: &'static str) -> Result<u16, CkptError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`, little-endian.
    pub fn take_u32(&mut self, context: &'static str) -> Result<u32, CkptError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`, little-endian.
    pub fn take_u64(&mut self, context: &'static str) -> Result<u64, CkptError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self, context: &'static str) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.take_u64(context)?))
    }

    /// Reads a length-prefixed byte string. `max` bounds the declared
    /// length so a corrupted prefix cannot drive a huge allocation.
    pub fn take_bytes(&mut self, max: u64, context: &'static str) -> Result<Vec<u8>, CkptError> {
        let len = self.take_u64(context)?;
        if len > max || len > self.remaining() as u64 {
            return Err(CkptError::Malformed(format!(
                "{context}: declared length {len} exceeds bounds"
            )));
        }
        Ok(self.take(len as usize, context)?.to_vec())
    }

    /// Reads a length prefix for a repeated group, validated against
    /// `max` entries (corruption guard, not a capacity contract).
    pub fn take_len(&mut self, max: u64, context: &'static str) -> Result<usize, CkptError> {
        let len = self.take_u64(context)?;
        if len > max {
            return Err(CkptError::Malformed(format!(
                "{context}: declared count {len} exceeds limit {max}"
            )));
        }
        Ok(len as usize)
    }

    /// Asserts the payload was consumed exactly — trailing garbage in a
    /// section means the reader and writer disagree on layout.
    pub fn finish(&self, section: &str) -> Result<(), CkptError> {
        if self.remaining() != 0 {
            return Err(CkptError::Malformed(format!(
                "section `{section}` has {} unread trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Save/restore of one subsystem's state into a checkpoint section.
///
/// Contract: `restore` after `save` reproduces the exact state, and
/// `save` after that `restore` produces byte-identical payloads (the
/// property the round-trip test suites assert for every impl). Restore
/// must validate structure against the receiver's configuration and
/// fail with a typed [`CkptError`] rather than accept a shape mismatch.
pub trait Checkpointable {
    /// Serializes this subsystem's state.
    fn save(&self, w: &mut SectionWriter);
    /// Restores state previously written by [`Checkpointable::save`].
    ///
    /// # Errors
    ///
    /// Any [`CkptError`] on truncation, malformed data, or a shape
    /// mismatch with the receiver.
    fn restore(&mut self, r: &mut SectionReader) -> Result<(), CkptError>;
}

// ----------------------------------------------------------------------
// Container
// ----------------------------------------------------------------------

/// Builds a checkpoint file: named sections, each independently
/// CRC-protected, under a versioned + salted header.
#[derive(Debug, Default)]
pub struct CheckpointWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl CheckpointWriter {
    /// An empty container.
    pub fn new() -> CheckpointWriter {
        CheckpointWriter::default()
    }

    /// Adds a raw pre-encoded section.
    pub fn add_section(&mut self, name: &str, payload: Vec<u8>) {
        self.sections.push((name.to_string(), payload));
    }

    /// Serializes `state` into a new section called `name`.
    pub fn write_section(&mut self, name: &str, state: &dyn Checkpointable) {
        let mut w = SectionWriter::new();
        state.save(&mut w);
        self.add_section(name, w.into_bytes());
    }

    /// Encodes the full container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let body: usize = self
            .sections
            .iter()
            .map(|(n, p)| 2 + n.len() + 8 + 4 + p.len())
            .sum();
        let mut out = Vec::with_capacity(4 + 2 + 8 + 4 + body);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&code_salt().to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }
}

/// One parsed section: name plus verified payload.
#[derive(Debug, Clone)]
struct Section {
    name: String,
    payload: Vec<u8>,
}

/// Parses and fully verifies a checkpoint container: magic, version,
/// salt and every section CRC are checked before any payload is handed
/// out.
#[derive(Debug)]
pub struct CheckpointReader {
    salt: u64,
    sections: Vec<Section>,
}

impl CheckpointReader {
    /// Parses `bytes`, verifying the header against this build and every
    /// section against its CRC.
    ///
    /// # Errors
    ///
    /// [`CkptError::BadMagic`], [`CkptError::ForeignVersion`],
    /// [`CkptError::StaleSalt`], [`CkptError::Truncated`] or
    /// [`CkptError::CrcMismatch`].
    pub fn from_bytes(bytes: &[u8]) -> Result<CheckpointReader, CkptError> {
        let reader = Self::parse(bytes, true)?;
        if reader.salt != code_salt() {
            return Err(CkptError::StaleSalt {
                found: reader.salt,
                expected: code_salt(),
            });
        }
        Ok(reader)
    }

    /// Parses the container structure. `verify_crc` controls whether a
    /// CRC mismatch is fatal (restore) or merely reported (inspection).
    fn parse(bytes: &[u8], verify_crc: bool) -> Result<CheckpointReader, CkptError> {
        let mut r = SectionReader::new(bytes.to_vec());
        let magic = r.take(4, "magic")?;
        if magic != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let version = r.take_u16("format version")?;
        if version != FORMAT_VERSION {
            return Err(CkptError::ForeignVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let salt = r.take_u64("code salt")?;
        let count = r.take_u32("section count")?;
        let mut sections = Vec::with_capacity(count.min(1024) as usize);
        for _ in 0..count {
            let name_len = r.take_u16("section name length")? as usize;
            let name_bytes = r.take(name_len, "section name")?.to_vec();
            let name = String::from_utf8(name_bytes)
                .map_err(|_| CkptError::Malformed("section name is not UTF-8".into()))?;
            let payload_len = r.take_u64("section length")?;
            let stored_crc = r.take_u32("section crc")?;
            if payload_len > r.remaining() as u64 {
                return Err(CkptError::Truncated {
                    context: "section payload",
                });
            }
            let payload = r.take(payload_len as usize, "section payload")?.to_vec();
            if verify_crc && crc32(&payload) != stored_crc {
                return Err(CkptError::CrcMismatch { section: name });
            }
            sections.push(Section { name, payload });
        }
        r.finish("container")?;
        Ok(CheckpointReader { salt, sections })
    }

    /// The code salt stored in the file.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Names of the sections present, in file order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    /// Opens the named section for decoding.
    ///
    /// # Errors
    ///
    /// [`CkptError::MissingSection`] when absent.
    pub fn section(&self, name: &str) -> Result<SectionReader, CkptError> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| SectionReader::new(s.payload.clone()))
            .ok_or_else(|| CkptError::MissingSection(name.to_string()))
    }

    /// Restores `state` from the named section, requiring the payload to
    /// be consumed exactly.
    ///
    /// # Errors
    ///
    /// Any [`CkptError`] from the section lookup or the impl's restore.
    pub fn restore_section(
        &self,
        name: &str,
        state: &mut dyn Checkpointable,
    ) -> Result<(), CkptError> {
        let mut r = self.section(name)?;
        state.restore(&mut r)?;
        r.finish(name)
    }
}

// ----------------------------------------------------------------------
// Inspection (`nwo ckpt info`)
// ----------------------------------------------------------------------

/// One section's summary as seen by [`inspect`].
#[derive(Debug, Clone)]
pub struct SectionInfo {
    /// Section name.
    pub name: String,
    /// Payload length in bytes.
    pub len: u64,
    /// Whether the stored CRC matches the payload.
    pub crc_ok: bool,
}

/// A checkpoint's header and table of contents.
#[derive(Debug, Clone)]
pub struct CkptInfo {
    /// Container format version.
    pub version: u16,
    /// Code salt stored in the file.
    pub salt: u64,
    /// True when the salt matches this build (the file is restorable).
    pub salt_current: bool,
    /// Per-section summaries, in file order.
    pub sections: Vec<SectionInfo>,
}

/// Summarizes a checkpoint without restoring it. Unlike
/// [`CheckpointReader::from_bytes`] this tolerates a stale salt and
/// corrupted payloads (both are *reported*, not fatal), so `ckpt info`
/// can diagnose exactly the files restore rejects. Bad magic, a foreign
/// format version and truncation remain errors — there is nothing
/// trustworthy to print.
///
/// # Errors
///
/// [`CkptError::BadMagic`], [`CkptError::ForeignVersion`] or
/// [`CkptError::Truncated`].
pub fn inspect(bytes: &[u8]) -> Result<CkptInfo, CkptError> {
    let parsed = CheckpointReader::parse(bytes, false)?;
    let sections = parsed
        .sections
        .iter()
        .map(|s| {
            // Re-derive the stored CRC from the raw bytes: parse() kept
            // payloads, so recompute against the file copy.
            SectionInfo {
                name: s.name.clone(),
                len: s.payload.len() as u64,
                crc_ok: true, // patched below from the raw scan
            }
        })
        .collect::<Vec<_>>();
    // Second pass over the raw container to recover each stored CRC
    // (parse() drops it); cheap relative to restore.
    let mut infos = sections;
    let mut r = SectionReader::new(bytes.to_vec());
    let _ = r.take(4 + 2 + 8, "header")?;
    let count = r.take_u32("section count")?;
    for i in 0..count as usize {
        let name_len = r.take_u16("section name length")? as usize;
        let _ = r.take(name_len, "section name")?;
        let payload_len = r.take_u64("section length")?;
        let stored_crc = r.take_u32("section crc")?;
        let payload = r.take(payload_len as usize, "section payload")?;
        if let Some(info) = infos.get_mut(i) {
            info.crc_ok = crc32(payload) == stored_crc;
        }
    }
    Ok(CkptInfo {
        version: FORMAT_VERSION,
        salt: parsed.salt,
        salt_current: parsed.salt == code_salt(),
        sections: infos,
    })
}

// ----------------------------------------------------------------------
// Disk blob cache
// ----------------------------------------------------------------------

/// A directory of keyed binary blobs — the storage layer under both
/// checkpoint files and the harness's disk-persistent memo cache.
///
/// Keys are sanitized into file names (`[A-Za-z0-9._-]`, everything else
/// becomes `_`) with an FNV suffix so distinct keys never collide after
/// sanitization. Stores are atomic (temp file + rename), so a crashed
/// writer never leaves a torn blob — and a torn blob would be caught by
/// the per-section CRCs anyway. [`CacheDir::scrub`] walks the whole
/// directory verifying exactly that, quarantining damage and reaping
/// temp files orphaned by killed writers (`nwo cache scrub`).
#[derive(Debug, Clone)]
pub struct CacheDir {
    root: PathBuf,
    /// Remaining injected transient I/O failures (robustness testing).
    /// `Clone` shares the budget, so every handle to the same cache
    /// draws from one fault counter.
    inject: Option<std::sync::Arc<std::sync::atomic::AtomicU64>>,
}

impl CacheDir {
    /// A cache rooted at `root` (created lazily on first store).
    pub fn new(root: impl Into<PathBuf>) -> CacheDir {
        CacheDir {
            root: root.into(),
            inject: None,
        }
    }

    /// A cache that fails its next `faults` load/store calls with a
    /// transient [`CkptError::Io`] before behaving normally — a
    /// deterministic stand-in for flaky network filesystems, used to
    /// exercise the bench runner's retry path.
    pub fn with_injected_faults(root: impl Into<PathBuf>, faults: u64) -> CacheDir {
        CacheDir {
            root: root.into(),
            inject: Some(std::sync::Arc::new(std::sync::atomic::AtomicU64::new(
                faults,
            ))),
        }
    }

    /// Reads the cache location from environment variable `var`; `None`
    /// when unset or empty (caching off by default). When
    /// `NWO_CACHE_FAULTS` is set to a positive integer, that many
    /// initial load/store calls fail with an injected transient I/O
    /// error (see [`CacheDir::with_injected_faults`]).
    pub fn from_env(var: &str) -> Option<CacheDir> {
        let root = match std::env::var_os(var) {
            Some(v) if !v.is_empty() => PathBuf::from(v),
            _ => return None,
        };
        let faults = std::env::var("NWO_CACHE_FAULTS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        Some(if faults > 0 {
            CacheDir::with_injected_faults(root, faults)
        } else {
            CacheDir::new(root)
        })
    }

    /// Consumes one injected fault if any remain.
    fn injected_failure(&self, op: &str) -> Result<(), CkptError> {
        if let Some(budget) = &self.inject {
            use std::sync::atomic::Ordering;
            // Decrement-if-positive without underflowing concurrent takers.
            let mut left = budget.load(Ordering::Relaxed);
            while left > 0 {
                match budget.compare_exchange(left, left - 1, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => {
                        return Err(CkptError::Io(io::Error::other(format!(
                            "injected transient I/O fault during {op}"
                        ))));
                    }
                    Err(now) => left = now,
                }
            }
        }
        Ok(())
    }

    /// The directory blobs live in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file a key maps to.
    pub fn path_for(&self, key: &str) -> PathBuf {
        let sanitized: String = key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.root
            .join(format!("{sanitized}-{:016x}.ckpt", fnv1a(key.as_bytes())))
    }

    /// Loads the blob stored under `key`, or `None` when absent.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] for filesystem failures other than not-found.
    pub fn load(&self, key: &str) -> Result<Option<Vec<u8>>, CkptError> {
        self.injected_failure("load")?;
        match std::fs::read(self.path_for(key)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(CkptError::Io(e)),
        }
    }

    /// Atomically stores `bytes` under `key` (temp file + rename).
    ///
    /// The temp name carries the pid *and* a process-wide sequence
    /// number: two threads storing the same key concurrently must not
    /// share a temp path, or one writer's rename can publish the other
    /// writer's half-written bytes — exactly the torn blob the atomic
    /// dance exists to prevent. A failed rename removes its temp file
    /// so crashes do not strand orphans (and [`CacheDir::scrub`] reaps
    /// any that a hard kill leaves behind).
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] for filesystem failures.
    pub fn store(&self, key: &str, bytes: &[u8]) -> Result<(), CkptError> {
        static STORE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        self.injected_failure("store")?;
        std::fs::create_dir_all(&self.root)?;
        let dest = self.path_for(key);
        let seq = STORE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dest.with_extension(format!("tmp.{}.{seq}", std::process::id()));
        std::fs::write(&tmp, bytes)?;
        if let Err(e) = std::fs::rename(&tmp, &dest) {
            let _ = std::fs::remove_file(&tmp);
            return Err(CkptError::Io(e));
        }
        Ok(())
    }

    /// Walks every blob in the cache, verifying container structure,
    /// code salt and per-section CRCs, optionally quarantining corrupt
    /// blobs and reaping orphaned temp files. See [`ScrubReport`] for
    /// what comes back; the walk order (and therefore the report) is
    /// deterministic — entries are sorted by file name.
    ///
    /// A missing cache directory is an empty (clean) report, matching
    /// `load`'s treatment of absent blobs.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] for filesystem failures while walking or
    /// renaming — a *corrupt blob* is never an error, it is the thing
    /// being reported.
    pub fn scrub(&self, options: &ScrubOptions) -> Result<ScrubReport, CkptError> {
        let mut report = ScrubReport::default();
        let dir = match std::fs::read_dir(&self.root) {
            Ok(dir) => dir,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
            Err(e) => return Err(CkptError::Io(e)),
        };
        let mut names: Vec<String> = Vec::new();
        for entry in dir {
            let entry = entry.map_err(CkptError::Io)?;
            if entry.file_type().map_err(CkptError::Io)?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        names.sort();
        for name in names {
            let path = self.root.join(&name);
            if name.ends_with(".quarantined") {
                report.prior_quarantined += 1;
                continue;
            }
            if name.contains(".tmp.") {
                // An orphaned temp file: a writer died between write
                // and rename. Never trustworthy, never referenced.
                if options.reap_tmp {
                    std::fs::remove_file(&path).map_err(CkptError::Io)?;
                }
                report.reaped_tmp.push(name);
                continue;
            }
            if !name.ends_with(".ckpt") {
                continue;
            }
            let bytes = std::fs::read(&path).map_err(CkptError::Io)?;
            let health = blob_health(&bytes);
            let mut quarantined = false;
            if matches!(health, BlobHealth::Corrupt(_)) && options.quarantine {
                let mut target = path.clone().into_os_string();
                target.push(".quarantined");
                std::fs::rename(&path, &target).map_err(CkptError::Io)?;
                quarantined = true;
            }
            report.entries.push(ScrubEntry {
                file: name,
                health,
                quarantined,
            });
        }
        Ok(report)
    }
}

/// What [`CacheDir::scrub`] should do beyond reporting.
#[derive(Debug, Clone, Copy)]
pub struct ScrubOptions {
    /// Rename corrupt blobs to `<name>.quarantined` so the cache never
    /// serves them again (a later identical request re-simulates and
    /// re-stores a healthy blob).
    pub quarantine: bool,
    /// Delete orphaned `*.tmp.*` files left by writers that died
    /// between write and rename.
    pub reap_tmp: bool,
}

impl Default for ScrubOptions {
    fn default() -> ScrubOptions {
        ScrubOptions {
            quarantine: true,
            reap_tmp: true,
        }
    }
}

/// One blob's verdict from a scrub walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobHealth {
    /// Structure, salt and every section CRC check out.
    Ok,
    /// The container is damaged (bad magic, foreign version,
    /// truncation, malformed framing, or a section CRC mismatch) —
    /// carries the diagnosis. These blobs are quarantine candidates.
    Corrupt(String),
    /// Structurally sound but written by a different code revision
    /// (carries the stale salt). Not damage — the blob is merely
    /// unusable by this build, and is reported rather than touched.
    Stale(u64),
}

/// One scrubbed blob.
#[derive(Debug, Clone)]
pub struct ScrubEntry {
    /// The blob's file name inside the cache directory.
    pub file: String,
    /// The verdict.
    pub health: BlobHealth,
    /// Whether this scrub renamed it to `.quarantined`.
    pub quarantined: bool,
}

/// Everything one [`CacheDir::scrub`] walk found, in deterministic
/// (name-sorted) order.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Every `.ckpt` blob examined.
    pub entries: Vec<ScrubEntry>,
    /// Orphaned temp files found (and deleted, when
    /// [`ScrubOptions::reap_tmp`] was set).
    pub reaped_tmp: Vec<String>,
    /// Blobs already quarantined by an earlier scrub.
    pub prior_quarantined: u64,
}

impl ScrubReport {
    /// Healthy blobs.
    pub fn ok(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.health == BlobHealth::Ok)
            .count()
    }

    /// Corrupt blobs found by this walk.
    pub fn corrupt(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.health, BlobHealth::Corrupt(_)))
            .count()
    }

    /// Stale-salt blobs found by this walk.
    pub fn stale(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.health, BlobHealth::Stale(_)))
            .count()
    }

    /// True when nothing was corrupt, stale or orphaned.
    pub fn clean(&self) -> bool {
        self.corrupt() == 0 && self.stale() == 0 && self.reaped_tmp.is_empty()
    }
}

/// Classifies one blob's bytes for [`CacheDir::scrub`], reusing the
/// tolerant [`inspect`] parse: structural damage and CRC mismatches
/// are [`BlobHealth::Corrupt`], a foreign code salt is
/// [`BlobHealth::Stale`].
fn blob_health(bytes: &[u8]) -> BlobHealth {
    match inspect(bytes) {
        Err(e) => BlobHealth::Corrupt(e.to_string()),
        Ok(info) => {
            if let Some(bad) = info.sections.iter().find(|s| !s.crc_ok) {
                BlobHealth::Corrupt(format!("section `{}` CRC mismatch", bad.name))
            } else if !info.salt_current {
                BlobHealth::Stale(info.salt)
            } else {
                BlobHealth::Ok
            }
        }
    }
}

/// Runs a cache I/O operation up to three times, backing off ~10ms then
/// ~40ms between attempts. Shared filesystems fail transiently; a cache
/// miss costs a full re-simulation, so a couple of cheap retries pay for
/// themselves many times over. The final error is returned unchanged.
///
/// Shared by every [`CacheDir`] consumer — the bench runner's disk
/// result cache, its warm-checkpoint spill and the `nwo-serve` daemon's
/// server-side cache I/O all retry with the same policy.
///
/// # Errors
///
/// The last [`CkptError`] once all attempts are exhausted.
pub fn with_retry<T>(mut op: impl FnMut() -> Result<T, CkptError>) -> Result<T, CkptError> {
    let mut delay = std::time::Duration::from_millis(10);
    let mut last = None;
    for attempt in 0..3 {
        if attempt > 0 {
            std::thread::sleep(delay);
            delay *= 4;
        }
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("retry loop ran at least once"))
}

/// Saves checkpoint `bytes` to `path` (convenience over `fs::write` with
/// a typed error).
///
/// # Errors
///
/// [`CkptError::Io`] on filesystem failure.
pub fn save_file(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    std::fs::write(path, bytes).map_err(CkptError::Io)
}

/// Loads a checkpoint file.
///
/// # Errors
///
/// [`CkptError::Io`] on filesystem failure.
pub fn load_file(path: &Path) -> Result<Vec<u8>, CkptError> {
    std::fs::read(path).map_err(CkptError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy subsystem exercising every scalar type.
    #[derive(Debug, Default, Clone, PartialEq)]
    struct Toy {
        a: u64,
        b: f64,
        c: bool,
        d: Vec<u8>,
    }

    impl Checkpointable for Toy {
        fn save(&self, w: &mut SectionWriter) {
            w.put_u64(self.a);
            w.put_f64(self.b);
            w.put_bool(self.c);
            w.put_bytes(&self.d);
        }

        fn restore(&mut self, r: &mut SectionReader) -> Result<(), CkptError> {
            self.a = r.take_u64("toy.a")?;
            self.b = r.take_f64("toy.b")?;
            self.c = r.take_bool("toy.c")?;
            self.d = r.take_bytes(1 << 20, "toy.d")?;
            Ok(())
        }
    }

    fn sample() -> Vec<u8> {
        let toy = Toy {
            a: 0xdead_beef_cafe_f00d,
            b: -1.5e300,
            c: true,
            d: vec![1, 2, 3, 255],
        };
        let mut w = CheckpointWriter::new();
        w.write_section("toy", &toy);
        w.write_section("empty", &SectionWriterless);
        w.to_bytes()
    }

    /// A zero-byte section participant.
    struct SectionWriterless;
    impl Checkpointable for SectionWriterless {
        fn save(&self, _w: &mut SectionWriter) {}
        fn restore(&mut self, _r: &mut SectionReader) -> Result<(), CkptError> {
            Ok(())
        }
    }

    #[test]
    fn round_trip_restores_exact_state_and_rewrites_identically() {
        let bytes = sample();
        let reader = CheckpointReader::from_bytes(&bytes).unwrap();
        let mut toy = Toy::default();
        reader.restore_section("toy", &mut toy).unwrap();
        assert_eq!(toy.a, 0xdead_beef_cafe_f00d);
        assert_eq!(toy.b, -1.5e300);
        assert!(toy.c);
        assert_eq!(toy.d, vec![1, 2, 3, 255]);
        // save → restore → save is byte-identical.
        let mut w = CheckpointWriter::new();
        w.write_section("toy", &toy);
        w.write_section("empty", &SectionWriterless);
        assert_eq!(w.to_bytes(), bytes);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(
            CheckpointReader::from_bytes(&bytes),
            Err(CkptError::BadMagic)
        ));
        assert!(matches!(inspect(&bytes), Err(CkptError::BadMagic)));
    }

    #[test]
    fn foreign_version_is_rejected() {
        let mut bytes = sample();
        bytes[4] = bytes[4].wrapping_add(1);
        let err = CheckpointReader::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, CkptError::ForeignVersion { .. }));
    }

    #[test]
    fn stale_salt_is_rejected_on_restore_but_tolerated_by_inspect() {
        let mut bytes = sample();
        bytes[6] ^= 0xff; // flip a salt byte
        let err = CheckpointReader::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, CkptError::StaleSalt { .. }));
        let info = inspect(&bytes).unwrap();
        assert!(!info.salt_current);
        assert_eq!(info.sections.len(), 2);
        assert!(info.sections.iter().all(|s| s.crc_ok));
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let truncated = &bytes[..cut];
            let err = CheckpointReader::from_bytes(truncated).unwrap_err();
            assert!(
                matches!(err, CkptError::Truncated { .. } | CkptError::Malformed(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn flipping_any_payload_byte_is_a_crc_mismatch() {
        let bytes = sample();
        // The toy payload occupies the tail before the empty section's
        // framing; flip a byte inside it.
        let header = 4 + 2 + 8 + 4;
        let frame = 2 + "toy".len() + 8 + 4;
        let payload_start = header + frame;
        let mut corrupted = bytes.clone();
        corrupted[payload_start + 5] ^= 0x40;
        let err = CheckpointReader::from_bytes(&corrupted).unwrap_err();
        assert!(
            matches!(&err, CkptError::CrcMismatch { section } if section == "toy"),
            "got {err:?}"
        );
        // inspect reports it instead of failing.
        let info = inspect(&corrupted).unwrap();
        assert!(!info.sections[0].crc_ok);
        assert!(info.sections[1].crc_ok);
    }

    #[test]
    fn missing_sections_and_trailing_bytes_are_typed_errors() {
        let bytes = sample();
        let reader = CheckpointReader::from_bytes(&bytes).unwrap();
        let mut toy = Toy::default();
        assert!(matches!(
            reader.restore_section("nope", &mut toy),
            Err(CkptError::MissingSection(_))
        ));
        // Restoring the empty section into Toy hits truncation.
        assert!(matches!(
            reader.restore_section("empty", &mut toy),
            Err(CkptError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_declared_lengths_are_malformed_not_oom() {
        let mut w = SectionWriter::new();
        w.put_u64(u64::MAX); // an absurd length prefix
        let mut r = SectionReader::new(w.into_bytes());
        assert!(matches!(
            r.take_bytes(1 << 30, "blob"),
            Err(CkptError::Malformed(_))
        ));
        let mut w = SectionWriter::new();
        w.put_u64(10_000);
        let mut r = SectionReader::new(w.into_bytes());
        assert!(matches!(
            r.take_len(100, "count"),
            Err(CkptError::Malformed(_))
        ));
    }

    #[test]
    fn bool_bytes_are_validated() {
        let mut r = SectionReader::new(vec![7]);
        assert!(matches!(r.take_bool("flag"), Err(CkptError::Malformed(_))));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC32 of "123456789" is 0xcbf43926.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn cache_dir_stores_and_loads_blobs_atomically() {
        let root = std::env::temp_dir().join(format!("nwo-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = CacheDir::new(&root);
        assert_eq!(cache.load("missing").unwrap(), None);
        cache.store("report/compress s0 fp=1", b"hello").unwrap();
        assert_eq!(
            cache.load("report/compress s0 fp=1").unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        // Distinct keys that sanitize identically still map to distinct
        // files thanks to the hash suffix.
        let a = cache.path_for("a/b");
        let b = cache.path_for("a_b");
        assert_ne!(a, b);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_faults_are_transient_and_shared_across_clones() {
        let root = std::env::temp_dir().join(format!("nwo-ckpt-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = CacheDir::with_injected_faults(&root, 2);
        let clone = cache.clone();
        // The budget is shared: one fault drawn on each handle.
        assert!(matches!(cache.store("k", b"v"), Err(CkptError::Io(_))));
        assert!(matches!(clone.load("k"), Err(CkptError::Io(_))));
        // Exhausted budget: operations succeed from now on.
        cache.store("k", b"v").unwrap();
        assert_eq!(clone.load("k").unwrap().as_deref(), Some(&b"v"[..]));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn with_retry_absorbs_transient_faults_and_surfaces_persistent_ones() {
        let root = std::env::temp_dir().join(format!("nwo-ckpt-retry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        // Two injected faults: the third attempt of one operation wins.
        let cache = CacheDir::with_injected_faults(&root, 2);
        with_retry(|| cache.store("k", b"v")).expect("retries through 2 faults");
        assert_eq!(cache.load("k").unwrap().as_deref(), Some(&b"v"[..]));
        // More faults than one operation's attempts: the final error
        // surfaces unchanged.
        let flaky = CacheDir::with_injected_faults(&root, 99);
        assert!(matches!(
            with_retry(|| flaky.load("k")),
            Err(CkptError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn from_env_respects_unset_and_empty() {
        std::env::remove_var("NWO_CKPT_TEST_DIR");
        assert!(CacheDir::from_env("NWO_CKPT_TEST_DIR").is_none());
        std::env::set_var("NWO_CKPT_TEST_DIR", "");
        assert!(CacheDir::from_env("NWO_CKPT_TEST_DIR").is_none());
        std::env::set_var("NWO_CKPT_TEST_DIR", "/tmp/x");
        assert_eq!(
            CacheDir::from_env("NWO_CKPT_TEST_DIR").unwrap().root(),
            Path::new("/tmp/x")
        );
        std::env::remove_var("NWO_CKPT_TEST_DIR");
    }

    #[test]
    fn code_salt_is_stable_within_a_build() {
        assert_eq!(code_salt(), code_salt());
        assert_ne!(code_salt(), 0);
    }
}
