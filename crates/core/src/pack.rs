//! Operation-packing rules (paper Section 5).
//!
//! Two (or more) ready instructions can share one 64-bit ALU when they
//! perform the same operation and their operands are narrow — the ALU's
//! multimedia subword hardware cuts the carry chain at 16-bit boundaries
//! (Figure 8) and extra carry-out lines on the result bus preserve
//! exactness.
//!
//! This module defines *which* opcodes may pack, *when* a pair of width
//! tags permits it, and a bit-faithful model of the subword lane
//! ([`slot_result`]) used to prove the packed execution architecturally
//! exact. Section 5.3's *replay packing* — speculatively packing when only
//! one operand is narrow, squashing on carry overflow — is modelled by
//! [`replay_candidate`] / [`replay_mispredicts`].

use crate::width::{is_narrow, WidthTag};
use nwo_isa::{alu_result, Opcode};

/// Subword-compatible operation families.
///
/// The paper packs "arithmetic, logical, and shift operations"
/// (Section 5.1). We exclude left shifts from exact packing because a
/// 16-bit lane cannot hold the up-to-31-bit result of shifting a narrow
/// value left; multiplies are excluded as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackKind {
    /// Add/subtract (quadword and longword) and `lda` address arithmetic.
    AddSub,
    /// Compares (produce 0/1, always lane-exact).
    Compare,
    /// Bit-wise logical operations and sign extensions.
    Logic,
    /// Right shifts (`srl` requires a zero-detected first operand).
    ShiftRight,
}

/// The packing family of an opcode, or `None` if it can never pack.
pub fn pack_kind(op: Opcode) -> Option<PackKind> {
    use Opcode::*;
    match op {
        Addq | Subq | Addl | Subl | Lda => Some(PackKind::AddSub),
        Cmpeq | Cmplt | Cmple | Cmpult | Cmpule => Some(PackKind::Compare),
        And | Bis | Xor | Bic | Ornot | Eqv | Sextb | Sextw => Some(PackKind::Logic),
        Srl | Sra => Some(PackKind::ShiftRight),
        _ => None,
    }
}

/// Static packing policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackConfig {
    /// Maximum operations sharing one 64-bit ALU (a 64-bit datapath has
    /// four 16-bit lanes; the paper's Figure 8 shows two).
    pub degree: usize,
    /// Pack operands detected narrow by the *ones*-detect (negative
    /// values). The paper notes negative numbers "add additional
    /// complexity to the issue logic"; turning this off models the
    /// simpler zero-detect-only issue logic.
    pub allow_negative: bool,
    /// Enable Section 5.3 replay packing (one wide operand, squash on
    /// carry-out).
    pub replay: bool,
    /// Extra cycles before a squashed replay-packed instruction re-issues
    /// full-width (the replay-trap penalty).
    pub replay_penalty: u64,
    /// Gate replay speculation with a per-PC 2-bit confidence counter:
    /// instructions whose low-16-bit carries keep rippling (accumulators
    /// over wide values) stop being speculated on, while address
    /// arithmetic stays confident. An extension beyond the paper, which
    /// assumes carries are "relatively infrequent".
    pub replay_confidence: bool,
}

impl Default for PackConfig {
    /// Four-lane packing with negative-operand support and no replay.
    fn default() -> Self {
        PackConfig {
            degree: 4,
            allow_negative: true,
            replay: false,
            replay_penalty: 3,
            replay_confidence: true,
        }
    }
}

impl PackConfig {
    /// The paper's replay-packing configuration (Section 5.3).
    pub fn with_replay() -> Self {
        PackConfig {
            replay: true,
            ..PackConfig::default()
        }
    }
}

/// True when an instruction with operand tags `(a, b)` qualifies for
/// exact (non-replay) packing.
///
/// Requirements (Section 5.2): the opcode is subword-compatible and both
/// operands are known narrow at 16 bits. `srl` additionally requires a
/// zero-detected (non-negative) shiftee: shifting zeros into a lane whose
/// reconstruction would prepend ones is not exact.
pub fn can_pack(op: Opcode, a: WidthTag, b: WidthTag, config: &PackConfig) -> bool {
    let Some(kind) = pack_kind(op) else {
        return false;
    };
    let narrow = |t: WidthTag| t.known && t.narrow16 && (config.allow_negative || !t.negative);
    if !narrow(a) || !narrow(b) {
        return false;
    }
    match kind {
        PackKind::ShiftRight if op == Opcode::Srl => !a.negative,
        _ => true,
    }
}

/// Reconstructs a narrow16 value from its 16-bit lane and sign context.
#[inline]
fn lane_value(lo: u16, negative: bool) -> i64 {
    lo as i64 - if negative { 1 << 16 } else { 0 }
}

/// Computes what a 16-bit subword lane (with sign context and carry-out
/// lines) produces for `op` on two narrow16 operands.
///
/// This models the hardware of Figure 8 literally: each lane sees only
/// the low 16 bits of each operand plus the zero48/ones48 detect
/// signals; arithmetic results travel on 17 bits plus the extra
/// carry-out line, logical upper bits are recomputed from the detect
/// signals.
///
/// Under [`can_pack`]'s preconditions this equals [`alu_result`] —
/// packing is architecturally exact. Verified by unit and property tests.
///
/// # Panics
///
/// Debug-panics if an operand violates the narrow16 precondition or the
/// opcode is not packable.
pub fn slot_result(op: Opcode, a: u64, b: u64) -> u64 {
    debug_assert!(is_narrow(a, 16), "operand a {a:#x} is not narrow16");
    debug_assert!(is_narrow(b, 16), "operand b {b:#x} is not narrow16");
    let (a_lo, a_neg) = (a as u16, (a as i64) < 0);
    let (b_lo, b_neg) = (b as u16, (b as i64) < 0);
    let av = lane_value(a_lo, a_neg);
    let bv = lane_value(b_lo, b_neg);
    match pack_kind(op) {
        Some(PackKind::AddSub) => {
            // 16-bit adder + carry-out lines: the 18-bit exact sum.
            let sum = match op {
                Opcode::Subq | Opcode::Subl => av - bv,
                _ => av + bv,
            };
            // Longword forms sign-extend from 32 bits; an 18-bit value is
            // unchanged.
            sum as u64
        }
        Some(PackKind::Compare) => {
            let (au, bu) = (av as u64, bv as u64);
            let r = match op {
                Opcode::Cmpeq => av == bv,
                Opcode::Cmplt => av < bv,
                Opcode::Cmple => av <= bv,
                Opcode::Cmpult => au < bu,
                Opcode::Cmpule => au <= bu,
                _ => unreachable!(),
            };
            r as u64
        }
        Some(PackKind::Logic) => {
            let mask = |neg: bool| if neg { u64::MAX } else { 0 };
            let (ua, ub) = (mask(a_neg), mask(b_neg));
            // The upper 48 result bits are recomputed from the two detect
            // signals alone; keep only those bits of the context term.
            let hi = |x: u64| x & (u64::MAX << 16);
            match op {
                Opcode::And => ((a_lo & b_lo) as u64) | hi(ua & ub),
                Opcode::Bis => ((a_lo | b_lo) as u64) | hi(ua | ub),
                Opcode::Xor => ((a_lo ^ b_lo) as u64) | hi(ua ^ ub),
                Opcode::Bic => ((a_lo & !b_lo) as u64) | hi(ua & !ub),
                Opcode::Ornot => ((a_lo | !b_lo) as u64) | hi(ua | !ub),
                Opcode::Eqv => ((a_lo ^ !b_lo) as u64) | hi(ua ^ !ub),
                Opcode::Sextb => b_lo as u8 as i8 as i64 as u64,
                Opcode::Sextw => b_lo as i16 as i64 as u64,
                _ => unreachable!(),
            }
        }
        Some(PackKind::ShiftRight) => {
            let amount = (bv as u64) & 63;
            match op {
                Opcode::Srl => {
                    debug_assert!(!a_neg, "srl lane requires a zero-detected shiftee");
                    (a_lo as u64) >> amount
                }
                Opcode::Sra => ((av) >> amount.min(63)) as u64,
                _ => unreachable!(),
            }
        }
        None => {
            debug_assert!(false, "slot_result on unpackable opcode {op}");
            alu_result(op, a, b)
        }
    }
}

/// Which operand is the wide one in a replay-packed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WideOperand {
    /// Operand `a` is wide; its high 48 bits are muxed onto the result.
    A,
    /// Operand `b` is wide (commutative adds only).
    B,
}

/// Tests whether an instruction qualifies for Section 5.3 replay packing:
/// exactly one operand known-narrow16, the other wide (or unknown), on a
/// quadword add/subtract.
///
/// For subtraction only a wide *minuend* qualifies: the high bits of
/// `a - b` with wide `b` are not the high bits of either source, so the
/// mux of Figure 9 has nothing correct to forward.
pub fn replay_candidate(op: Opcode, a: WidthTag, b: WidthTag) -> Option<WideOperand> {
    if !matches!(op, Opcode::Addq | Opcode::Subq | Opcode::Lda) {
        return None;
    }
    let a_narrow = a.known && a.narrow16;
    let b_narrow = b.known && b.narrow16;
    match (a_narrow, b_narrow) {
        (false, true) => Some(WideOperand::A),
        (true, false) if op != Opcode::Subq => Some(WideOperand::B),
        _ => None,
    }
}

/// The result the replay-packed lane *predicts*: the wide operand's high
/// 48 bits concatenated with the lane's low-16 result.
pub fn replay_predicted(op: Opcode, a: u64, b: u64, wide: WideOperand) -> u64 {
    let wide_value = match wide {
        WideOperand::A => a,
        WideOperand::B => b,
    };
    let low = alu_result(op, a, b) & 0xffff;
    (wide_value & !0xffff) | low
}

/// True when the replay-packed execution would produce a wrong result —
/// the carry (or borrow) rippled past bit 15 and the instruction must be
/// squashed and re-issued full-width ("replay traps", Section 5.3).
///
/// # Example
///
/// ```
/// use nwo_core::{replay_mispredicts, WideOperand};
/// use nwo_isa::Opcode;
///
/// // 0x1_0000_0000 + 3: no carry out of the low 16 bits.
/// assert!(!replay_mispredicts(Opcode::Addq, 0x1_0000_0000, 3, WideOperand::A));
/// // 0x1_0000_ffff + 3 carries into bit 16: must replay.
/// assert!(replay_mispredicts(Opcode::Addq, 0x1_0000_ffff, 3, WideOperand::A));
/// ```
pub fn replay_mispredicts(op: Opcode, a: u64, b: u64, wide: WideOperand) -> bool {
    replay_predicted(op, a, b, wide) != alu_result(op, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: i64) -> WidthTag {
        WidthTag::of(v as u64)
    }

    #[test]
    fn pack_kinds() {
        assert_eq!(pack_kind(Opcode::Addq), Some(PackKind::AddSub));
        assert_eq!(pack_kind(Opcode::Lda), Some(PackKind::AddSub));
        assert_eq!(pack_kind(Opcode::Cmpeq), Some(PackKind::Compare));
        assert_eq!(pack_kind(Opcode::Xor), Some(PackKind::Logic));
        assert_eq!(pack_kind(Opcode::Sra), Some(PackKind::ShiftRight));
        assert_eq!(pack_kind(Opcode::Sll), None, "left shifts never pack");
        assert_eq!(pack_kind(Opcode::Mulq), None, "multiplies never pack");
        assert_eq!(pack_kind(Opcode::Ldq), None);
        assert_eq!(pack_kind(Opcode::Beq), None);
    }

    #[test]
    fn can_pack_requires_both_narrow() {
        let cfg = PackConfig::default();
        assert!(can_pack(Opcode::Addq, t(17), t(2), &cfg));
        assert!(!can_pack(Opcode::Addq, t(17), t(1 << 20), &cfg));
        assert!(!can_pack(Opcode::Addq, t(1 << 20), t(17), &cfg));
    }

    #[test]
    fn can_pack_unknown_tags_never_pack() {
        let cfg = PackConfig::default();
        assert!(!can_pack(Opcode::Addq, WidthTag::unknown(), t(2), &cfg));
    }

    #[test]
    fn negative_policy_respected() {
        let strict = PackConfig {
            allow_negative: false,
            ..PackConfig::default()
        };
        let lax = PackConfig::default();
        assert!(can_pack(Opcode::Addq, t(-5), t(3), &lax));
        assert!(!can_pack(Opcode::Addq, t(-5), t(3), &strict));
    }

    #[test]
    fn srl_requires_nonnegative_shiftee() {
        let cfg = PackConfig::default();
        assert!(can_pack(Opcode::Srl, t(100), t(3), &cfg));
        assert!(!can_pack(Opcode::Srl, t(-100), t(3), &cfg));
        // sra handles negatives fine.
        assert!(can_pack(Opcode::Sra, t(-100), t(3), &cfg));
    }

    /// The central exactness claim: under `can_pack` preconditions the
    /// lane computes exactly the full-width result.
    #[test]
    fn slot_matches_alu_exhaustive_boundaries() {
        let cfg = PackConfig::default();
        let interesting: Vec<i64> = vec![
            -65536, -65535, -32769, -32768, -32767, -256, -17, -2, -1, 0, 1, 2, 15, 16, 17, 255,
            256, 32767, 32768, 65534, 65535,
        ];
        for &op in &[
            Opcode::Addq,
            Opcode::Subq,
            Opcode::Addl,
            Opcode::Subl,
            Opcode::Lda,
            Opcode::Cmpeq,
            Opcode::Cmplt,
            Opcode::Cmple,
            Opcode::Cmpult,
            Opcode::Cmpule,
            Opcode::And,
            Opcode::Bis,
            Opcode::Xor,
            Opcode::Bic,
            Opcode::Ornot,
            Opcode::Eqv,
            Opcode::Sextb,
            Opcode::Sextw,
            Opcode::Srl,
            Opcode::Sra,
        ] {
            for &a in &interesting {
                for &b in &interesting {
                    let (ua, ub) = (a as u64, b as u64);
                    if !can_pack(op, WidthTag::of(ua), WidthTag::of(ub), &cfg) {
                        continue;
                    }
                    assert_eq!(
                        slot_result(op, ua, ub),
                        alu_result(op, ua, ub),
                        "lane mismatch for {op} {a} {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn replay_candidate_shapes() {
        let wide = t(1 << 40);
        let narrow = t(7);
        assert_eq!(
            replay_candidate(Opcode::Addq, wide, narrow),
            Some(WideOperand::A)
        );
        assert_eq!(
            replay_candidate(Opcode::Addq, narrow, wide),
            Some(WideOperand::B)
        );
        // Subtraction: only a wide minuend works.
        assert_eq!(
            replay_candidate(Opcode::Subq, wide, narrow),
            Some(WideOperand::A)
        );
        assert_eq!(replay_candidate(Opcode::Subq, narrow, wide), None);
        // Both narrow -> exact packing, not replay.
        assert_eq!(replay_candidate(Opcode::Addq, narrow, narrow), None);
        // Both wide -> nothing.
        assert_eq!(replay_candidate(Opcode::Addq, wide, wide), None);
        // Non-add/sub ops never replay-pack.
        assert_eq!(replay_candidate(Opcode::And, wide, narrow), None);
        assert_eq!(replay_candidate(Opcode::Addl, wide, narrow), None);
    }

    #[test]
    fn replay_prediction_correct_without_carry() {
        let a = 0x1_2345_0010u64;
        let b = 5u64;
        assert!(!replay_mispredicts(Opcode::Addq, a, b, WideOperand::A));
        assert_eq!(replay_predicted(Opcode::Addq, a, b, WideOperand::A), a + b);
    }

    #[test]
    fn replay_detects_carry_ripple() {
        let a = 0x1_2345_ffffu64;
        assert!(replay_mispredicts(Opcode::Addq, a, 1, WideOperand::A));
    }

    #[test]
    fn replay_detects_borrow() {
        // 0x1_2345_0000 - 1 borrows from bit 16.
        let a = 0x1_2345_0000u64;
        assert!(replay_mispredicts(Opcode::Subq, a, 1, WideOperand::A));
        assert!(!replay_mispredicts(Opcode::Subq, a + 8, 1, WideOperand::A));
    }

    #[test]
    fn replay_carry_characterisation() {
        // For addq with non-negative narrow b and wide a, a mispredict
        // happens exactly when the low-16 add carries out.
        for a in [0x1_0000_0000u64, 0xdead_0000_8000, 0x7fff_ffff_0000] {
            for lo in [0u64, 1, 0x7fff, 0x8000, 0xfffe, 0xffff] {
                for b in [0u64, 1, 2, 0x7fff, 0xffff] {
                    let a = (a & !0xffff) | lo;
                    let carries = (lo + b) > 0xffff;
                    assert_eq!(
                        replay_mispredicts(Opcode::Addq, a, b, WideOperand::A),
                        carries,
                        "a={a:#x} b={b:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn default_config_shape() {
        let cfg = PackConfig::default();
        assert_eq!(cfg.degree, 4);
        assert!(cfg.allow_negative);
        assert!(!cfg.replay);
        assert!(PackConfig::with_replay().replay);
    }
}
