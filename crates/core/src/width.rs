//! Significant-width computation: the zero-detect / ones-detect logic at
//! the heart of both optimizations (paper Section 4.2–4.3).
//!
//! A 64-bit two's-complement value is *narrow at n* when its upper
//! `64 - n` bits are all zeros (zero-detect, non-negative values) or all
//! ones (ones-detect, negative values). In either case the upper bits
//! carry no information: the hardware can reconstruct them from the
//! detect signal, so they need not be latched, computed, or transmitted.

/// True when the upper `64 - n` bits of `v` are all zero.
///
/// This is the `zero48` signal of Figure 3 generalised to any `n`.
#[inline]
pub fn zero_detect(v: u64, n: u32) -> bool {
    debug_assert!((1..=64).contains(&n));
    n >= 64 || v >> n == 0
}

/// True when the upper `64 - n` bits of `v` are all one.
///
/// The ones-detect runs in parallel with the zero-detect to catch
/// negative two's-complement values (Section 4.3).
#[inline]
pub fn ones_detect(v: u64, n: u32) -> bool {
    debug_assert!((1..=64).contains(&n));
    n >= 64 || v >> n == u64::MAX >> n
}

/// True when `v` is narrow at `n` bits: the upper bits are redundant
/// (all-zero or all-one) and the value is reconstructible from its low
/// `n` bits plus the detect signal.
#[inline]
pub fn is_narrow(v: u64, n: u32) -> bool {
    zero_detect(v, n) || ones_detect(v, n)
}

/// The minimal `n` (clamped to at least 1) at which `v` is narrow —
/// the paper's notion of operand bitwidth ("adding 17, a 5-bit number,
/// to 2, a 2-bit number").
///
/// For non-negative values this is `64 - leading_zeros`; for negative
/// values `64 - leading_ones` (the sign is carried by the detect signal).
///
/// # Example
///
/// ```
/// use nwo_core::width64;
///
/// assert_eq!(width64(17), 5);
/// assert_eq!(width64(2), 2);
/// assert_eq!(width64(0), 1);
/// assert_eq!(width64((-1i64) as u64), 1);
/// assert_eq!(width64((-15i64) as u64), 4);
/// assert_eq!(width64(0x1_0000_0000), 33); // a heap address
/// ```
#[inline]
pub fn width64(v: u64) -> u32 {
    let redundant = if (v as i64) < 0 {
        v.leading_ones()
    } else {
        v.leading_zeros()
    };
    (64 - redundant).max(1)
}

/// Per-operand width tag stored in the RUU alongside each source operand
/// (Section 5.2: "an extra bit for each operand indicating that the size
/// of the operand is 16-bits or less"; Section 4.3 adds the 33-bit signal
/// and the negative-number ones-detect).
///
/// `known == false` models a machine *without* zero-detect on some
/// producer (e.g. loads when the cache port lacks detection logic —
/// the 13.1%/1.5% statistic in Section 4.2): the consumer must then
/// conservatively assume a full-width operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WidthTag {
    /// A zero/ones-detect has been performed on this value.
    pub known: bool,
    /// Upper 48 bits redundant (`zero48` / `ones48`).
    pub narrow16: bool,
    /// Upper 31 bits redundant (the 33-bit signal of Section 4.3,
    /// motivated by address arithmetic).
    pub narrow33: bool,
    /// The value is negative (the detect that fired was the ones-detect).
    pub negative: bool,
}

impl WidthTag {
    /// Tags a value whose detect logic has run.
    #[inline]
    pub fn of(v: u64) -> WidthTag {
        WidthTag {
            known: true,
            narrow16: is_narrow(v, 16),
            narrow33: is_narrow(v, 33),
            negative: (v as i64) < 0,
        }
    }

    /// The conservative tag for a value that bypassed the detect logic.
    #[inline]
    pub fn unknown() -> WidthTag {
        WidthTag {
            known: false,
            narrow16: false,
            narrow33: false,
            negative: false,
        }
    }

    /// True when this operand is known narrow at 16 bits via the
    /// *zero*-detect specifically (non-negative).
    #[inline]
    pub fn narrow16_unsigned(self) -> bool {
        self.known && self.narrow16 && !self.negative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_detect_boundaries() {
        assert!(zero_detect(0, 16));
        assert!(zero_detect(0xffff, 16));
        assert!(!zero_detect(0x1_0000, 16));
        assert!(zero_detect(u64::MAX, 64));
    }

    #[test]
    fn ones_detect_boundaries() {
        let neg1 = u64::MAX;
        assert!(ones_detect(neg1, 16));
        let minus_65536 = (-65536i64) as u64;
        assert!(ones_detect(minus_65536, 16));
        let minus_65537 = (-65537i64) as u64;
        assert!(!ones_detect(minus_65537, 16));
        assert!(!ones_detect(0, 16));
    }

    #[test]
    fn paper_example_widths() {
        // "adding 17, a 5-bit number, to 2, a 2-bit number, the result is
        // 19, a 5-bit number."
        assert_eq!(width64(17), 5);
        assert_eq!(width64(2), 2);
        assert_eq!(width64(19), 5);
    }

    #[test]
    fn width_extremes() {
        assert_eq!(width64(0), 1);
        assert_eq!(width64(1), 1);
        assert_eq!(width64(u64::MAX), 1); // -1: one significant bit
                                          // i64::MIN is ones-detected at 63: the low 63 bits (all zero) plus
                                          // the ones signal reconstruct it, so its hardware width is 63.
        assert_eq!(width64(i64::MIN as u64), 63);
        assert_eq!(width64(i64::MAX as u64), 63);
    }

    #[test]
    fn addresses_are_33_bits() {
        assert_eq!(width64(0x1_0000_0000), 33);
        assert_eq!(width64(0x1_7fff_ff00), 33);
    }

    #[test]
    fn width_consistent_with_is_narrow() {
        for &v in &[
            0u64,
            1,
            17,
            0xffff,
            0x10000,
            0x1_0000_0000,
            u64::MAX,
            (-32768i64) as u64,
            (-65536i64) as u64,
            i64::MIN as u64,
        ] {
            let w = width64(v);
            assert!(is_narrow(v, w), "{v:#x} must be narrow at its own width");
            if w > 1 {
                assert!(!is_narrow(v, w - 1), "{v:#x} must not be narrow below {w}");
            }
        }
    }

    #[test]
    fn tags_capture_both_thresholds() {
        let t = WidthTag::of(100);
        assert!(t.known && t.narrow16 && t.narrow33 && !t.negative);
        let t = WidthTag::of(0x10_0000);
        assert!(!t.narrow16 && t.narrow33);
        let t = WidthTag::of(0x1_0000_0000);
        assert!(!t.narrow16 && t.narrow33, "33-bit addresses gate at 33");
        let t = WidthTag::of(0x2_0000_0000);
        assert!(!t.narrow33);
        let t = WidthTag::of((-5i64) as u64);
        assert!(t.narrow16 && t.negative);
    }

    #[test]
    fn unknown_tag_is_conservative() {
        let t = WidthTag::unknown();
        assert!(!t.known && !t.narrow16 && !t.narrow33);
        assert!(!t.narrow16_unsigned());
    }

    #[test]
    fn narrow16_unsigned_requires_zero_detect() {
        assert!(WidthTag::of(5).narrow16_unsigned());
        assert!(!WidthTag::of((-5i64) as u64).narrow16_unsigned());
        assert!(!WidthTag::of(0x1_0000).narrow16_unsigned());
    }
}
