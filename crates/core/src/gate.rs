//! Operand-based clock-gating decisions (paper Section 4).
//!
//! Given the width tags of both source operands, the gating logic picks
//! how much of the functional unit must stay clocked: the low 16 bits,
//! the low 33 bits, or the full 64-bit datapath.

use crate::width::WidthTag;

/// How much of the functional unit is clocked for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateLevel {
    /// Both operands narrow at 16 bits: upper 48 bits disabled.
    Gate16,
    /// Both operands narrow at 33 bits: upper 31 bits disabled
    /// (the address-arithmetic signal of Section 4.3).
    Gate33,
    /// At least one wide or unknown operand: full-width operation.
    Full,
}

impl GateLevel {
    /// The number of datapath bits that remain clocked.
    pub fn active_bits(self) -> u32 {
        match self {
            GateLevel::Gate16 => 16,
            GateLevel::Gate33 => 33,
            GateLevel::Full => 64,
        }
    }
}

/// Configuration of the detection hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatingConfig {
    /// Gate at 16 bits when both operands are narrow16.
    pub gate16: bool,
    /// Also gate at 33 bits (the second control signal of Section 4.3).
    pub gate33: bool,
    /// Ones-detect hardware present: negative narrow values also gate.
    /// Without it only zero-detected (non-negative) operands qualify.
    pub ones_detect: bool,
}

impl Default for GatingConfig {
    /// The paper's full proposal: gate at both 16 and 33 bits, with
    /// ones-detect for negative operands.
    fn default() -> Self {
        GatingConfig {
            gate16: true,
            gate33: true,
            ones_detect: true,
        }
    }
}

impl GatingConfig {
    /// A configuration with gating disabled entirely (the baseline).
    pub fn disabled() -> Self {
        GatingConfig {
            gate16: false,
            gate33: false,
            ones_detect: false,
        }
    }
}

fn qualifies(tag: WidthTag, narrow: bool, config: &GatingConfig) -> bool {
    tag.known && narrow && (config.ones_detect || !tag.negative)
}

/// Decides the gate level for an operation from its operand tags.
///
/// Both operands must be narrow for the upper bits to be skipped
/// (Section 4.3: "Both operands must be small in order for the clock
/// gating to be allowed").
///
/// # Example
///
/// ```
/// use nwo_core::{gate_level, GateLevel, GatingConfig, WidthTag};
///
/// let cfg = GatingConfig::default();
/// let narrow = WidthTag::of(17);
/// let addr = WidthTag::of(0x1_0000_0040);
/// assert_eq!(gate_level(narrow, narrow, &cfg), GateLevel::Gate16);
/// assert_eq!(gate_level(addr, narrow, &cfg), GateLevel::Gate33);
/// ```
pub fn gate_level(a: WidthTag, b: WidthTag, config: &GatingConfig) -> GateLevel {
    if config.gate16 && qualifies(a, a.narrow16, config) && qualifies(b, b.narrow16, config) {
        GateLevel::Gate16
    } else if config.gate33 && qualifies(a, a.narrow33, config) && qualifies(b, b.narrow33, config)
    {
        GateLevel::Gate33
    } else {
        GateLevel::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(v: i64) -> WidthTag {
        WidthTag::of(v as u64)
    }

    #[test]
    fn both_narrow_gates_at_16() {
        let cfg = GatingConfig::default();
        assert_eq!(gate_level(tag(17), tag(2), &cfg), GateLevel::Gate16);
        assert_eq!(GateLevel::Gate16.active_bits(), 16);
    }

    #[test]
    fn one_wide_operand_blocks_16_bit_gating() {
        let cfg = GatingConfig::default();
        assert_eq!(gate_level(tag(17), tag(1 << 20), &cfg), GateLevel::Gate33);
        assert_eq!(gate_level(tag(17), tag(1 << 40), &cfg), GateLevel::Full);
    }

    #[test]
    fn address_arithmetic_gates_at_33() {
        let cfg = GatingConfig::default();
        let base = tag(0x1_0000_0000);
        let offset = tag(128);
        assert_eq!(gate_level(base, offset, &cfg), GateLevel::Gate33);
    }

    #[test]
    fn unknown_operand_forces_full_width() {
        let cfg = GatingConfig::default();
        assert_eq!(
            gate_level(WidthTag::unknown(), tag(1), &cfg),
            GateLevel::Full
        );
    }

    #[test]
    fn negative_operands_need_ones_detect() {
        let with = GatingConfig::default();
        let without = GatingConfig {
            ones_detect: false,
            ..GatingConfig::default()
        };
        assert_eq!(gate_level(tag(-5), tag(3), &with), GateLevel::Gate16);
        assert_eq!(gate_level(tag(-5), tag(3), &without), GateLevel::Full);
    }

    #[test]
    fn gate33_can_be_disabled_independently() {
        let cfg = GatingConfig {
            gate33: false,
            ..GatingConfig::default()
        };
        let base = tag(0x1_0000_0000);
        assert_eq!(gate_level(base, tag(4), &cfg), GateLevel::Full);
        assert_eq!(gate_level(tag(1), tag(4), &cfg), GateLevel::Gate16);
    }

    #[test]
    fn disabled_config_never_gates() {
        let cfg = GatingConfig::disabled();
        assert_eq!(gate_level(tag(1), tag(2), &cfg), GateLevel::Full);
    }

    #[test]
    fn levels_order_by_aggressiveness() {
        assert!(GateLevel::Gate16 < GateLevel::Gate33);
        assert!(GateLevel::Gate33 < GateLevel::Full);
    }
}
