#![warn(missing_docs)]

//! The primary contribution of Brooks & Martonosi (HPCA 1999):
//! dynamic narrow-width operand detection and the two mechanisms built
//! on it — operand-based clock gating and operation packing.
//!
//! This crate is deliberately free of pipeline machinery: it captures the
//! *decision logic* the paper adds to a processor, as pure functions over
//! operand values and width tags. The cycle-level simulator (`nwo-sim`)
//! calls into it from its dispatch, issue and writeback stages; the power
//! model (`nwo-power`) consumes its [`GateLevel`] decisions.
//!
//! * [`width64`], [`zero_detect`], [`ones_detect`], [`WidthTag`] — the
//!   detection hardware of Figure 3 and Section 4.3.
//! * [`gate_level`] — the clock-gating decision of Section 4.
//! * [`can_pack`], [`slot_result`], [`PackConfig`] — issue-time packing
//!   rules of Section 5.2, with a bit-faithful subword-lane model.
//! * [`replay_candidate`], [`replay_mispredicts`] — the speculative
//!   replay packing of Section 5.3.
//!
//! # Example
//!
//! ```
//! use nwo_core::{gate_level, GateLevel, GatingConfig, WidthTag, can_pack, PackConfig};
//! use nwo_isa::Opcode;
//!
//! let a = WidthTag::of(17);
//! let b = WidthTag::of(2);
//! assert_eq!(gate_level(a, b, &GatingConfig::default()), GateLevel::Gate16);
//! assert!(can_pack(Opcode::Addq, a, b, &PackConfig::default()));
//! ```

mod gate;
mod pack;
mod width;

pub use gate::{gate_level, GateLevel, GatingConfig};
pub use pack::{
    can_pack, pack_kind, replay_candidate, replay_mispredicts, replay_predicted, slot_result,
    PackConfig, PackKind, WideOperand,
};
pub use width::{is_narrow, ones_detect, width64, zero_detect, WidthTag};
