//! Property-based tests for the narrow-width decision logic.

use nwo_core::{
    can_pack, gate_level, is_narrow, replay_candidate, replay_mispredicts, replay_predicted,
    slot_result, width64, GateLevel, GatingConfig, PackConfig, WideOperand, WidthTag,
};
use nwo_isa::{alu_result, Opcode};
use proptest::prelude::*;

/// Values narrow at 16 bits: the ±2^16 window the detect hardware accepts.
fn narrow16() -> impl Strategy<Value = u64> {
    (-65536i64..=65535).prop_map(|v| v as u64)
}

fn any_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        any::<u64>(),
        narrow16(),
        (0u64..=4).prop_map(|shift| 1u64 << (60 - shift)),
        Just(0x1_0000_0000u64),
    ]
}

fn packable_op() -> impl Strategy<Value = Opcode> {
    prop::sample::select(vec![
        Opcode::Addq,
        Opcode::Subq,
        Opcode::Addl,
        Opcode::Subl,
        Opcode::Lda,
        Opcode::Cmpeq,
        Opcode::Cmplt,
        Opcode::Cmple,
        Opcode::Cmpult,
        Opcode::Cmpule,
        Opcode::And,
        Opcode::Bis,
        Opcode::Xor,
        Opcode::Bic,
        Opcode::Ornot,
        Opcode::Eqv,
        Opcode::Sextb,
        Opcode::Sextw,
        Opcode::Srl,
        Opcode::Sra,
    ])
}

proptest! {
    /// width64 is the *minimal* narrow width: narrow at w, not at w-1.
    #[test]
    fn width_is_minimal(v in any_value()) {
        let w = width64(v);
        prop_assert!((1..=64).contains(&w));
        prop_assert!(is_narrow(v, w));
        if w > 1 {
            prop_assert!(!is_narrow(v, w - 1));
        }
    }

    /// Narrowness is monotone in the width threshold.
    #[test]
    fn narrowness_is_monotone(v in any_value(), n in 1u32..64) {
        if is_narrow(v, n) {
            prop_assert!(is_narrow(v, n + 1));
        }
    }

    /// The value is reconstructible from its low width64(v) bits plus the
    /// sign — the guarantee the gating mux relies on.
    #[test]
    fn narrow_values_reconstruct(v in any_value()) {
        let w = width64(v);
        if w < 64 {
            let low = v & ((1u64 << w) - 1);
            let negative = (v as i64) < 0;
            let rebuilt = if negative { low | (u64::MAX << w) } else { low };
            prop_assert_eq!(rebuilt, v);
        }
    }

    /// WidthTag::of agrees with the raw detect functions.
    #[test]
    fn tag_matches_detects(v in any_value()) {
        let t = WidthTag::of(v);
        prop_assert_eq!(t.narrow16, is_narrow(v, 16));
        prop_assert_eq!(t.narrow33, is_narrow(v, 33));
        prop_assert_eq!(t.negative, (v as i64) < 0);
        prop_assert!(t.known);
    }

    /// Gate16 implies both operands really are narrow16 — the gated
    /// datapath never silently truncates a wide value.
    #[test]
    fn gating_is_sound(a in any_value(), b in any_value()) {
        let cfg = GatingConfig::default();
        match gate_level(WidthTag::of(a), WidthTag::of(b), &cfg) {
            GateLevel::Gate16 => {
                prop_assert!(is_narrow(a, 16) && is_narrow(b, 16));
            }
            GateLevel::Gate33 => {
                prop_assert!(is_narrow(a, 33) && is_narrow(b, 33));
            }
            GateLevel::Full => {}
        }
    }

    /// Gating is also complete: two narrow16 operands always gate at 16.
    #[test]
    fn gating_is_complete(a in narrow16(), b in narrow16()) {
        let cfg = GatingConfig::default();
        prop_assert_eq!(
            gate_level(WidthTag::of(a), WidthTag::of(b), &cfg),
            GateLevel::Gate16
        );
    }

    /// THE exactness theorem for operation packing: whenever the issue
    /// logic decides to pack, the 16-bit lane produces the full-width
    /// result bit-for-bit.
    #[test]
    fn packing_is_exact(op in packable_op(), a in narrow16(), b in narrow16()) {
        let cfg = PackConfig::default();
        if can_pack(op, WidthTag::of(a), WidthTag::of(b), &cfg) {
            prop_assert_eq!(
                slot_result(op, a, b),
                alu_result(op, a, b),
                "lane mismatch for {} a={:#x} b={:#x}", op, a, b
            );
        }
    }

    /// Replay packing is self-correcting: when the mispredict detector
    /// stays quiet, the predicted (muxed) result is the true result.
    #[test]
    fn replay_prediction_sound(a in any_value(), b in narrow16()) {
        for op in [Opcode::Addq, Opcode::Subq, Opcode::Lda] {
            let (ta, tb) = (WidthTag::of(a), WidthTag::of(b));
            if let Some(wide) = replay_candidate(op, ta, tb) {
                prop_assert_eq!(wide, WideOperand::A);
                if !replay_mispredicts(op, a, b, wide) {
                    prop_assert_eq!(replay_predicted(op, a, b, wide), alu_result(op, a, b));
                }
            }
        }
    }

    /// A replay candidate never exists when exact packing applies, and
    /// vice versa: the two mechanisms partition the opportunity space.
    #[test]
    fn replay_and_exact_packing_disjoint(a in any_value(), b in any_value()) {
        let cfg = PackConfig::default();
        for op in [Opcode::Addq, Opcode::Subq, Opcode::Lda] {
            let (ta, tb) = (WidthTag::of(a), WidthTag::of(b));
            if can_pack(op, ta, tb, &cfg) {
                prop_assert_eq!(replay_candidate(op, ta, tb), None);
            }
        }
    }

    /// can_pack only ever fires for opcodes with a pack kind.
    #[test]
    fn can_pack_respects_kind(a in narrow16(), b in narrow16()) {
        let cfg = PackConfig::default();
        for &op in Opcode::ALL {
            if can_pack(op, WidthTag::of(a), WidthTag::of(b), &cfg) {
                prop_assert!(nwo_core::pack_kind(op).is_some());
            }
        }
    }
}
