#![warn(missing_docs)]

//! `nwo-verify` — lockstep architectural oracle and deterministic fault
//! injection for the nwo simulator.
//!
//! The paper's two headline mechanisms — operand-based clock gating
//! (Section 4) and replay packing (Section 5.3) — are exactly the
//! features that can *silently* corrupt architectural state: a wrong
//! upper-bit mux or a missed carry-overflow squash produces
//! plausible-looking statistics with wrong results. This crate provides
//! the correctness backstop:
//!
//! * [`OracleChecker`] — a second functional [`Emulator`] stepped in
//!   lockstep at *commit* time. Every committed instruction's PC,
//!   destination value, memory effect, branch direction and next-PC are
//!   compared against the reference semantics; any mismatch produces a
//!   typed [`DivergenceReport`] carrying the last
//!   [`RECENT_WINDOW`] committed instructions (pulled from an
//!   [`nwo_obs`] trace ring) instead of silently wrong statistics.
//! * [`FaultPlan`] — a seeded, deterministic fault generator
//!   ([`XorShift64`], no wall-clock or OS randomness, so
//!   checkpoint/resume stays byte-identical) producing
//!   [`DatapathFault`]s (bit flips in gated upper result bytes),
//!   predictor-state entropy, and checkpoint-blob bit positions
//!   ([`flip_blob_bit`]).
//! * [`CampaignReport`] — the deterministic, reproducible summary of a
//!   fault-injection campaign (`nwo fault-campaign`): architectural
//!   faults must be *detected* (by the oracle or by `nwo-ckpt`'s CRC
//!   layer), predictor faults must *degrade gracefully* (timing-only —
//!   the run still architecturally correct).

use nwo_isa::{EmuError, Emulator, ExecRecord, Instr, Program, Reg};
use nwo_mem::MainMemory;
use nwo_obs::{pipeview, CommitRecord, RingSink, TraceEvent, TraceSink};

/// Number of recently committed instructions a [`DivergenceReport`]
/// carries for context.
pub const RECENT_WINDOW: usize = 16;

// ---------------------------------------------------------------------
// Deterministic PRNG
// ---------------------------------------------------------------------

/// Deterministic xorshift64 PRNG. No wall-clock or OS entropy anywhere:
/// the same seed always yields the same fault sequence, so campaigns
/// (and checkpoint/resume under test) are byte-identical across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// A generator seeded with `seed` (zero is remapped to a fixed
    /// non-zero constant — xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// A value uniformly-ish distributed in `0..bound` (`bound == 0`
    /// yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

// ---------------------------------------------------------------------
// Divergence reporting
// ---------------------------------------------------------------------

/// Which architectural field diverged between the out-of-order core and
/// the reference emulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The committed instruction's address.
    Pc,
    /// The address of the next instruction (control flow).
    NextPc,
    /// The value written to the destination register.
    Result,
    /// The destination register itself.
    Dest,
    /// The effective address of a load or store.
    MemAddr,
    /// The value a store wrote to memory.
    StoreValue,
    /// A branch's taken/not-taken direction.
    Taken,
    /// The reference emulator itself faulted (bad instruction) where the
    /// core committed — control flow left the legal program.
    OracleFault,
}

impl DivergenceKind {
    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DivergenceKind::Pc => "pc",
            DivergenceKind::NextPc => "next-pc",
            DivergenceKind::Result => "result",
            DivergenceKind::Dest => "dest-register",
            DivergenceKind::MemAddr => "mem-addr",
            DivergenceKind::StoreValue => "store-value",
            DivergenceKind::Taken => "branch-direction",
            DivergenceKind::OracleFault => "oracle-fault",
        }
    }
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything known about one architectural divergence: where it
/// happened, what was expected versus observed, and the last
/// [`RECENT_WINDOW`] committed instructions for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Simulator cycle of the diverging commit (0 during functional
    /// warmup).
    pub cycle: u64,
    /// Commit sequence number (0-based) of the diverging instruction.
    pub commit_seq: u64,
    /// Address of the diverging instruction as the core committed it.
    pub pc: u64,
    /// Raw 32-bit encoding of the diverging instruction.
    pub raw: u32,
    /// Which architectural field diverged.
    pub kind: DivergenceKind,
    /// The reference emulator's value (`None` when the reference has no
    /// such field — e.g. no destination register).
    pub expected: Option<u64>,
    /// The out-of-order core's value.
    pub actual: Option<u64>,
    /// The most recent committed instructions, oldest first, pulled
    /// from the checker's trace ring (the diverging one last).
    pub recent: Vec<CommitRecord>,
}

fn fmt_opt(v: Option<u64>) -> String {
    match v {
        Some(x) => format!("{x:#x}"),
        None => "<none>".to_string(),
    }
}

impl std::fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let disasm = |_pc: u64, raw: u32| match Instr::decode(raw) {
            Ok(i) => i.to_string(),
            Err(_) => format!("{raw:08x}"),
        };
        writeln!(
            f,
            "architectural divergence at cycle {}, commit #{}, pc {:#x} ({}): \
             {} expected {} but the core retired {}",
            self.cycle,
            self.commit_seq,
            self.pc,
            disasm(self.pc, self.raw),
            self.kind,
            fmt_opt(self.expected),
            fmt_opt(self.actual),
        )?;
        write!(f, "{}", pipeview::render(&self.recent, &disasm))
    }
}

impl std::error::Error for DivergenceReport {}

/// Lockstep architectural oracle: a reference [`Emulator`] advanced one
/// instruction per core commit, with every architectural field compared.
#[derive(Debug)]
pub struct OracleChecker {
    emu: Emulator,
    ring: RingSink,
    checked: u64,
}

impl OracleChecker {
    /// An oracle at the architectural reset state of `program`.
    pub fn new(program: &Program) -> OracleChecker {
        OracleChecker {
            emu: Emulator::new(program),
            ring: RingSink::keep_last(RECENT_WINDOW),
            checked: 0,
        }
    }

    /// Number of commits checked so far.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Re-bases the oracle onto externally supplied architectural state
    /// — used after a checkpoint restore, which replaces warmed state
    /// the oracle never saw executing.
    pub fn resync(&mut self, regs: &[u64; 32], pc: u64, halted: bool, mem: &MainMemory) {
        self.emu.sync_arch_state(regs, pc, halted, mem);
    }

    /// Checks one committed instruction against the reference.
    ///
    /// `actual` is the core's view of the commit; `record` is its
    /// pipeline timing record, retained in the checker's ring so a
    /// later divergence can show recent history.
    ///
    /// # Errors
    ///
    /// A [`DivergenceReport`] describing the first mismatching field.
    pub fn check_commit(
        &mut self,
        cycle: u64,
        actual: &ExecRecord,
        record: CommitRecord,
    ) -> Result<(), Box<DivergenceReport>> {
        self.ring.emit(&TraceEvent::Commit(record));
        self.checked += 1;
        let report = |kind, expected, actual_v| {
            Box::new(DivergenceReport {
                cycle,
                commit_seq: record.seq,
                pc: actual.pc,
                raw: record.raw,
                kind,
                expected,
                actual: actual_v,
                recent: self.ring.retained(),
            })
        };
        let expected = match self.emu.step() {
            Ok(r) => r,
            Err(EmuError::BadInstruction { pc }) | Err(EmuError::StepLimit { limit: pc }) => {
                return Err(report(
                    DivergenceKind::OracleFault,
                    Some(pc),
                    Some(actual.pc),
                ));
            }
        };
        let reg_idx = |r: Option<Reg>| r.map(|r| u64::from(r.index()));
        let checks: [(DivergenceKind, Option<u64>, Option<u64>); 7] = [
            (DivergenceKind::Pc, Some(expected.pc), Some(actual.pc)),
            (
                DivergenceKind::Dest,
                reg_idx(expected.dest),
                reg_idx(actual.dest),
            ),
            (DivergenceKind::Result, expected.result, actual.result),
            (DivergenceKind::MemAddr, expected.mem_addr, actual.mem_addr),
            (
                DivergenceKind::StoreValue,
                expected.store_value,
                actual.store_value,
            ),
            (
                DivergenceKind::Taken,
                Some(u64::from(expected.taken)),
                Some(u64::from(actual.taken)),
            ),
            (
                DivergenceKind::NextPc,
                Some(expected.next_pc),
                Some(actual.next_pc),
            ),
        ];
        for (kind, exp, act) in checks {
            if exp != act {
                return Err(report(kind, exp, act));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// One planned datapath fault: a single bit flip in the upper bytes of
/// a retired value — exactly the bytes operand-based clock gating
/// claims it may safely not compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatapathFault {
    /// The fault arms at this commit index and fires at the first
    /// commit at-or-after it that carries a comparable value (a
    /// destination result or store data), so every planned fault is
    /// architecturally visible.
    pub commit_index: u64,
    /// Bit position to flip, always in the gated upper range `16..64`.
    pub bit: u32,
}

impl DatapathFault {
    /// Applies the fault to a retired value.
    pub fn apply(&self, value: u64) -> u64 {
        value ^ (1u64 << self.bit)
    }
}

/// Seeded generator of deterministic fault sequences. Two plans built
/// from the same seed produce identical faults in identical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    rng: XorShift64,
}

impl FaultPlan {
    /// A plan seeded with `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rng: XorShift64::new(seed),
        }
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The next datapath fault, armed somewhere in the first
    /// `commit_span` commits with a bit in the gated upper range.
    pub fn datapath_fault(&mut self, commit_span: u64) -> DatapathFault {
        DatapathFault {
            commit_index: self.rng.below(commit_span.max(1)),
            bit: 16 + self.rng.below(48) as u32,
        }
    }

    /// Entropy word for one predictor-state fault (the predictor picks
    /// a table and counter from it).
    pub fn predictor_entropy(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A bit position inside a `len`-byte checkpoint blob.
    pub fn blob_bit(&mut self, len: usize) -> u64 {
        self.rng.below((len as u64) * 8)
    }
}

/// Flips bit `bit` (counting from byte 0, LSB first) of `bytes`.
/// Positions past the end are reduced modulo the blob size.
pub fn flip_blob_bit(bytes: &mut [u8], bit: u64) {
    if bytes.is_empty() {
        return;
    }
    let bit = bit % (bytes.len() as u64 * 8);
    bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
}

// ---------------------------------------------------------------------
// Campaign reporting
// ---------------------------------------------------------------------

/// Where a campaign trial injected its fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Upper bytes of a retired datapath value (architectural — the
    /// oracle must detect it).
    Datapath,
    /// Branch predictor state (micro-architectural — the run must stay
    /// architecturally correct and merely degrade).
    Predictor,
    /// A warm checkpoint blob (architectural — `nwo-ckpt` must reject
    /// it on restore).
    Checkpoint,
}

impl FaultSite {
    /// Short site name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Datapath => "datapath",
            FaultSite::Predictor => "predictor",
            FaultSite::Checkpoint => "checkpoint",
        }
    }

    /// True for fault sites that corrupt architectural state and must
    /// therefore be *detected* (rather than tolerated).
    pub fn is_architectural(self) -> bool {
        !matches!(self, FaultSite::Predictor)
    }
}

/// The outcome of one fault-injection trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialResult {
    /// Fault site.
    pub site: FaultSite,
    /// Trial index within the site (0-based).
    pub index: u32,
    /// Deterministic description of what was injected.
    pub injected: String,
    /// Architectural sites: the fault was detected. Predictor site: the
    /// run stayed architecturally correct (graceful degradation).
    pub ok: bool,
    /// Detector message, or a description of the miss.
    pub note: String,
}

/// Deterministic, reproducible summary of a fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Seed the campaign's [`FaultPlan`] was built from.
    pub seed: u64,
    /// Benchmark the campaign ran on.
    pub bench: String,
    /// Workload scale of the run.
    pub scale: u32,
    /// Every trial, in execution order.
    pub trials: Vec<TrialResult>,
}

impl CampaignReport {
    /// Number of architectural-fault trials.
    pub fn architectural_total(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| t.site.is_architectural())
            .count()
    }

    /// Number of architectural-fault trials that were detected.
    pub fn architectural_detected(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| t.site.is_architectural() && t.ok)
            .count()
    }

    /// Number of predictor-fault trials.
    pub fn predictor_total(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| t.site == FaultSite::Predictor)
            .count()
    }

    /// Number of predictor-fault trials that degraded gracefully.
    pub fn predictor_graceful(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| t.site == FaultSite::Predictor && t.ok)
            .count()
    }

    /// True when every trial met its expectation: all architectural
    /// faults detected, all predictor faults tolerated.
    pub fn success(&self) -> bool {
        self.trials.iter().all(|t| t.ok)
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fault campaign: bench={} scale={} seed={:#x} trials={}",
            self.bench,
            self.scale,
            self.seed,
            self.trials.len()
        )?;
        for t in &self.trials {
            let verdict = match (t.site.is_architectural(), t.ok) {
                (true, true) => "DETECTED",
                (true, false) => "MISSED",
                (false, true) => "GRACEFUL",
                (false, false) => "CORRUPTED",
            };
            writeln!(
                f,
                "  [{:<10} {:>2}] {} -> {verdict}: {}",
                t.site.name(),
                t.index,
                t.injected,
                t.note
            )?;
        }
        let (det, tot) = (self.architectural_detected(), self.architectural_total());
        let pct = if tot == 0 {
            100.0
        } else {
            100.0 * det as f64 / tot as f64
        };
        write!(
            f,
            "architectural faults detected: {det}/{tot} ({pct:.1}%); \
             predictor faults degraded gracefully: {}/{}",
            self.predictor_graceful(),
            self.predictor_total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::assemble;

    fn commit_record(seq: u64, rec: &ExecRecord) -> CommitRecord {
        CommitRecord {
            seq,
            pc: rec.pc,
            raw: rec.instr.encode(),
            fetched_at: seq,
            dispatched_at: seq,
            issued_at: seq,
            completed_at: seq,
            committed_at: seq,
            packed: false,
            replayed: false,
        }
    }

    fn program() -> Program {
        assemble(
            r#"
            main:
                li   t0, 300
                addq t0, 5, t0
                outq t0
                halt
            "#,
        )
        .expect("assembles")
    }

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..1000 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, 0);
        }
        // Zero seed is remapped, not a fixed point.
        assert_ne!(XorShift64::new(0).next_u64(), 0);
    }

    #[test]
    fn fault_plan_reproduces_from_its_seed() {
        let mut p1 = FaultPlan::new(7);
        let mut p2 = FaultPlan::new(7);
        for _ in 0..32 {
            assert_eq!(p1.datapath_fault(1000), p2.datapath_fault(1000));
            assert_eq!(p1.predictor_entropy(), p2.predictor_entropy());
            assert_eq!(p1.blob_bit(512), p2.blob_bit(512));
        }
        let f = FaultPlan::new(7).datapath_fault(1000);
        assert!((16..64).contains(&f.bit), "bit {} in gated range", f.bit);
        assert!(f.commit_index < 1000);
    }

    #[test]
    fn flip_blob_bit_flips_exactly_one_bit() {
        let mut bytes = vec![0u8; 16];
        flip_blob_bit(&mut bytes, 37);
        assert_eq!(bytes[4], 1 << 5);
        flip_blob_bit(&mut bytes, 37);
        assert!(bytes.iter().all(|&b| b == 0), "second flip restores");
        // Out-of-range positions wrap instead of panicking.
        flip_blob_bit(&mut bytes, 16 * 8 + 3);
        assert_eq!(bytes[0], 1 << 3);
        flip_blob_bit(&mut [], 5);
    }

    #[test]
    fn matching_commits_pass_the_oracle() {
        let prog = program();
        let mut reference = Emulator::new(&prog);
        let mut oracle = OracleChecker::new(&prog);
        let mut seq = 0;
        loop {
            let rec = reference.step().expect("legal program");
            oracle
                .check_commit(seq, &rec, commit_record(seq, &rec))
                .expect("faithful commits never diverge");
            seq += 1;
            if reference.halted() {
                break;
            }
        }
        assert_eq!(oracle.checked(), seq);
    }

    #[test]
    fn corrupted_result_is_reported_with_context() {
        let prog = program();
        let mut reference = Emulator::new(&prog);
        let mut oracle = OracleChecker::new(&prog);
        // Commit the first instruction faithfully...
        let rec = reference.step().expect("step");
        oracle
            .check_commit(0, &rec, commit_record(0, &rec))
            .expect("faithful");
        // ...then retire the second with a gated-upper-byte bit flipped.
        let mut bad = reference.step().expect("step");
        let fault = DatapathFault {
            commit_index: 0,
            bit: 40,
        };
        bad.result = bad.result.map(|v| fault.apply(v));
        let report = oracle
            .check_commit(1, &bad, commit_record(1, &bad))
            .expect_err("divergence must be caught");
        assert_eq!(report.kind, DivergenceKind::Result);
        assert_eq!(report.commit_seq, 1);
        assert_eq!(report.pc, bad.pc);
        assert_eq!(report.recent.len(), 2, "ring carries recent commits");
        let text = report.to_string();
        assert!(text.contains("divergence"), "{text}");
        assert!(text.contains("pipeview"), "{text}");
    }

    #[test]
    fn wrong_path_commit_is_an_oracle_fault() {
        let prog = program();
        let mut reference = Emulator::new(&prog);
        let mut oracle = OracleChecker::new(&prog);
        let mut rec = reference.step().expect("step");
        rec.pc = 0xdead_0000; // commit from an address the program never reaches
        let report = oracle
            .check_commit(0, &rec, commit_record(0, &rec))
            .expect_err("must diverge");
        assert_eq!(report.kind, DivergenceKind::Pc);
    }

    #[test]
    fn campaign_report_is_deterministic_and_summarizes() {
        let report = CampaignReport {
            seed: 0xbeef,
            bench: "compress".into(),
            scale: 0,
            trials: vec![
                TrialResult {
                    site: FaultSite::Datapath,
                    index: 0,
                    injected: "flip bit 40 at commit >= 12".into(),
                    ok: true,
                    note: "oracle: result mismatch".into(),
                },
                TrialResult {
                    site: FaultSite::Predictor,
                    index: 0,
                    injected: "flip counter bit".into(),
                    ok: true,
                    note: "output correct".into(),
                },
                TrialResult {
                    site: FaultSite::Checkpoint,
                    index: 0,
                    injected: "flip blob bit 991".into(),
                    ok: true,
                    note: "restore rejected: CRC mismatch".into(),
                },
            ],
        };
        assert_eq!(report.architectural_total(), 2);
        assert_eq!(report.architectural_detected(), 2);
        assert_eq!(report.predictor_total(), 1);
        assert!(report.success());
        let text = report.to_string();
        assert!(text.contains("2/2 (100.0%)"), "{text}");
        assert!(text.contains("DETECTED"), "{text}");
        assert!(text.contains("GRACEFUL"), "{text}");
        assert_eq!(text, report.to_string(), "display is deterministic");
    }
}
