#![warn(missing_docs)]

//! Power modelling for the integer execution unit, reproducing the
//! paper's Table 4 constants and the clock-gating accounting behind
//! Figures 6 and 7.
//!
//! The model follows the paper exactly: per-device power in mW at
//! 3.3 V / 500 MHz scaling linearly with active datapath width, with the
//! zero-detect logic charged per result produced and the widened result
//! mux charged per gated operation. "For this analysis though, the
//! important factor is the ratio of the respective functional units to
//! each other." (Section 4.4)
//!
//! # Example
//!
//! ```
//! use nwo_power::{PowerAccumulator};
//! use nwo_core::GateLevel;
//! use nwo_isa::OpClass;
//!
//! let mut acc = PowerAccumulator::new();
//! for _ in 0..60 {
//!     acc.record_op(OpClass::IntArith, GateLevel::Gate16);
//! }
//! for _ in 0..40 {
//!     acc.record_op(OpClass::IntArith, GateLevel::Full);
//! }
//! let report = acc.report(50);
//! assert!(report.reduction_percent > 30.0);
//! ```

mod constants;
mod memext;
mod model;

pub use constants::{device_power, full_width_mw, Device, MUX_MW, ZERO_DETECT_MW};
pub use memext::{MemPowerExt, MemPowerReport, ARRAY_MW_PER_BYTE, BUS_MW_PER_BYTE};
pub use model::{device_for_class, PowerAccumulator, PowerReport};
