//! Table 4 of the paper: estimated power consumption of the integer
//! functional units at 3.3 V and 500 MHz, in milliwatts.
//!
//! | Device           | 32-bit | 48-bit | 64-bit |
//! |------------------|--------|--------|--------|
//! | Adder (CLA)      |    105 |    158 |    210 |
//! | Booth multiplier |   1050 |   1580 |   2100 |
//! | Bit-wise logic   |    5.8 |    8.7 |   11.7 |
//! | Shifter          |    4.4 |    6.6 |    8.8 |
//! | Zero-detect      |        |    4.2 |        |
//! | Additional muxes |        |    3.2 |        |
//!
//! The table scales linearly with operand width (105 = 210·32/64,
//! 158 ≈ 210·48/64, …), which is also the paper's stated assumption for
//! the pipelined multiplier; [`device_power`] therefore interpolates
//! linearly from the 64-bit column.

/// The four integer-datapath devices of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// Carry-lookahead adder (arithmetic, compares, effective addresses,
    /// branch compares).
    Adder,
    /// Booth multiplier (multiply and divide).
    Multiplier,
    /// Bit-wise logic unit.
    Logic,
    /// Shifter.
    Shifter,
}

impl Device {
    /// All devices.
    pub const ALL: [Device; 4] = [
        Device::Adder,
        Device::Multiplier,
        Device::Logic,
        Device::Shifter,
    ];

    /// Display name matching Table 4.
    pub fn name(self) -> &'static str {
        match self {
            Device::Adder => "Adder (CLA)",
            Device::Multiplier => "Booth Multiplier",
            Device::Logic => "Bit-Wise Logic",
            Device::Shifter => "Shifter",
        }
    }
}

/// Full-width (64-bit) power of each device in mW (Table 4 rightmost
/// column).
pub const fn full_width_mw(device: Device) -> f64 {
    match device {
        Device::Adder => 210.0,
        Device::Multiplier => 2100.0,
        Device::Logic => 11.7,
        Device::Shifter => 8.8,
    }
}

/// Power of `device` with `bits` of active datapath, in mW, scaling
/// linearly with width per the paper's model.
///
/// # Example
///
/// ```
/// use nwo_power::{device_power, Device};
///
/// assert_eq!(device_power(Device::Adder, 64), 210.0);
/// assert_eq!(device_power(Device::Adder, 32), 105.0);
/// assert_eq!(device_power(Device::Multiplier, 32), 1050.0);
/// ```
pub fn device_power(device: Device, bits: u32) -> f64 {
    debug_assert!(bits <= 64);
    full_width_mw(device) * bits as f64 / 64.0
}

/// Power of the zero-detect (and ones-detect) logic, charged once per
/// result produced, in mW.
pub const ZERO_DETECT_MW: f64 = 4.2;

/// Power of the widened result-bus muxes, charged once per gated
/// operation, in mW.
pub const MUX_MW: f64 = 3.2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values_reproduced() {
        // 32-bit column.
        assert_eq!(device_power(Device::Adder, 32), 105.0);
        assert_eq!(device_power(Device::Multiplier, 32), 1050.0);
        assert!((device_power(Device::Logic, 32) - 5.85).abs() < 0.06); // 5.8 in the table
        assert_eq!(device_power(Device::Shifter, 32), 4.4);
        // 48-bit column.
        assert!((device_power(Device::Adder, 48) - 157.5).abs() < 0.6); // 158
        assert!((device_power(Device::Multiplier, 48) - 1575.0).abs() < 6.0); // 1580
        assert!((device_power(Device::Logic, 48) - 8.775).abs() < 0.08); // 8.7
        assert!((device_power(Device::Shifter, 48) - 6.6).abs() < 1e-9);
        // 64-bit column.
        assert_eq!(device_power(Device::Adder, 64), 210.0);
        assert_eq!(device_power(Device::Multiplier, 64), 2100.0);
        assert_eq!(device_power(Device::Logic, 64), 11.7);
        assert_eq!(device_power(Device::Shifter, 64), 8.8);
    }

    #[test]
    fn overheads_match_table4() {
        assert_eq!(ZERO_DETECT_MW, 4.2);
        assert_eq!(MUX_MW, 3.2);
    }

    #[test]
    fn scaling_is_monotone() {
        for device in Device::ALL {
            let mut last = 0.0;
            for bits in [16, 32, 33, 48, 64] {
                let p = device_power(device, bits);
                assert!(p > last, "{device:?} power must grow with width");
                last = p;
            }
        }
    }

    #[test]
    fn names_are_table4_rows() {
        assert_eq!(Device::Adder.name(), "Adder (CLA)");
        assert_eq!(Device::Multiplier.name(), "Booth Multiplier");
    }
}
