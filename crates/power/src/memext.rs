//! Extension: narrow-width power savings in the data cache and result
//! bus (the paper's Section 6 future work — "reducing power in … the
//! cache memories").
//!
//! The paper does not evaluate this, so the model here is ours, built on
//! the same style of estimate as Table 4 and clearly parameterised:
//!
//! * a **store** whose value is known-narrow (width tag from the
//!   register file) can gate both the data-bus transfer and the
//!   data-array write down to two bytes;
//! * a **load** cannot gate the array read (the width is unknown until
//!   the sense amps fire), but the *result-bus* transfer back to the
//!   core can be gated once the fill-path zero-detect has run.
//!
//! Energy constants are per byte moved, chosen to sit in proportion to
//! the Table 4 functional-unit numbers at the same 3.3 V / 500 MHz
//! operating point. They are *extension estimates*, not paper data.

/// Data-array read/write energy per byte (mW at the Table 4 operating
/// point). Extension estimate.
pub const ARRAY_MW_PER_BYTE: f64 = 15.0;

/// Core↔cache data-bus transfer energy per byte (mW). Extension
/// estimate.
pub const BUS_MW_PER_BYTE: f64 = 10.0;

/// Accumulates narrow-width memory-traffic statistics and the modelled
/// power saving.
///
/// # Example
///
/// ```
/// use nwo_power::MemPowerExt;
///
/// let mut ext = MemPowerExt::new();
/// ext.record_store(8, true); // quadword store of a narrow value
/// ext.record_load(8, false); // wide load
/// let r = ext.report(2);
/// assert!(r.gated_mw_per_cycle < r.baseline_mw_per_cycle);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MemPowerExt {
    /// Total bytes architecturally moved.
    pub bytes_total: u64,
    /// Bytes that actually needed to toggle under narrow-width gating.
    pub bytes_active: u64,
    /// Loads/stores observed.
    pub accesses: u64,
    /// Accesses whose value was narrow at 16 bits.
    pub narrow_accesses: u64,
    baseline: f64,
    gated: f64,
}

impl MemPowerExt {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    fn active_bytes(bytes: u64, narrow: bool) -> u64 {
        if narrow {
            bytes.min(2)
        } else {
            bytes
        }
    }

    /// Records a committed store of `bytes` bytes whose value is
    /// (known-)narrow or not. Gates the array write and the bus.
    pub fn record_store(&mut self, bytes: u64, narrow: bool) {
        let active = Self::active_bytes(bytes, narrow);
        self.accesses += 1;
        self.narrow_accesses += narrow as u64;
        self.bytes_total += bytes;
        self.bytes_active += active;
        self.baseline += bytes as f64 * (ARRAY_MW_PER_BYTE + BUS_MW_PER_BYTE);
        self.gated += active as f64 * (ARRAY_MW_PER_BYTE + BUS_MW_PER_BYTE);
    }

    /// Records a committed load of `bytes` bytes whose value is narrow
    /// or not. Gates only the result-bus transfer: the array read must
    /// complete before the width is known.
    pub fn record_load(&mut self, bytes: u64, narrow: bool) {
        let active = Self::active_bytes(bytes, narrow);
        self.accesses += 1;
        self.narrow_accesses += narrow as u64;
        self.bytes_total += bytes;
        self.bytes_active += active;
        self.baseline += bytes as f64 * (ARRAY_MW_PER_BYTE + BUS_MW_PER_BYTE);
        self.gated += bytes as f64 * ARRAY_MW_PER_BYTE + active as f64 * BUS_MW_PER_BYTE;
    }

    /// Fraction of moved bytes that were redundant (upper bytes of
    /// narrow values).
    pub fn redundant_byte_fraction(&self) -> f64 {
        if self.bytes_total == 0 {
            0.0
        } else {
            1.0 - self.bytes_active as f64 / self.bytes_total as f64
        }
    }

    /// Per-cycle report over a `cycles`-cycle run.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn report(&self, cycles: u64) -> MemPowerReport {
        assert!(cycles > 0, "cannot report power for a zero-cycle run");
        let c = cycles as f64;
        let baseline = self.baseline / c;
        let gated = self.gated / c;
        MemPowerReport {
            baseline_mw_per_cycle: baseline,
            gated_mw_per_cycle: gated,
            reduction_percent: if baseline > 0.0 {
                (baseline - gated) / baseline * 100.0
            } else {
                0.0
            },
            narrow_access_fraction: if self.accesses == 0 {
                0.0
            } else {
                self.narrow_accesses as f64 / self.accesses as f64
            },
            redundant_byte_fraction: self.redundant_byte_fraction(),
        }
    }
}

/// Per-cycle summary of the memory-system extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemPowerReport {
    /// Cache data-array + bus power without narrow-width gating.
    pub baseline_mw_per_cycle: f64,
    /// The same with narrow-width gating.
    pub gated_mw_per_cycle: f64,
    /// Relative reduction, in percent.
    pub reduction_percent: f64,
    /// Fraction of accesses moving narrow values.
    pub narrow_access_fraction: f64,
    /// Fraction of moved bytes that carried no information.
    pub redundant_byte_fraction: f64,
}

impl nwo_obs::MetricSource for MemPowerReport {
    fn collect(&self, registry: &mut nwo_obs::Registry) {
        registry.gauge("baseline_mw_per_cycle", self.baseline_mw_per_cycle);
        registry.gauge("gated_mw_per_cycle", self.gated_mw_per_cycle);
        registry.gauge("reduction_percent", self.reduction_percent);
        registry.gauge("narrow_access_fraction", self.narrow_access_fraction);
        registry.gauge("redundant_byte_fraction", self.redundant_byte_fraction);
    }
}

impl nwo_ckpt::Checkpointable for MemPowerExt {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        w.put_u64(self.bytes_total);
        w.put_u64(self.bytes_active);
        w.put_u64(self.accesses);
        w.put_u64(self.narrow_accesses);
        w.put_f64(self.baseline);
        w.put_f64(self.gated);
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        self.bytes_total = r.take_u64("memext bytes_total")?;
        self.bytes_active = r.take_u64("memext bytes_active")?;
        self.accesses = r.take_u64("memext accesses")?;
        self.narrow_accesses = r.take_u64("memext narrow_accesses")?;
        self.baseline = r.take_f64("memext baseline")?;
        self.gated = r.take_f64("memext gated")?;
        Ok(())
    }
}

impl nwo_ckpt::Checkpointable for MemPowerReport {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        w.put_f64(self.baseline_mw_per_cycle);
        w.put_f64(self.gated_mw_per_cycle);
        w.put_f64(self.reduction_percent);
        w.put_f64(self.narrow_access_fraction);
        w.put_f64(self.redundant_byte_fraction);
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        self.baseline_mw_per_cycle = r.take_f64("memext report baseline")?;
        self.gated_mw_per_cycle = r.take_f64("memext report gated")?;
        self.reduction_percent = r.take_f64("memext report reduction")?;
        self.narrow_access_fraction = r.take_f64("memext report narrow_fraction")?;
        self.redundant_byte_fraction = r.take_f64("memext report redundant_fraction")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_store_gates_array_and_bus() {
        let mut ext = MemPowerExt::new();
        ext.record_store(8, true);
        let r = ext.report(1);
        // 8 bytes baseline vs 2 active bytes on both components.
        assert!((r.baseline_mw_per_cycle - 8.0 * 25.0).abs() < 1e-9);
        assert!((r.gated_mw_per_cycle - 2.0 * 25.0).abs() < 1e-9);
        assert!((r.reduction_percent - 75.0).abs() < 1e-9);
    }

    #[test]
    fn narrow_load_gates_bus_only() {
        let mut ext = MemPowerExt::new();
        ext.record_load(8, true);
        let r = ext.report(1);
        // Array read stays full (8 * 15); bus shrinks to 2 * 10.
        assert!((r.gated_mw_per_cycle - (8.0 * 15.0 + 2.0 * 10.0)).abs() < 1e-9);
        assert!(r.reduction_percent > 0.0 && r.reduction_percent < 75.0);
    }

    #[test]
    fn wide_accesses_save_nothing() {
        let mut ext = MemPowerExt::new();
        ext.record_load(4, false);
        ext.record_store(4, false);
        let r = ext.report(1);
        assert_eq!(r.baseline_mw_per_cycle, r.gated_mw_per_cycle);
        assert_eq!(r.reduction_percent, 0.0);
        assert_eq!(r.redundant_byte_fraction, 0.0);
    }

    #[test]
    fn byte_accesses_cannot_shrink_below_themselves() {
        let mut ext = MemPowerExt::new();
        ext.record_store(1, true);
        assert_eq!(ext.bytes_active, 1);
        assert_eq!(ext.redundant_byte_fraction(), 0.0);
    }

    #[test]
    fn fractions_track_counts() {
        let mut ext = MemPowerExt::new();
        ext.record_load(8, true);
        ext.record_store(8, false);
        let r = ext.report(4);
        assert!((r.narrow_access_fraction - 0.5).abs() < 1e-12);
        // 16 total bytes, 2 + 8 active.
        assert!((r.redundant_byte_fraction - (1.0 - 10.0 / 16.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero-cycle")]
    fn zero_cycles_panics() {
        MemPowerExt::new().report(0);
    }
}
