//! Per-run power accounting for the integer execution unit
//! (paper Section 4.4, Figures 6 and 7).
//!
//! Clock gating never changes timing, so one simulation produces both the
//! baseline and the gated power numbers: every executed operation is
//! recorded once with the gate level the detection hardware would have
//! chosen, and the accumulator tracks baseline (always 64-bit) and gated
//! energies side by side.

use crate::constants::{device_power, Device, MUX_MW, ZERO_DETECT_MW};
use nwo_core::GateLevel;
use nwo_isa::OpClass;

/// The Table 4 device an operation class executes on, or `None` for
/// operations that exercise no integer datapath (`nop`, `halt`).
///
/// Loads, stores, branches and jumps use the adder (effective-address
/// computation / compare), per Section 4.4: "These results include all
/// loads, stores, branches, and other integer execution unit
/// instructions".
pub fn device_for_class(class: OpClass) -> Option<Device> {
    match class {
        OpClass::IntArith | OpClass::Load | OpClass::Store | OpClass::Branch | OpClass::Jump => {
            Some(Device::Adder)
        }
        OpClass::Logic => Some(Device::Logic),
        OpClass::Shift => Some(Device::Shifter),
        OpClass::Mult | OpClass::Div => Some(Device::Multiplier),
        OpClass::System => None,
    }
}

/// The active datapath width of `device` at `level`.
///
/// The multiplier is special (Section 4.3): two 16-bit operands still
/// produce a 32-bit product, so 16-bit gating leaves 32 multiplier bits
/// active, and 33-bit operands would need a 66-bit product — no gating
/// is possible at that level.
fn active_bits(device: Device, level: GateLevel) -> u32 {
    match (device, level) {
        (Device::Multiplier, GateLevel::Gate16) => 32,
        (Device::Multiplier, GateLevel::Gate33) => 64,
        (Device::Multiplier, GateLevel::Full) => 64,
        (_, level) => level.active_bits(),
    }
}

/// Running totals for one simulation.
///
/// # Example
///
/// ```
/// use nwo_power::PowerAccumulator;
/// use nwo_core::GateLevel;
/// use nwo_isa::OpClass;
///
/// let mut acc = PowerAccumulator::new();
/// acc.record_op(OpClass::IntArith, GateLevel::Gate16);
/// acc.record_op(OpClass::IntArith, GateLevel::Full);
/// let report = acc.report(2);
/// assert!(report.gated_mw_per_cycle < report.baseline_mw_per_cycle);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerAccumulator {
    /// Sum of 64-bit device powers over all recorded ops (mW·cycles).
    baseline: f64,
    /// Sum of gated device powers (mW·cycles), not counting overheads.
    gated: f64,
    /// Savings attributable to 16-bit gating.
    saved16: f64,
    /// Savings attributable to 33-bit gating.
    saved33: f64,
    /// Zero-detect energy (per result produced).
    zero_detect: f64,
    /// Mux energy (per gated op).
    mux: f64,
    /// Ops recorded at each gate level: [16, 33, full].
    level_counts: [u64; 3],
    /// Ops recorded per device: [adder, multiplier, logic, shifter].
    device_counts: [u64; 4],
}

/// The per-cycle power summary (the quantities of Figures 6 and 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Baseline integer-unit power, mW per cycle (Figure 7 left bars).
    pub baseline_mw_per_cycle: f64,
    /// Gated integer-unit power including detection/mux overheads,
    /// mW per cycle (Figure 7 right bars).
    pub gated_mw_per_cycle: f64,
    /// Power saved by 16-bit gating, mW per cycle (Figure 6).
    pub saved16_mw_per_cycle: f64,
    /// Power saved by 33-bit gating, mW per cycle (Figure 6).
    pub saved33_mw_per_cycle: f64,
    /// Zero-detect plus mux overhead, mW per cycle (Figure 6
    /// "total extra used").
    pub extra_mw_per_cycle: f64,
    /// saved16 + saved33 − extra (Figure 6 "net savings").
    pub net_saved_mw_per_cycle: f64,
    /// Relative reduction of integer-unit power, in percent
    /// (Section 4.4 reports 54.1% for SPECint95, 57.9% for media).
    pub reduction_percent: f64,
    /// Fraction of recorded ops gated at 16 bits.
    pub gated16_fraction: f64,
    /// Fraction of recorded ops gated at 33 bits.
    pub gated33_fraction: f64,
}

impl nwo_obs::MetricSource for PowerReport {
    fn collect(&self, registry: &mut nwo_obs::Registry) {
        registry.gauge("baseline_mw_per_cycle", self.baseline_mw_per_cycle);
        registry.gauge("gated_mw_per_cycle", self.gated_mw_per_cycle);
        registry.gauge("saved16_mw_per_cycle", self.saved16_mw_per_cycle);
        registry.gauge("saved33_mw_per_cycle", self.saved33_mw_per_cycle);
        registry.gauge("extra_mw_per_cycle", self.extra_mw_per_cycle);
        registry.gauge("net_saved_mw_per_cycle", self.net_saved_mw_per_cycle);
        registry.gauge("reduction_percent", self.reduction_percent);
        registry.gauge("gated16_fraction", self.gated16_fraction);
        registry.gauge("gated33_fraction", self.gated33_fraction);
    }
}

impl PowerAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed integer operation at the gate level the
    /// detection hardware chose for it.
    ///
    /// The zero-detect is charged on every result produced (the detect
    /// logic of Figure 3 sits on the result bus); the widened result mux
    /// is charged only when the op actually gates.
    pub fn record_op(&mut self, class: OpClass, level: GateLevel) {
        let Some(device) = device_for_class(class) else {
            return;
        };
        self.device_counts[device as usize] += 1;
        let full = device_power(device, 64);
        let gated = device_power(device, active_bits(device, level));
        self.baseline += full;
        self.gated += gated;
        self.zero_detect += ZERO_DETECT_MW;
        match level {
            GateLevel::Gate16 => {
                self.level_counts[0] += 1;
                self.saved16 += full - gated;
                self.mux += MUX_MW;
            }
            GateLevel::Gate33 => {
                self.level_counts[1] += 1;
                self.saved33 += full - gated;
                self.mux += MUX_MW;
            }
            GateLevel::Full => {
                self.level_counts[2] += 1;
            }
        }
    }

    /// Number of operations recorded at (gate16, gate33, full).
    pub fn level_counts(&self) -> (u64, u64, u64) {
        (
            self.level_counts[0],
            self.level_counts[1],
            self.level_counts[2],
        )
    }

    /// Total operations recorded.
    pub fn total_ops(&self) -> u64 {
        self.level_counts.iter().sum()
    }

    /// Produces the per-cycle report for a run of `cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn report(&self, cycles: u64) -> PowerReport {
        assert!(cycles > 0, "cannot report power for a zero-cycle run");
        let c = cycles as f64;
        let extra = (self.zero_detect + self.mux) / c;
        let baseline = self.baseline / c;
        let gated = self.gated / c + extra;
        let total = self.total_ops();
        PowerReport {
            baseline_mw_per_cycle: baseline,
            gated_mw_per_cycle: gated,
            saved16_mw_per_cycle: self.saved16 / c,
            saved33_mw_per_cycle: self.saved33 / c,
            extra_mw_per_cycle: extra,
            net_saved_mw_per_cycle: (self.saved16 + self.saved33) / c - extra,
            reduction_percent: if baseline > 0.0 {
                (baseline - gated) / baseline * 100.0
            } else {
                0.0
            },
            gated16_fraction: ratio(self.level_counts[0], total),
            gated33_fraction: ratio(self.level_counts[1], total),
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl nwo_ckpt::Checkpointable for PowerAccumulator {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        w.put_f64(self.baseline);
        w.put_f64(self.gated);
        w.put_f64(self.saved16);
        w.put_f64(self.saved33);
        w.put_f64(self.zero_detect);
        w.put_f64(self.mux);
        for &n in &self.level_counts {
            w.put_u64(n);
        }
        for &n in &self.device_counts {
            w.put_u64(n);
        }
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        self.baseline = r.take_f64("power baseline")?;
        self.gated = r.take_f64("power gated")?;
        self.saved16 = r.take_f64("power saved16")?;
        self.saved33 = r.take_f64("power saved33")?;
        self.zero_detect = r.take_f64("power zero_detect")?;
        self.mux = r.take_f64("power mux")?;
        for n in self.level_counts.iter_mut() {
            *n = r.take_u64("power level count")?;
        }
        for n in self.device_counts.iter_mut() {
            *n = r.take_u64("power device count")?;
        }
        Ok(())
    }
}

impl nwo_ckpt::Checkpointable for PowerReport {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        w.put_f64(self.baseline_mw_per_cycle);
        w.put_f64(self.gated_mw_per_cycle);
        w.put_f64(self.saved16_mw_per_cycle);
        w.put_f64(self.saved33_mw_per_cycle);
        w.put_f64(self.extra_mw_per_cycle);
        w.put_f64(self.net_saved_mw_per_cycle);
        w.put_f64(self.reduction_percent);
        w.put_f64(self.gated16_fraction);
        w.put_f64(self.gated33_fraction);
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        self.baseline_mw_per_cycle = r.take_f64("power report baseline")?;
        self.gated_mw_per_cycle = r.take_f64("power report gated")?;
        self.saved16_mw_per_cycle = r.take_f64("power report saved16")?;
        self.saved33_mw_per_cycle = r.take_f64("power report saved33")?;
        self.extra_mw_per_cycle = r.take_f64("power report extra")?;
        self.net_saved_mw_per_cycle = r.take_f64("power report net_saved")?;
        self.reduction_percent = r.take_f64("power report reduction")?;
        self.gated16_fraction = r.take_f64("power report gated16_fraction")?;
        self.gated33_fraction = r.take_f64("power report gated33_fraction")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_mapping_covers_all_classes() {
        assert_eq!(device_for_class(OpClass::IntArith), Some(Device::Adder));
        assert_eq!(device_for_class(OpClass::Load), Some(Device::Adder));
        assert_eq!(device_for_class(OpClass::Store), Some(Device::Adder));
        assert_eq!(device_for_class(OpClass::Branch), Some(Device::Adder));
        assert_eq!(device_for_class(OpClass::Jump), Some(Device::Adder));
        assert_eq!(device_for_class(OpClass::Logic), Some(Device::Logic));
        assert_eq!(device_for_class(OpClass::Shift), Some(Device::Shifter));
        assert_eq!(device_for_class(OpClass::Mult), Some(Device::Multiplier));
        assert_eq!(device_for_class(OpClass::Div), Some(Device::Multiplier));
        assert_eq!(device_for_class(OpClass::System), None);
    }

    #[test]
    fn fully_gated_add_saves_three_quarters() {
        let mut acc = PowerAccumulator::new();
        acc.record_op(OpClass::IntArith, GateLevel::Gate16);
        let r = acc.report(1);
        assert_eq!(r.baseline_mw_per_cycle, 210.0);
        // 16-bit adder (52.5) + zero-detect (4.2) + mux (3.2).
        assert!((r.gated_mw_per_cycle - 59.9).abs() < 1e-9);
        assert!((r.saved16_mw_per_cycle - 157.5).abs() < 1e-9);
        assert_eq!(r.saved33_mw_per_cycle, 0.0);
        assert!((r.extra_mw_per_cycle - 7.4).abs() < 1e-9);
        assert!((r.net_saved_mw_per_cycle - 150.1).abs() < 1e-9);
    }

    #[test]
    fn ungated_op_still_pays_zero_detect() {
        let mut acc = PowerAccumulator::new();
        acc.record_op(OpClass::IntArith, GateLevel::Full);
        let r = acc.report(1);
        assert_eq!(r.baseline_mw_per_cycle, 210.0);
        assert!((r.gated_mw_per_cycle - 214.2).abs() < 1e-9);
        assert!(
            r.net_saved_mw_per_cycle < 0.0,
            "pure overhead when nothing gates"
        );
    }

    #[test]
    fn gate33_saves_less_than_gate16() {
        let mut a16 = PowerAccumulator::new();
        a16.record_op(OpClass::IntArith, GateLevel::Gate16);
        let mut a33 = PowerAccumulator::new();
        a33.record_op(OpClass::IntArith, GateLevel::Gate33);
        let (r16, r33) = (a16.report(1), a33.report(1));
        assert!(r33.saved33_mw_per_cycle > 0.0);
        assert!(r16.saved16_mw_per_cycle > r33.saved33_mw_per_cycle);
        // 33-bit adder leaves 210*31/64 saved.
        assert!((r33.saved33_mw_per_cycle - 210.0 * 31.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn multiplier_gates_to_32_bits_at_level16() {
        let mut acc = PowerAccumulator::new();
        acc.record_op(OpClass::Mult, GateLevel::Gate16);
        let r = acc.report(1);
        assert!((r.saved16_mw_per_cycle - 1050.0).abs() < 1e-9);
        // At 33 bits the product would need 66 bits: no multiplier gating.
        let mut acc = PowerAccumulator::new();
        acc.record_op(OpClass::Mult, GateLevel::Gate33);
        let r = acc.report(1);
        assert_eq!(r.saved33_mw_per_cycle, 0.0);
    }

    #[test]
    fn system_ops_are_free() {
        let mut acc = PowerAccumulator::new();
        acc.record_op(OpClass::System, GateLevel::Full);
        assert_eq!(acc.total_ops(), 0);
    }

    #[test]
    fn per_cycle_normalisation() {
        let mut acc = PowerAccumulator::new();
        for _ in 0..10 {
            acc.record_op(OpClass::IntArith, GateLevel::Gate16);
        }
        let r = acc.report(5);
        // 10 gated adds over 5 cycles: 2 per cycle.
        assert_eq!(r.baseline_mw_per_cycle, 420.0);
        assert!((r.saved16_mw_per_cycle - 315.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_percent_matches_definition() {
        let mut acc = PowerAccumulator::new();
        acc.record_op(OpClass::IntArith, GateLevel::Gate16);
        acc.record_op(OpClass::IntArith, GateLevel::Full);
        let r = acc.report(2);
        let expect =
            (r.baseline_mw_per_cycle - r.gated_mw_per_cycle) / r.baseline_mw_per_cycle * 100.0;
        assert!((r.reduction_percent - expect).abs() < 1e-12);
    }

    #[test]
    fn fractions_track_counts() {
        let mut acc = PowerAccumulator::new();
        acc.record_op(OpClass::IntArith, GateLevel::Gate16);
        acc.record_op(OpClass::IntArith, GateLevel::Gate33);
        acc.record_op(OpClass::IntArith, GateLevel::Full);
        acc.record_op(OpClass::IntArith, GateLevel::Full);
        let r = acc.report(4);
        assert_eq!(acc.level_counts(), (1, 1, 2));
        assert_eq!(r.gated16_fraction, 0.25);
        assert_eq!(r.gated33_fraction, 0.25);
    }

    #[test]
    #[should_panic(expected = "zero-cycle")]
    fn zero_cycles_panics() {
        PowerAccumulator::new().report(0);
    }
}
