//! Checkpoint round-trip properties for the power accumulators: the
//! restored state produces identical reports and byte-identical re-saves
//! (f64 fields travel as exact bit patterns).

use nwo_ckpt::{Checkpointable, CkptError, SectionReader, SectionWriter};
use nwo_core::GateLevel;
use nwo_isa::OpClass;
use nwo_power::{MemPowerExt, PowerAccumulator};
use proptest::prelude::*;

fn save_bytes(state: &dyn Checkpointable) -> Vec<u8> {
    let mut w = SectionWriter::new();
    state.save(&mut w);
    w.into_bytes()
}

fn restore_from(receiver: &mut dyn Checkpointable, payload: &[u8]) -> Result<(), CkptError> {
    let mut r = SectionReader::new(payload.to_vec());
    receiver.restore(&mut r)?;
    r.finish("test payload")
}

const CLASSES: [OpClass; 6] = [
    OpClass::IntArith,
    OpClass::Logic,
    OpClass::Shift,
    OpClass::Mult,
    OpClass::Load,
    OpClass::Branch,
];

const LEVELS: [GateLevel; 3] = [GateLevel::Gate16, GateLevel::Gate33, GateLevel::Full];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// PowerAccumulator: arbitrary op streams round-trip bit-exactly.
    #[test]
    fn power_accumulator_round_trips(
        ops in prop::collection::vec((0usize..6, 0usize..3), 1..128),
        cycles in 1u64..10_000,
    ) {
        let mut acc = PowerAccumulator::new();
        for &(c, l) in &ops {
            acc.record_op(CLASSES[c], LEVELS[l]);
        }
        let payload = save_bytes(&acc);
        let mut restored = PowerAccumulator::new();
        restore_from(&mut restored, &payload).expect("restores");
        prop_assert_eq!(save_bytes(&restored), payload, "re-save is byte-identical");
        prop_assert_eq!(restored.level_counts(), acc.level_counts());
        prop_assert_eq!(restored.total_ops(), acc.total_ops());
        // Reports (pure f64 arithmetic over the state) agree exactly.
        prop_assert_eq!(restored.report(cycles), acc.report(cycles));
    }

    /// MemPowerExt: arbitrary load/store streams round-trip bit-exactly.
    #[test]
    fn mem_power_ext_round_trips(
        accesses in prop::collection::vec((1u64..9, any::<bool>(), any::<bool>()), 1..128),
        cycles in 1u64..10_000,
    ) {
        let mut ext = MemPowerExt::new();
        for &(bytes, narrow, is_store) in &accesses {
            if is_store {
                ext.record_store(bytes, narrow);
            } else {
                ext.record_load(bytes, narrow);
            }
        }
        let payload = save_bytes(&ext);
        let mut restored = MemPowerExt::new();
        restore_from(&mut restored, &payload).expect("restores");
        prop_assert_eq!(save_bytes(&restored), payload, "re-save is byte-identical");
        prop_assert_eq!(restored.report(cycles), ext.report(cycles));
    }

    /// Reports round-trip through their own Checkpointable impls.
    #[test]
    fn reports_round_trip(
        ops in prop::collection::vec((0usize..6, 0usize..3), 1..64),
        cycles in 1u64..1_000,
    ) {
        let mut acc = PowerAccumulator::new();
        for &(c, l) in &ops {
            acc.record_op(CLASSES[c], LEVELS[l]);
        }
        let report = acc.report(cycles);
        let payload = save_bytes(&report);
        let mut restored = PowerAccumulator::new().report(1);
        restore_from(&mut restored, &payload).expect("restores");
        prop_assert_eq!(restored, report);
    }

    /// Truncation anywhere in a power payload is a typed error.
    #[test]
    fn truncated_power_payload_is_rejected(cut_seed in any::<u64>()) {
        let mut acc = PowerAccumulator::new();
        acc.record_op(OpClass::IntArith, GateLevel::Gate16);
        let payload = save_bytes(&acc);
        let cut = (cut_seed % payload.len() as u64) as usize;
        let mut receiver = PowerAccumulator::new();
        prop_assert!(restore_from(&mut receiver, &payload[..cut]).is_err());
    }
}
