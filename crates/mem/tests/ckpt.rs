//! Checkpoint round-trip properties for the memory hierarchy: restore
//! reproduces the exact state, save-after-restore is byte-identical, and
//! geometry mismatches are typed rejections.

use nwo_ckpt::{Checkpointable, CkptError, SectionReader, SectionWriter};
use nwo_mem::{Hierarchy, HierarchyConfig, MainMemory, Tlb, TlbConfig};
use proptest::prelude::*;

/// Serializes `state` into a fresh payload.
fn save_bytes(state: &dyn Checkpointable) -> Vec<u8> {
    let mut w = SectionWriter::new();
    state.save(&mut w);
    w.into_bytes()
}

/// Restores `payload` into `receiver`, requiring exact consumption.
fn restore_from(receiver: &mut dyn Checkpointable, payload: &[u8]) -> Result<(), CkptError> {
    let mut r = SectionReader::new(payload.to_vec());
    receiver.restore(&mut r)?;
    r.finish("test payload")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// MainMemory: arbitrary writes round-trip through a checkpoint, and
    /// re-saving the restored memory is byte-identical.
    #[test]
    fn main_memory_round_trips(
        writes in prop::collection::vec((0u64..1 << 20, any::<u64>()), 0..32),
    ) {
        let mut mem = MainMemory::new();
        for &(addr, value) in &writes {
            mem.write_u64(addr, value);
        }
        let payload = save_bytes(&mem);
        let mut restored = MainMemory::new();
        restore_from(&mut restored, &payload).expect("restores");
        for &(addr, _) in &writes {
            for i in 0..8 {
                prop_assert_eq!(restored.read_u8(addr + i), mem.read_u8(addr + i));
            }
        }
        prop_assert_eq!(save_bytes(&restored), payload, "re-save is byte-identical");
    }

    /// Hierarchy: a trained cache/TLB tree round-trips, observable via
    /// identical stats and identical hit/miss behaviour on a probe
    /// sequence.
    #[test]
    fn hierarchy_round_trips(
        warm in prop::collection::vec(0u64..1 << 16, 1..64),
        probe in prop::collection::vec(0u64..1 << 16, 1..32),
    ) {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        for &a in &warm {
            h.data_access(a, a & 1 == 0);
            h.inst_access(a & !3);
        }
        let payload = save_bytes(&h);
        let mut restored = Hierarchy::new(HierarchyConfig::default());
        restore_from(&mut restored, &payload).expect("restores");
        prop_assert_eq!(restored.stats(), h.stats());
        prop_assert_eq!(save_bytes(&restored), payload.clone(), "re-save is byte-identical");
        // Same future behaviour: every probe sees the same latency.
        for &a in &probe {
            prop_assert_eq!(restored.data_access(a, false), h.data_access(a, false));
        }
    }

    /// TLB round-trip preserves both contents and counters.
    #[test]
    fn tlb_round_trips(pages in prop::collection::vec(0u64..64, 1..64)) {
        let config = TlbConfig::default();
        let mut tlb = Tlb::new(config);
        for &p in &pages {
            tlb.access(p * 4096);
        }
        let payload = save_bytes(&tlb);
        let mut restored = Tlb::new(config);
        restore_from(&mut restored, &payload).expect("restores");
        prop_assert_eq!(restored.stats(), tlb.stats());
        prop_assert_eq!(save_bytes(&restored), payload.clone());
        for &p in &pages {
            prop_assert_eq!(restored.access(p * 4096), tlb.access(p * 4096));
        }
    }

    /// Truncating a hierarchy payload at any point is a typed error,
    /// never a panic.
    #[test]
    fn truncated_hierarchy_payload_is_rejected(cut_seed in any::<u64>()) {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.data_access(0x1000, true);
        let payload = save_bytes(&h);
        let cut = (cut_seed % payload.len() as u64) as usize;
        let mut receiver = Hierarchy::new(HierarchyConfig::default());
        let err = restore_from(&mut receiver, &payload[..cut]);
        prop_assert!(err.is_err(), "cut at {} must fail", cut);
    }
}

#[test]
fn hierarchy_geometry_mismatch_is_typed() {
    let h = Hierarchy::new(HierarchyConfig::default());
    let payload = save_bytes(&h);
    // A receiver without an L2 disagrees on hierarchy shape.
    let no_l2 = HierarchyConfig {
        l2: None,
        ..Default::default()
    };
    let mut receiver = Hierarchy::new(no_l2);
    match restore_from(&mut receiver, &payload) {
        Err(CkptError::Mismatch { .. }) => {}
        other => panic!("expected Mismatch, got {other:?}"),
    }
}

#[test]
fn tlb_overflow_into_smaller_receiver_is_typed() {
    let config = TlbConfig::default();
    let mut tlb = Tlb::new(config);
    for p in 0..config.entries as u64 {
        tlb.access(p * config.page_bytes);
    }
    let payload = save_bytes(&tlb);
    let mut small = config;
    small.entries /= 2;
    let mut receiver = Tlb::new(small);
    match restore_from(&mut receiver, &payload) {
        Err(CkptError::Malformed(_)) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
}
