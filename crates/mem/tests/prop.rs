//! Property-based tests: memory round-trips and cache/LRU invariants.

use nwo_mem::{Cache, CacheConfig, MainMemory, Tlb, TlbConfig};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Byte-accurate round trip for arbitrary (address, value) writes,
    /// including overlapping and cross-page accesses.
    #[test]
    fn memory_round_trips(
        writes in prop::collection::vec((0u64..1 << 20, any::<u64>()), 1..64),
    ) {
        let mut mem = MainMemory::new();
        let mut model: std::collections::HashMap<u64, u8> = Default::default();
        for &(addr, value) in &writes {
            mem.write_u64(addr, value);
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                model.insert(addr + i as u64, *b);
            }
        }
        for &(addr, _) in &writes {
            for i in 0..8 {
                let expect = model.get(&(addr + i)).copied().unwrap_or(0);
                prop_assert_eq!(mem.read_u8(addr + i), expect);
            }
        }
    }

    /// Immediately re-accessing any address hits, regardless of history.
    #[test]
    fn cache_second_access_hits(
        addrs in prop::collection::vec(0u64..1 << 18, 1..200),
    ) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 4096,
            assoc: 2,
            block_bytes: 32,
            hit_latency: 1,
        });
        for &a in &addrs {
            cache.access(a, false);
            prop_assert!(cache.access(a, false).hit, "address {a:#x}");
            prop_assert!(cache.probe(a));
        }
    }

    /// Miss count is bounded below by compulsory misses (distinct blocks)
    /// and above by total accesses; hits + misses == accesses.
    #[test]
    fn cache_miss_bounds(
        addrs in prop::collection::vec(0u64..1 << 16, 1..300),
    ) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 2048,
            assoc: 4,
            block_bytes: 32,
            hit_latency: 1,
        });
        for &a in &addrs {
            cache.access(a, a & 1 == 0);
        }
        let stats = cache.stats();
        let distinct_blocks: HashSet<u64> = addrs.iter().map(|a| a / 32).collect();
        prop_assert_eq!(stats.accesses(), addrs.len() as u64);
        prop_assert!(stats.misses >= distinct_blocks.len() as u64);
        prop_assert!(stats.hits + stats.misses == addrs.len() as u64);
    }

    /// A working set no larger than one set's associativity never
    /// conflicts: after the first touch, everything stays resident.
    #[test]
    fn cache_small_working_set_never_evicts(
        base in 0u64..1 << 12,
        reps in 1usize..20,
    ) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 4096,
            assoc: 2,
            block_bytes: 64,
            hit_latency: 1,
        });
        // Two blocks mapping to the same set (stride = number of sets *
        // block size), associativity 2: both must stay resident forever.
        let a = base;
        let b = base + 4096 / 2;
        cache.access(a, false);
        cache.access(b, false);
        for _ in 0..reps {
            prop_assert!(cache.access(a, false).hit);
            prop_assert!(cache.access(b, false).hit);
        }
    }

    /// TLB: misses equal distinct pages when capacity is never exceeded.
    #[test]
    fn tlb_compulsory_only_within_capacity(
        pages in prop::collection::vec(0u64..8, 1..100),
    ) {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 8,
            page_bytes: 4096,
            miss_latency: 30,
        });
        for &p in &pages {
            tlb.access(p * 4096 + (p % 7) * 8);
        }
        let distinct: HashSet<u64> = pages.iter().copied().collect();
        prop_assert_eq!(tlb.stats().misses, distinct.len() as u64);
    }
}
