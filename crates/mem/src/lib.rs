#![warn(missing_docs)]

//! Memory subsystem for the `nwo` simulator: sparse main memory, a generic
//! set-associative cache model, TLBs, and the three-level hierarchy used by
//! the HPCA '99 baseline machine (Table 1).
//!
//! The cache models are *timing* models: they track tags, LRU state and
//! dirty bits, and report access latencies, while the actual data always
//! lives in [`MainMemory`]. This mirrors SimpleScalar's split between
//! functional and timing state.
//!
//! # Example
//!
//! ```
//! use nwo_mem::{MainMemory, Hierarchy, HierarchyConfig};
//!
//! let mut mem = MainMemory::new();
//! mem.write_u64(0x1000, 0xdead_beef);
//! assert_eq!(mem.read_u64(0x1000), 0xdead_beef);
//!
//! let mut hier = Hierarchy::new(HierarchyConfig::default());
//! let cold = hier.data_access(0x1000, false);
//! let warm = hier.data_access(0x1000, false);
//! assert!(cold > warm);
//! ```

mod cache;
mod hierarchy;
mod main_memory;
mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyStats};
pub use main_memory::MainMemory;
pub use tlb::{Tlb, TlbConfig, TlbStats};
