//! Sparse, byte-addressable main memory.
//!
//! Backed by a page map so simulated programs can scatter text, data and
//! stack segments across a 64-bit address space without allocating it all.
//! All multi-byte accesses are little-endian and may straddle page
//! boundaries.

use std::collections::HashMap;

/// Size of a backing page in bytes. This is an allocation granule, not an
/// architectural page size (the TLB model has its own page size).
const PAGE_SIZE: u64 = 4096;

/// Sparse 64-bit byte-addressable memory.
///
/// Reads from never-written locations return zero, which matches the
/// zero-initialised BSS behaviour real loaders provide.
///
/// # Example
///
/// ```
/// use nwo_mem::MainMemory;
///
/// let mut mem = MainMemory::new();
/// mem.write_u32(0xfff_fffe, 0x1234_5678); // straddles a page boundary
/// assert_eq!(mem.read_u32(0xfff_fffe), 0x1234_5678);
/// assert_eq!(mem.read_u8(0xfff_ffff), 0x56);
/// ```
#[derive(Clone, Default)]
pub struct MainMemory {
    pages: HashMap<u64, Box<[u8]>>,
}

impl std::fmt::Debug for MainMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MainMemory")
            .field("pages", &self.pages.len())
            .field("bytes", &(self.pages.len() as u64 * PAGE_SIZE))
            .finish()
    }
}

impl MainMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of backing pages currently allocated.
    pub fn allocated_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr / PAGE_SIZE)) {
            Some(page) => page[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the backing page on demand.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
        page[(addr % PAGE_SIZE) as usize] = value;
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        u32::from_le_bytes(bytes)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Copies `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u64)))
            .collect()
    }
}

impl nwo_ckpt::Checkpointable for MainMemory {
    /// Pages are written sorted by page number: `HashMap` iteration
    /// order is nondeterministic, and the checkpoint byte stream must
    /// be identical for identical memory images.
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        let mut numbers: Vec<u64> = self.pages.keys().copied().collect();
        numbers.sort_unstable();
        w.put_u64(PAGE_SIZE);
        w.put_u64(numbers.len() as u64);
        for n in numbers {
            w.put_u64(n);
            w.put_bytes(&self.pages[&n]);
        }
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        let page_size = r.take_u64("memory page size")?;
        if page_size != PAGE_SIZE {
            return Err(nwo_ckpt::CkptError::Mismatch {
                what: "memory page size",
                found: page_size,
                expected: PAGE_SIZE,
            });
        }
        let count = r.take_len(1 << 32, "memory page count")?;
        let mut pages = HashMap::with_capacity(count);
        for _ in 0..count {
            let number = r.take_u64("memory page number")?;
            let bytes = r.take_bytes(PAGE_SIZE, "memory page bytes")?;
            if bytes.len() as u64 != PAGE_SIZE {
                return Err(nwo_ckpt::CkptError::Malformed(format!(
                    "memory page {number:#x} has {} bytes",
                    bytes.len()
                )));
            }
            pages.insert(number, bytes.into_boxed_slice());
        }
        self.pages = pages;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_reads_zero() {
        let mem = MainMemory::new();
        assert_eq!(mem.read_u8(0), 0);
        assert_eq!(mem.read_u64(u64::MAX - 8), 0);
        assert_eq!(mem.allocated_pages(), 0);
    }

    #[test]
    fn byte_round_trip() {
        let mut mem = MainMemory::new();
        mem.write_u8(12345, 0xab);
        assert_eq!(mem.read_u8(12345), 0xab);
        assert_eq!(mem.read_u8(12346), 0);
        assert_eq!(mem.allocated_pages(), 1);
    }

    #[test]
    fn u64_round_trip_is_little_endian() {
        let mut mem = MainMemory::new();
        mem.write_u64(0x100, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u8(0x100), 0x08);
        assert_eq!(mem.read_u8(0x107), 0x01);
        assert_eq!(mem.read_u64(0x100), 0x0102_0304_0506_0708);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = MainMemory::new();
        let addr = PAGE_SIZE - 3;
        mem.write_u64(addr, u64::MAX);
        assert_eq!(mem.read_u64(addr), u64::MAX);
        assert_eq!(mem.allocated_pages(), 2);
    }

    #[test]
    fn write_and_read_bytes() {
        let mut mem = MainMemory::new();
        mem.write_bytes(64, b"hello world");
        assert_eq!(mem.read_bytes(64, 11), b"hello world");
        assert_eq!(mem.read_u8(64 + 11), 0);
    }

    #[test]
    fn u16_and_u32_round_trip() {
        let mut mem = MainMemory::new();
        mem.write_u16(2, 0xbeef);
        mem.write_u32(8, 0xdead_beef);
        assert_eq!(mem.read_u16(2), 0xbeef);
        assert_eq!(mem.read_u32(8), 0xdead_beef);
    }

    #[test]
    fn overwrite_takes_effect() {
        let mut mem = MainMemory::new();
        mem.write_u64(0, 1);
        mem.write_u64(0, 2);
        assert_eq!(mem.read_u64(0), 2);
    }
}
