//! Generic set-associative cache timing model with true-LRU replacement.
//!
//! Only tags, valid and dirty bits are tracked; data lives in
//! [`crate::MainMemory`]. An access reports whether it hit and whether a
//! dirty block was evicted, letting the [`crate::Hierarchy`] compose
//! multi-level latencies.

/// Configuration for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a power of two.
    pub size_bytes: u64,
    /// Associativity (ways per set). Must divide `size_bytes / block_bytes`.
    pub assoc: u32,
    /// Block (line) size in bytes. Must be a power of two.
    pub block_bytes: u64,
    /// Latency of a hit in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// 64 KB, 2-way, 32-byte blocks, 1-cycle hits — the Table 1 L1 shape.
    pub fn l1_table1() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 2,
            block_bytes: 32,
            hit_latency: 1,
        }
    }

    /// 8 MB, 4-way, 32-byte blocks, 12-cycle hits — the Table 1 L2 shape.
    pub fn l2_table1() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024 * 1024,
            assoc: 4,
            block_bytes: 32,
            hit_latency: 12,
        }
    }

    fn num_sets(&self) -> u64 {
        self.size_bytes / self.block_bytes / self.assoc as u64
    }
}

/// Per-cache hit/miss/writeback counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty blocks evicted (write-backs to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses have occurred.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

impl nwo_obs::MetricSource for CacheStats {
    fn collect(&self, registry: &mut nwo_obs::Registry) {
        registry.counter("hits", self.hits);
        registry.counter("misses", self.misses);
        registry.counter("writebacks", self.writebacks);
        registry.gauge("miss_rate", self.miss_rate());
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// Larger is more recently used.
    lru: u64,
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The access hit in this level.
    pub hit: bool,
    /// A dirty victim was evicted (the block must be written back).
    pub writeback: bool,
}

/// A set-associative, write-back, write-allocate cache with true LRU.
///
/// # Example
///
/// ```
/// use nwo_mem::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::l1_table1());
/// assert!(!l1.access(0x40, false).hit); // cold miss
/// assert!(l1.access(0x40, false).hit); // now resident
/// assert!(l1.access(0x44, false).hit); // same 32-byte block
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Builds a cache for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two size or
    /// block size, or associativity that does not divide the block count).
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            config.block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(config.assoc >= 1, "associativity must be at least 1");
        assert_eq!(
            (config.size_bytes / config.block_bytes) % config.assoc as u64,
            0,
            "associativity must divide the number of blocks"
        );
        let sets = vec![vec![Line::default(); config.assoc as usize]; config.num_sets() as usize];
        Cache {
            config,
            sets,
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let block = addr / self.config.block_bytes;
        let set = (block % self.config.num_sets()) as usize;
        let tag = block / self.config.num_sets();
        (set, tag)
    }

    /// Performs an access, allocating the block on a miss (write-allocate).
    ///
    /// Returns whether the access hit and whether a dirty block was evicted.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.tick += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let tick = self.tick;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return AccessOutcome {
                hit: true,
                writeback: false,
            };
        }

        self.stats.misses += 1;
        // Victim: an invalid way if any, else the least recently used.
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("associativity >= 1");
        let writeback = victim.valid && victim.dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            valid: true,
            dirty: is_write,
            tag,
            lru: tick,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// True if the block containing `addr` is resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates all lines and clears statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::default();
            }
        }
        self.stats = CacheStats::default();
        self.tick = 0;
    }
}

impl nwo_ckpt::Checkpointable for Cache {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        w.put_u64(self.sets.len() as u64);
        w.put_u64(self.config.assoc as u64);
        w.put_u64(self.tick);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.misses);
        w.put_u64(self.stats.writebacks);
        for set in &self.sets {
            for line in set {
                w.put_bool(line.valid);
                w.put_bool(line.dirty);
                w.put_u64(line.tag);
                w.put_u64(line.lru);
            }
        }
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        let sets = r.take_u64("cache set count")?;
        if sets != self.sets.len() as u64 {
            return Err(nwo_ckpt::CkptError::Mismatch {
                what: "cache set count",
                found: sets,
                expected: self.sets.len() as u64,
            });
        }
        let assoc = r.take_u64("cache associativity")?;
        if assoc != self.config.assoc as u64 {
            return Err(nwo_ckpt::CkptError::Mismatch {
                what: "cache associativity",
                found: assoc,
                expected: self.config.assoc as u64,
            });
        }
        self.tick = r.take_u64("cache tick")?;
        self.stats.hits = r.take_u64("cache hits")?;
        self.stats.misses = r.take_u64("cache misses")?;
        self.stats.writebacks = r.take_u64("cache writebacks")?;
        for set in &mut self.sets {
            for line in set {
                line.valid = r.take_bool("cache line valid")?;
                line.dirty = r.take_bool("cache line dirty")?;
                line.tag = r.take_u64("cache line tag")?;
                line.lru = r.take_u64("cache line lru")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16-byte blocks = 128 bytes.
        Cache::new(CacheConfig {
            size_bytes: 128,
            assoc: 2,
            block_bytes: 16,
            hit_latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(15, false).hit, "same block");
        assert!(!c.access(16, false).hit, "next block");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds blocks whose block-number % 4 == 0: addresses 0, 64, 128...
        c.access(0, false);
        c.access(64, false);
        c.access(0, false); // touch block 0 again; 64 is now LRU
        c.access(128, false); // evicts 64
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(64, false);
        let out = c.access(128, false); // evicts dirty block 0
        assert!(out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny();
        c.access(0, false);
        c.access(64, false);
        let out = c.access(128, false);
        assert!(!out.writeback);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true); // hit, now dirty
        c.access(64, false);
        let out = c.access(128, false);
        assert!(out.writeback);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(16, false);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.accesses(), 3);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0, true);
        c.reset();
        assert!(!c.probe(0));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn table1_shapes_construct() {
        let l1 = Cache::new(CacheConfig::l1_table1());
        assert_eq!(l1.config().num_sets(), 1024);
        let l2 = Cache::new(CacheConfig::l2_table1());
        assert_eq!(l2.config().num_sets(), 65536);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        Cache::new(CacheConfig {
            size_bytes: 100,
            assoc: 2,
            block_bytes: 16,
            hit_latency: 1,
        });
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64,
            assoc: 1,
            block_bytes: 16,
            hit_latency: 1,
        });
        c.access(0, false);
        c.access(64, false); // same set, evicts block 0
        assert!(!c.probe(0));
        assert!(c.probe(64));
    }
}
