//! The three-level memory hierarchy of the baseline machine (Table 1):
//! split 64 KB L1 I/D caches, a unified 8 MB L2, a 100-cycle main memory,
//! and 128-entry instruction/data TLBs.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::tlb::{Tlb, TlbConfig, TlbStats};

/// Full hierarchy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2. `None` sends L1 misses straight to memory.
    pub l2: Option<CacheConfig>,
    /// Main-memory access latency in cycles.
    pub memory_latency: u64,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
}

impl Default for HierarchyConfig {
    /// The Table 1 baseline: 64K/2-way/32B 1-cycle L1s, 8M/4-way/32B
    /// 12-cycle unified L2, 100-cycle memory, 128-entry 30-cycle TLBs.
    fn default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::l1_table1(),
            l1d: CacheConfig::l1_table1(),
            l2: Some(CacheConfig::l2_table1()),
            memory_latency: 100,
            itlb: TlbConfig::default(),
            dtlb: TlbConfig::default(),
        }
    }
}

/// Snapshot of all hierarchy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 instruction-cache counters.
    pub l1i: CacheStats,
    /// L1 data-cache counters.
    pub l1d: CacheStats,
    /// Unified L2 counters (zeroed when no L2 is configured).
    pub l2: CacheStats,
    /// Instruction TLB counters.
    pub itlb: TlbStats,
    /// Data TLB counters.
    pub dtlb: TlbStats,
}

impl nwo_obs::MetricSource for HierarchyStats {
    fn collect(&self, registry: &mut nwo_obs::Registry) {
        registry.source("l1i", &self.l1i);
        registry.source("l1d", &self.l1d);
        registry.source("l2", &self.l2);
        registry.source("itlb", &self.itlb);
        registry.source("dtlb", &self.dtlb);
    }
}

/// Composed instruction/data memory hierarchy.
///
/// Latency composition: an access always pays the L1 hit latency; on an L1
/// miss it also pays the L2 hit latency; on an L2 miss it pays main-memory
/// latency; TLB misses add their penalty on top. Dirty evictions write back
/// to the next level without stalling the access (a write buffer is
/// assumed, as in SimpleScalar).
///
/// # Example
///
/// ```
/// use nwo_mem::{Hierarchy, HierarchyConfig};
///
/// let mut h = Hierarchy::new(HierarchyConfig::default());
/// // Cold: 1 (L1) + 12 (L2) + 100 (mem) + 30 (TLB) = 143.
/// assert_eq!(h.data_access(0x8000, false), 143);
/// // Warm: 1-cycle L1 hit.
/// assert_eq!(h.data_access(0x8000, false), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Option<Cache>,
    itlb: Tlb,
    dtlb: Tlb,
}

impl Hierarchy {
    /// Builds the hierarchy for `config`.
    pub fn new(config: HierarchyConfig) -> Self {
        Hierarchy {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: config.l2.map(Cache::new),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    fn through_l2(l2: &mut Option<Cache>, memory_latency: u64, addr: u64, is_write: bool) -> u64 {
        match l2 {
            Some(l2) => {
                let out = l2.access(addr, is_write);
                if out.hit {
                    l2.config().hit_latency
                } else {
                    l2.config().hit_latency + memory_latency
                }
            }
            None => memory_latency,
        }
    }

    /// Fetches the instruction word at `addr`; returns total latency.
    pub fn inst_access(&mut self, addr: u64) -> u64 {
        let mut latency = self.itlb.access(addr);
        let out = self.l1i.access(addr, false);
        latency += self.l1i.config().hit_latency;
        if !out.hit {
            latency += Self::through_l2(&mut self.l2, self.config.memory_latency, addr, false);
        }
        if out.writeback {
            // I-cache lines are never dirty, but keep the path uniform.
            Self::through_l2(&mut self.l2, self.config.memory_latency, addr, true);
        }
        latency
    }

    /// Loads (`is_write == false`) or stores to `addr`; returns total latency.
    pub fn data_access(&mut self, addr: u64, is_write: bool) -> u64 {
        let mut latency = self.dtlb.access(addr);
        let out = self.l1d.access(addr, is_write);
        latency += self.l1d.config().hit_latency;
        if !out.hit {
            latency += Self::through_l2(&mut self.l2, self.config.memory_latency, addr, is_write);
        }
        if out.writeback {
            // Victim write-back is buffered; it updates L2 state but adds
            // no latency to this access.
            Self::through_l2(&mut self.l2, self.config.memory_latency, addr, true);
        }
        latency
    }

    /// Warms the hierarchy for one instruction fetch without timing
    /// (used by fast-forward).
    pub fn warm_inst(&mut self, addr: u64) {
        self.itlb.access(addr);
        let out = self.l1i.access(addr, false);
        if !out.hit {
            if let Some(l2) = &mut self.l2 {
                l2.access(addr, false);
            }
        }
    }

    /// Warms the hierarchy for one data access without timing.
    pub fn warm_data(&mut self, addr: u64, is_write: bool) {
        self.dtlb.access(addr);
        let out = self.l1d.access(addr, is_write);
        if !out.hit {
            if let Some(l2) = &mut self.l2 {
                l2.access(addr, is_write);
            }
        }
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.as_ref().map(|c| c.stats()).unwrap_or_default(),
            itlb: self.itlb.stats(),
            dtlb: self.dtlb.stats(),
        }
    }

    /// Invalidates all caches and TLBs and clears statistics.
    pub fn reset(&mut self) {
        self.l1i.reset();
        self.l1d.reset();
        if let Some(l2) = &mut self.l2 {
            l2.reset();
        }
        self.itlb.reset();
        self.dtlb.reset();
    }
}

impl nwo_ckpt::Checkpointable for Hierarchy {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        self.l1i.save(w);
        self.l1d.save(w);
        w.put_bool(self.l2.is_some());
        if let Some(l2) = &self.l2 {
            l2.save(w);
        }
        self.itlb.save(w);
        self.dtlb.save(w);
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        self.l1i.restore(r)?;
        self.l1d.restore(r)?;
        let has_l2 = r.take_bool("hierarchy has L2")?;
        if has_l2 != self.l2.is_some() {
            return Err(nwo_ckpt::CkptError::Mismatch {
                what: "hierarchy L2 presence",
                found: has_l2 as u64,
                expected: self.l2.is_some() as u64,
            });
        }
        if let Some(l2) = &mut self.l2 {
            l2.restore(r)?;
        }
        self.itlb.restore(r)?;
        self.dtlb.restore(r)?;
        Ok(())
    }
}

impl nwo_ckpt::Checkpointable for HierarchyStats {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        for c in [&self.l1i, &self.l1d, &self.l2] {
            w.put_u64(c.hits);
            w.put_u64(c.misses);
            w.put_u64(c.writebacks);
        }
        for t in [&self.itlb, &self.dtlb] {
            w.put_u64(t.hits);
            w.put_u64(t.misses);
        }
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        for c in [&mut self.l1i, &mut self.l1d, &mut self.l2] {
            c.hits = r.take_u64("cache stats hits")?;
            c.misses = r.take_u64("cache stats misses")?;
            c.writebacks = r.take_u64("cache stats writebacks")?;
        }
        for t in [&mut self.itlb, &mut self.dtlb] {
            t.hits = r.take_u64("tlb stats hits")?;
            t.misses = r.take_u64("tlb stats misses")?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit Table 1 tweaks read better
mod tests {
    use super::*;

    #[test]
    fn cold_data_access_pays_full_chain() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        assert_eq!(h.data_access(0, false), 1 + 12 + 100 + 30);
    }

    #[test]
    fn l1_hit_is_one_cycle() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.data_access(0, false);
        assert_eq!(h.data_access(4, false), 1);
    }

    #[test]
    fn l2_hit_after_l1_conflict() {
        // Tiny L1 so we can force an L1 eviction while L2 retains the block.
        let mut cfg = HierarchyConfig::default();
        cfg.l1d = CacheConfig {
            size_bytes: 64,
            assoc: 1,
            block_bytes: 32,
            hit_latency: 1,
        };
        let mut h = Hierarchy::new(cfg);
        h.data_access(0, false); // cold
        h.data_access(64, false); // evicts block 0 from L1; both in L2
                                  // Same TLB page, L1 miss, L2 hit: 1 + 12.
        assert_eq!(h.data_access(0, false), 13);
    }

    #[test]
    fn no_l2_goes_to_memory() {
        let mut cfg = HierarchyConfig::default();
        cfg.l2 = None;
        let mut h = Hierarchy::new(cfg);
        assert_eq!(h.data_access(0, false), 1 + 100 + 30);
    }

    #[test]
    fn inst_and_data_paths_are_independent() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.inst_access(0);
        // Data access to the same address still cold in L1D but hits L2.
        assert_eq!(h.data_access(0, false), 1 + 12 + 30);
    }

    #[test]
    fn warm_paths_touch_state_silently() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.warm_data(0, false);
        h.warm_inst(0x100);
        assert_eq!(h.data_access(0, false), 1);
        assert_eq!(h.inst_access(0x100), 1);
    }

    #[test]
    fn stats_flow_through() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.data_access(0, true);
        h.data_access(0, false);
        let s = h.stats();
        assert_eq!(s.l1d.hits, 1);
        assert_eq!(s.l1d.misses, 1);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.dtlb.misses, 1);
    }

    #[test]
    fn reset_recools_everything() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.data_access(0, false);
        h.reset();
        assert_eq!(h.data_access(0, false), 143);
    }
}
