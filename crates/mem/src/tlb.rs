//! Fully-associative TLB timing model (Table 1: 128 entries, 30-cycle
//! miss penalty).
//!
//! The simulator runs a flat address space, so the TLB never translates —
//! it only charges miss latency, exactly like SimpleScalar's `cache_char`
//! TLB models.

/// TLB geometry and penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Architectural page size in bytes (power of two).
    pub page_bytes: u64,
    /// Extra cycles charged on a miss.
    pub miss_latency: u64,
}

impl Default for TlbConfig {
    /// The Table 1 configuration: 128 entries, fully associative,
    /// 30-cycle miss latency, 8 KB pages (the Alpha page size).
    fn default() -> Self {
        TlbConfig {
            entries: 128,
            page_bytes: 8192,
            miss_latency: 30,
        }
    }
}

/// Per-TLB counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio in `[0, 1]`; zero when idle.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

impl nwo_obs::MetricSource for TlbStats {
    fn collect(&self, registry: &mut nwo_obs::Registry) {
        registry.counter("hits", self.hits);
        registry.counter("misses", self.misses);
        registry.gauge("miss_rate", self.miss_rate());
    }
}

/// Fully-associative TLB with true-LRU replacement.
///
/// # Example
///
/// ```
/// use nwo_mem::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// assert_eq!(tlb.access(0x1234), 30); // cold miss costs 30 cycles
/// assert_eq!(tlb.access(0x1238), 0); // same page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// (virtual page number, last-use tick) pairs.
    entries: Vec<(u64, u64)>,
    stats: TlbStats,
    tick: u64,
}

impl Tlb {
    /// Builds a TLB for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.entries > 0, "TLB must have at least one entry");
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            config,
            entries: Vec::with_capacity(config.entries),
            stats: TlbStats::default(),
            tick: 0,
        }
    }

    /// The configuration this TLB was built with.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Looks up the page containing `addr`, filling on a miss.
    /// Returns the extra latency (0 on a hit, `miss_latency` on a miss).
    pub fn access(&mut self, addr: u64) -> u64 {
        self.tick += 1;
        let vpn = addr / self.config.page_bytes;
        if let Some(entry) = self.entries.iter_mut().find(|(page, _)| *page == vpn) {
            entry.1 = self.tick;
            self.stats.hits += 1;
            return 0;
        }
        self.stats.misses += 1;
        if self.entries.len() < self.config.entries {
            self.entries.push((vpn, self.tick));
        } else {
            let lru = self
                .entries
                .iter_mut()
                .min_by_key(|(_, t)| *t)
                .expect("non-empty");
            *lru = (vpn, self.tick);
        }
        self.config.miss_latency
    }

    /// Drops all translations and statistics.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.stats = TlbStats::default();
        self.tick = 0;
    }
}

impl nwo_ckpt::Checkpointable for Tlb {
    fn save(&self, w: &mut nwo_ckpt::SectionWriter) {
        w.put_u64(self.tick);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.misses);
        w.put_u64(self.entries.len() as u64);
        for &(vpn, tick) in &self.entries {
            w.put_u64(vpn);
            w.put_u64(tick);
        }
    }

    fn restore(&mut self, r: &mut nwo_ckpt::SectionReader) -> Result<(), nwo_ckpt::CkptError> {
        self.tick = r.take_u64("tlb tick")?;
        self.stats.hits = r.take_u64("tlb hits")?;
        self.stats.misses = r.take_u64("tlb misses")?;
        let len = r.take_len(self.config.entries as u64, "tlb entry count")?;
        self.entries.clear();
        for _ in 0..len {
            let vpn = r.take_u64("tlb vpn")?;
            let tick = r.take_u64("tlb entry tick")?;
            self.entries.push((vpn, tick));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_latency: 30,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tiny();
        assert_eq!(t.access(0), 30);
        assert_eq!(t.access(4095), 0);
        assert_eq!(t.access(4096), 30);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn lru_replacement() {
        let mut t = tiny();
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // page 0 touched again
        t.access(8192); // page 2 evicts page 1
        assert_eq!(t.access(0), 0);
        assert_eq!(t.access(4096), 30, "page 1 was evicted");
    }

    #[test]
    fn default_is_table1() {
        let t = Tlb::new(TlbConfig::default());
        assert_eq!(t.config().entries, 128);
        assert_eq!(t.config().miss_latency, 30);
    }

    #[test]
    fn reset_forgets_pages() {
        let mut t = tiny();
        t.access(0);
        t.reset();
        assert_eq!(t.access(0), 30);
    }

    #[test]
    fn miss_rate_computed() {
        let mut t = tiny();
        t.access(0);
        t.access(0);
        assert!((t.stats().miss_rate() - 0.5).abs() < 1e-12);
    }
}
