//! Criterion micro-benchmarks: component-level throughput of the
//! simulator's building blocks, plus end-to-end simulation speed.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nwo_bpred::{ControlInfo, DirKind, DirPredictor, Predictor, PredictorConfig};
use nwo_core::{can_pack, gate_level, slot_result, width64, GatingConfig, PackConfig, WidthTag};
use nwo_isa::{assemble, Emulator, Opcode};
use nwo_mem::{Cache, CacheConfig};
use nwo_sim::{SimConfig, Simulator};
use nwo_workloads::benchmark;
use std::hint::black_box;

fn xorshift_values(n: usize) -> Vec<u64> {
    let mut x = 0x2545_f491_4f6c_dd1du64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Mix in narrow values half the time.
            if x & 1 == 0 {
                x & 0xffff
            } else {
                x
            }
        })
        .collect()
}

fn bench_width_detection(c: &mut Criterion) {
    let values = xorshift_values(4096);
    let mut group = c.benchmark_group("width-detection");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("width64", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &v in &values {
                acc = acc.wrapping_add(width64(black_box(v)));
            }
            acc
        })
    });
    group.bench_function("tag+gate", |b| {
        let cfg = GatingConfig::default();
        b.iter(|| {
            let mut gated = 0u32;
            for pair in values.chunks(2) {
                let level = gate_level(WidthTag::of(pair[0]), WidthTag::of(pair[1]), &cfg);
                gated += level.active_bits();
            }
            gated
        })
    });
    group.finish();
}

fn bench_packing_logic(c: &mut Criterion) {
    let values = xorshift_values(4096);
    let cfg = PackConfig::default();
    let mut group = c.benchmark_group("packing-logic");
    group.throughput(Throughput::Elements((values.len() / 2) as u64));
    group.bench_function("can_pack+slot", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for pair in values.chunks(2) {
                let (a, b2) = (pair[0], pair[1]);
                if can_pack(
                    Opcode::Addq,
                    WidthTag::of(a),
                    WidthTag::of(b2),
                    black_box(&cfg),
                ) {
                    acc = acc.wrapping_add(slot_result(Opcode::Addq, a, b2));
                }
            }
            acc
        })
    });
    group.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch-prediction");
    let pcs: Vec<u64> = (0..1024u64).map(|i| 0x1_0000 + i * 12).collect();
    group.throughput(Throughput::Elements(pcs.len() as u64));
    for (name, kind) in [
        ("bimodal", DirKind::Bimodal { entries: 2048 }),
        (
            "gshare",
            DirKind::GShare {
                entries: 4096,
                history_bits: 12,
            },
        ),
        ("combining", DirKind::Combining),
    ] {
        group.bench_function(name, |b| {
            let mut p = DirPredictor::new(kind);
            b.iter(|| {
                let mut taken = 0u32;
                for &pc in &pcs {
                    taken += p.predict(pc) as u32;
                    p.update(pc, pc & 8 != 0);
                }
                taken
            })
        });
    }
    group.bench_function("full-predictor", |b| {
        let mut p = Predictor::new(PredictorConfig::default());
        let info = ControlInfo {
            is_cond: true,
            is_call: false,
            is_return: false,
            is_indirect: false,
            direct_target: Some(0x4000),
            return_addr: 0,
        };
        b.iter(|| {
            let mut taken = 0u32;
            for &pc in &pcs {
                taken += p.predict(pc, &info).taken as u32;
                p.update(pc, &info, pc & 4 != 0, 0x4000, None);
            }
            taken
        })
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    let addrs: Vec<u64> = (0..4096u64).map(|i| (i * 2654435761) & 0xf_ffff).collect();
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.bench_function("l1-64k-2way", |b| {
        b.iter_batched(
            || Cache::new(CacheConfig::l1_table1()),
            |mut cache| {
                let mut hits = 0u64;
                for &a in &addrs {
                    hits += cache.access(a, a & 3 == 0).hit as u64;
                }
                hits
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let source = {
        let mut s = String::from("main:\n");
        for i in 0..500 {
            s.push_str(&format!(
                "    addq r{}, {}, r{}\n",
                i % 8 + 1,
                i % 200,
                i % 8 + 1
            ));
        }
        s.push_str("    halt\n");
        s
    };
    let mut group = c.benchmark_group("assembler");
    group.throughput(Throughput::Elements(501));
    group.bench_function("assemble-501-instrs", |b| {
        b.iter(|| assemble(black_box(&source)).expect("assembles"))
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let bench = benchmark("perl", 1).expect("known benchmark");
    let icount = {
        let mut emu = Emulator::new(&bench.program);
        emu.run(u64::MAX).expect("halts");
        emu.icount()
    };
    let mut group = c.benchmark_group("end-to-end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(icount));
    group.bench_function("emulator", |b| {
        b.iter(|| {
            let mut emu = Emulator::new(&bench.program);
            emu.run(u64::MAX).expect("halts");
            emu.icount()
        })
    });
    group.bench_function("sim-baseline", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&bench.program, SimConfig::default());
            sim.run(u64::MAX).expect("halts").stats.committed
        })
    });
    group.bench_function("sim-packing", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                &bench.program,
                SimConfig::default().with_packing(PackConfig::with_replay()),
            );
            sim.run(u64::MAX).expect("halts").stats.committed
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_width_detection,
    bench_packing_logic,
    bench_predictors,
    bench_cache,
    bench_assembler,
    bench_end_to_end
);
criterion_main!(benches);
