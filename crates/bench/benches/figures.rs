//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo bench -p nwo-bench --bench figures            # everything
//! cargo bench -p nwo-bench --bench figures -- fig10   # one experiment
//! NWO_SCALE=2 cargo bench -p nwo-bench --bench figures # 4x larger inputs
//! NWO_JOBS=1  cargo bench -p nwo-bench --bench figures # serial run
//! ```
//!
//! Simulations run on a memoizing worker pool (see
//! `docs/benchmarking.md`); each experiment prints a `[name  wall …]`
//! summary line, and the whole run is persisted to
//! `BENCH_harness.json` for perf-trajectory tracking.

use nwo_bench::figures::experiment_names;
use nwo_bench::harness::run_harness;

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-')) // ignore cargo-bench flags like --bench
        .collect();
    let selected: Vec<&str> = if args.is_empty() {
        experiment_names()
    } else {
        args.iter().map(String::as_str).collect()
    };
    // NWO_JOBS=0 (or garbage) aborts up front with the typed error
    // instead of silently running at default parallelism.
    if let Err(e) = nwo_bench::runner::jobs_from_env_checked() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    println!("nwo experiment harness — reproducing Brooks & Martonosi, HPCA 1999");
    match run_harness(&selected) {
        Ok(summary) if summary.failures.is_empty() => {
            println!();
            println!(
                "all {} experiments completed in {:.1}s ({} sims, {} memo hits, {} workers)",
                summary.experiments.len(),
                summary.wall_s,
                summary.sims_run,
                summary.memo_hits,
                summary.jobs
            );
        }
        // The sweep finished and the JSON is on disk, quarantined
        // entries included; the exit code still flags the trouble.
        Ok(summary) => {
            eprintln!();
            for f in &summary.failures {
                eprintln!("quarantined: {} ({}): {}", f.name, f.status, f.detail);
            }
            std::process::exit(3);
        }
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
