//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo bench -p nwo-bench --bench figures            # everything
//! cargo bench -p nwo-bench --bench figures -- fig10   # one experiment
//! NWO_SCALE=2 cargo bench -p nwo-bench --bench figures # 4x larger inputs
//! ```

use nwo_bench::figures::{run_experiment, EXPERIMENTS};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-')) // ignore cargo-bench flags like --bench
        .collect();
    let selected: Vec<&str> = if args.is_empty() {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!("nwo experiment harness — reproducing Brooks & Martonosi, HPCA 1999");
    let start = Instant::now();
    for name in &selected {
        let t = Instant::now();
        if !run_experiment(name) {
            eprintln!("unknown experiment `{name}`; known: {EXPERIMENTS:?}");
            std::process::exit(2);
        }
        println!("[{name} completed in {:.1}s]", t.elapsed().as_secs_f64());
    }
    println!();
    println!(
        "all {} experiments completed in {:.1}s",
        selected.len(),
        start.elapsed().as_secs_f64()
    );
}
