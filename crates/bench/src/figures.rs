//! One function per table/figure of the paper's evaluation, plus the
//! ablations called out in DESIGN.md. Each *builds* a paper-style
//! [`Table`]; [`run_experiment`] emits it (and, with `NWO_CSV=<dir>`,
//! exports the data as CSV).
//!
//! Every experiment submits all of its simulations up front to the
//! [`crate::runner`] worker pool and collects the reports in
//! submission order, so runs parallelize across benchmarks and
//! configurations while the emitted tables stay byte-identical to a
//! serial (`NWO_JOBS=1`) run. Repeated `(benchmark, config)` pairs —
//! the baseline machine appears in most experiments — are served from
//! the runner's memo cache and simulate only once per harness
//! invocation.

use crate::runner::reports;
use crate::table::{f1, pct, spct, Table};
use crate::{
    base_config, by_suite, gating_config, mean, mean_speedup_percent, packing_config,
    replay_config, suite,
};
use nwo_core::{GatingConfig, PackConfig};
use nwo_power::{device_power, Device, MUX_MW, ZERO_DETECT_MW};
use nwo_sim::obs::StallCause;
use nwo_sim::{SimConfig, SimReport};
use nwo_workloads::{Benchmark, Suite};

/// An experiment: builds (but does not emit) its table.
pub type ExperimentFn = fn() -> Table;

/// Name → builder for every experiment, in presentation order. This
/// single table drives listing, validation and dispatch, so the name
/// list and the dispatch logic cannot drift apart.
pub const EXPERIMENTS: [(&str, ExperimentFn); 21] = [
    ("table1", table1),
    ("table4", table4),
    ("fig1", fig1),
    ("fig2", fig2),
    ("fig4", fig4),
    ("fig5", fig5),
    ("fig6", fig6),
    ("fig7", fig7),
    ("loadstat", loadstat),
    ("fig10", fig10_narrow),
    ("fig10wide", fig10_wide),
    ("fig11", fig11),
    ("stalls", stalls),
    ("ablation-gate", ablation_gate),
    ("ablation-degree", ablation_degree),
    ("ablation-neg", ablation_neg),
    ("ablation-zdl", ablation_zdl),
    ("ablation-bpred", ablation_bpred),
    ("ablation-window", ablation_window),
    ("ext-cache", ext_cache),
    ("ablation-spechist", ablation_spechist),
];

/// All experiment names, in presentation order.
pub fn experiment_names() -> Vec<&'static str> {
    EXPERIMENTS.iter().map(|(name, _)| *name).collect()
}

/// Looks an experiment up by name without running it.
pub fn find_experiment(name: &str) -> Option<ExperimentFn> {
    EXPERIMENTS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| *f)
}

/// Builds one experiment's table by name without emitting it.
pub fn build_experiment(name: &str) -> Option<Table> {
    find_experiment(name).map(|f| f())
}

/// Dispatches one experiment by name and emits its table. Returns
/// false for unknown names.
pub fn run_experiment(name: &str) -> bool {
    match build_experiment(name) {
        Some(table) => {
            table.emit();
            true
        }
        None => false,
    }
}

/// Table 1: the baseline configuration (verbatim from `SimConfig`).
pub fn table1() -> Table {
    let c = base_config();
    let h = c.hierarchy;
    let l2 = h.l2.expect("baseline has an L2");
    let mut t = Table::new(
        "Table 1 - Baseline configuration of simulated processor",
        "table1",
        &["parameter", "value"],
    );
    let mut kv = |k: &str, v: String| t.row(vec![k.to_string(), v]);
    kv("RUU size", format!("{} instructions", c.ruu_size));
    kv("LSQ size", c.lsq_size.to_string());
    kv("Fetch queue size", format!("{} instructions", c.ifq_size));
    kv(
        "Fetch width",
        format!("{} instructions/cycle", c.fetch_width),
    );
    kv(
        "Decode width",
        format!("{} instructions/cycle", c.decode_width),
    );
    kv(
        "Issue width",
        format!("{} instructions/cycle (out-of-order)", c.issue_width),
    );
    kv(
        "Commit width",
        format!("{} instructions/cycle (in-order)", c.commit_width),
    );
    kv(
        "Functional units",
        format!(
            "{} integer ALUs, {} integer multiply/divide",
            c.int_alus, c.int_muldiv
        ),
    );
    kv(
        "Branch predictor",
        "combining: 4K 2-bit selector; 1K 3-bit local (10-bit hist); 4K 2-bit global (12-bit hist)"
            .to_string(),
    );
    kv("BTB", "2048-entry, 2-way".to_string());
    kv("Return-address stack", "32-entry".to_string());
    kv(
        "Mispredict penalty",
        format!("{} cycles", c.mispredict_penalty),
    );
    kv(
        "L1 data-cache",
        format!(
            "{}K, {}-way (LRU), {}B blocks, {}-cycle latency",
            h.l1d.size_bytes / 1024,
            h.l1d.assoc,
            h.l1d.block_bytes,
            h.l1d.hit_latency
        ),
    );
    kv(
        "L1 instruction-cache",
        format!(
            "{}K, {}-way (LRU), {}B blocks, {}-cycle latency",
            h.l1i.size_bytes / 1024,
            h.l1i.assoc,
            h.l1i.block_bytes,
            h.l1i.hit_latency
        ),
    );
    kv(
        "L2",
        format!(
            "unified, {}M, {}-way (LRU), {}B blocks, {}-cycle latency",
            l2.size_bytes / 1024 / 1024,
            l2.assoc,
            l2.block_bytes,
            l2.hit_latency
        ),
    );
    kv("Memory", format!("{} cycles", h.memory_latency));
    kv(
        "TLBs",
        format!(
            "{} entry, fully associative, {}-cycle miss latency",
            h.itlb.entries, h.itlb.miss_latency
        ),
    );
    t
}

/// Table 4: functional-unit power at 3.3V / 500MHz (mW).
pub fn table4() -> Table {
    let mut t = Table::new(
        "Table 4 - Estimated power consumption of functional units (mW)",
        "table4",
        &["device", "32-bit", "48-bit", "64-bit"],
    );
    for device in Device::ALL {
        t.row(vec![
            device.name().to_string(),
            f1(device_power(device, 32)),
            f1(device_power(device, 48)),
            f1(device_power(device, 64)),
        ]);
    }
    t.row(vec![
        "Zero-Detect".into(),
        String::new(),
        f1(ZERO_DETECT_MW),
        String::new(),
    ]);
    t.row(vec![
        "Additional Muxes".into(),
        String::new(),
        f1(MUX_MW),
        String::new(),
    ]);
    t
}

/// Figure 1: cumulative % of operations with both operands <= N bits.
pub fn fig1() -> Table {
    let benches = suite();
    let spec: Vec<&Benchmark> = benches
        .iter()
        .filter(|b| b.suite == Suite::SpecInt)
        .collect();
    let reports = reports(spec.iter().map(|b| (*b, base_config())));
    let mut columns: Vec<&str> = vec!["bits"];
    let names: Vec<String> = spec.iter().map(|b| b.name.to_string()).collect();
    columns.extend(names.iter().map(String::as_str));
    columns.push("average");
    let mut t = Table::new(
        "Figure 1 - Cumulative operand bitwidths (SPECint95-like suite)",
        "fig1",
        &columns,
    );
    for bits in [4u32, 8, 12, 16, 20, 24, 28, 32, 33, 36, 40, 48, 56, 64] {
        let mut row = vec![bits.to_string()];
        let vals: Vec<f64> = reports
            .iter()
            .map(|r| r.stats.width_committed.cumulative(bits) * 100.0)
            .collect();
        row.extend(vals.iter().map(|&v| pct(v)));
        row.push(pct(mean(&vals)));
        t.row(row);
    }
    t.note("(paper: ~50% of operations at 16 bits; a jump at 33 bits from");
    t.note(" heap/stack address calculations)");
    t
}

/// Figure 2: % of static instructions whose operand precision crosses
/// the 16-bit line during a run, perfect vs realistic prediction.
pub fn fig2() -> Table {
    let benches = suite();
    let spec: Vec<&Benchmark> = benches
        .iter()
        .filter(|b| b.suite == Suite::SpecInt)
        .collect();
    let reports = reports(spec.iter().flat_map(|b| {
        [
            (*b, base_config().with_perfect_prediction()),
            (*b, base_config()),
        ]
    }));
    let mut t = Table::new(
        "Figure 2 - Operand-precision fluctuation across a run (% of static instructions)",
        "fig2",
        &["benchmark", "perfect", "realistic"],
    );
    let mut perfect_all = Vec::new();
    let mut real_all = Vec::new();
    for (b, pair) in spec.iter().zip(reports.chunks(2)) {
        let p = pair[0].stats.fluctuation.fluctuating_fraction() * 100.0;
        let r = pair[1].stats.fluctuation.fluctuating_fraction() * 100.0;
        perfect_all.push(p);
        real_all.push(r);
        t.row(vec![b.name.to_string(), pct(p), pct(r)]);
    }
    t.row(vec![
        "average".into(),
        pct(mean(&perfect_all)),
        pct(mean(&real_all)),
    ]);
    t.note("(paper: realistic prediction sees more fluctuation because");
    t.note(" wrong-path executions visit uncommon operand values)");
    t
}

fn class_fraction_table(title: &str, csv: &str, threshold33: bool) -> Table {
    let benches = suite();
    let reports = reports(benches.iter().map(|b| (b, base_config())));
    let mut t = Table::new(
        title,
        csv,
        &[
            "benchmark",
            "arith",
            "logic",
            "shift",
            "mult",
            "memory",
            "branch",
            "total",
        ],
    );
    let mut totals = Vec::new();
    for (b, r) in benches.iter().zip(&reports) {
        let bd = &r.stats.breakdown;
        let frac = |slot: usize| {
            if threshold33 {
                bd.narrow33_fraction(slot) * 100.0
            } else {
                bd.narrow16_fraction(slot) * 100.0
            }
        };
        let total = if threshold33 {
            bd.narrow33_total_fraction() * 100.0
        } else {
            bd.narrow16_total_fraction() * 100.0
        };
        totals.push(total);
        t.row(vec![
            b.name.to_string(),
            pct(frac(0)),
            pct(frac(1)),
            pct(frac(2)),
            pct(frac(3)),
            pct(frac(4)),
            pct(frac(5)),
            pct(total),
        ]);
    }
    let (spec, media) = by_suite(&benches, &totals);
    t.note(format!(
        "SPEC avg {}   media avg {}",
        pct(mean(&spec)),
        pct(mean(&media))
    ));
    t
}

/// Figure 4: % of operations with both operands <= 16 bits, by class.
pub fn fig4() -> Table {
    class_fraction_table(
        "Figure 4 - Operations with both operands 16 bits or less (% of all instructions)",
        "fig4",
        false,
    )
}

/// Figure 5: % of operations with both operands <= 33 bits, by class.
pub fn fig5() -> Table {
    class_fraction_table(
        "Figure 5 - Operations with both operands 33 bits or less (% of all instructions)",
        "fig5",
        true,
    )
}

/// Figure 6: net power saved per cycle by clock gating at 16 and 33 bits.
pub fn fig6() -> Table {
    let benches = suite();
    let reports = reports(benches.iter().map(|b| (b, gating_config())));
    let mut t = Table::new(
        "Figure 6 - Net power saved by clock gating at 16 and 33 bits (mW per cycle)",
        "fig6",
        &[
            "benchmark",
            "saved@16",
            "saved@33",
            "extra used",
            "net saved",
        ],
    );
    let mut nets = Vec::new();
    for (b, r) in benches.iter().zip(&reports) {
        let p = &r.power;
        nets.push(p.net_saved_mw_per_cycle);
        t.row(vec![
            b.name.to_string(),
            f1(p.saved16_mw_per_cycle),
            f1(p.saved33_mw_per_cycle),
            f1(p.extra_mw_per_cycle),
            f1(p.net_saved_mw_per_cycle),
        ]);
    }
    let (spec, media) = by_suite(&benches, &nets);
    t.note(format!(
        "SPEC avg {}   media avg {}",
        f1(mean(&spec)),
        f1(mean(&media))
    ));
    t.note("(paper: zero-detect power is small and nearly constant; it never");
    t.note(" exceeds the savings)");
    t
}

/// Figure 7: integer-unit power per cycle, baseline vs gated.
pub fn fig7() -> Table {
    let benches = suite();
    let reports = reports(benches.iter().map(|b| (b, gating_config())));
    let mut t = Table::new(
        "Figure 7 - Power usage of integer unit (mW per cycle)",
        "fig7",
        &["benchmark", "baseline", "gated", "reduction"],
    );
    let mut reductions = Vec::new();
    for (b, r) in benches.iter().zip(&reports) {
        let p = &r.power;
        reductions.push(p.reduction_percent);
        t.row(vec![
            b.name.to_string(),
            f1(p.baseline_mw_per_cycle),
            f1(p.gated_mw_per_cycle),
            pct(p.reduction_percent),
        ]);
    }
    let (spec, media) = by_suite(&benches, &reductions);
    t.note(format!("SPEC avg {}   (paper: 54.1%)", pct(mean(&spec))));
    t.note(format!("media avg {}  (paper: 57.9%)", pct(mean(&media))));
    t
}

/// Section 4.2: gated operations fed directly by a load — the cost of
/// omitting zero-detect on cache fills.
pub fn loadstat() -> Table {
    let benches = suite();
    let reports = reports(benches.iter().map(|b| (b, gating_config())));
    let mut t = Table::new(
        "Section 4.2 - Power-saving instructions with an operand straight from a load",
        "loadstat",
        &["benchmark", "load-fed"],
    );
    let mut fracs = Vec::new();
    for (b, r) in benches.iter().zip(&reports) {
        let f = r.stats.load_operand_fraction() * 100.0;
        fracs.push(f);
        t.row(vec![b.name.to_string(), pct(f)]);
    }
    let (spec, media) = by_suite(&benches, &fracs);
    t.note(format!("SPEC avg {}   (paper: 13.1%)", pct(mean(&spec))));
    t.note(format!("media avg {}  (paper:  1.5%)", pct(mean(&media))));
    t
}

fn fig10_narrow() -> Table {
    fig10(false)
}

fn fig10_wide() -> Table {
    fig10(true)
}

/// Figure 10 (and the Section 5.4 8-wide variant): speedup from
/// operation packing under perfect and realistic prediction.
pub fn fig10(wide: bool) -> Table {
    let (title, csv) = if wide {
        (
            "Section 5.4 - Packing speedup with 8-wide decode (%)",
            "fig10wide",
        )
    } else {
        (
            "Figure 10 - Speedup due to operation packing (4-wide decode, %)",
            "fig10",
        )
    };
    let benches = suite();
    let adapt = |c: SimConfig| if wide { c.with_wide_decode() } else { c };
    // Six machines per benchmark, collected as one chunk.
    let reports = reports(benches.iter().flat_map(|b| {
        [
            (b, adapt(base_config().with_perfect_prediction())),
            (b, adapt(base_config())),
            (b, adapt(packing_config().with_perfect_prediction())),
            (b, adapt(replay_config().with_perfect_prediction())),
            (b, adapt(packing_config())),
            (b, adapt(replay_config())),
        ]
    }));
    let mut t = Table::new(
        title,
        csv,
        &["benchmark", "perf", "perf+rep", "real", "real+rep"],
    );
    let mut rows: Vec<[f64; 4]> = Vec::new();
    let mut pairs_real = Vec::new();
    let mut pairs_perf = Vec::new();
    for (b, chunk) in benches.iter().zip(reports.chunks(6)) {
        let [base_perf, base_real, pack_perf, rep_perf, pack_real, rep_real] = chunk else {
            unreachable!("six jobs per benchmark");
        };
        let sp = |base: &SimReport, opt: &SimReport| {
            (base.stats.cycles as f64 / opt.stats.cycles as f64 - 1.0) * 100.0
        };
        let row = [
            sp(base_perf, pack_perf),
            sp(base_perf, rep_perf),
            sp(base_real, pack_real),
            sp(base_real, rep_real),
        ];
        pairs_perf.push((base_perf.stats.cycles, pack_perf.stats.cycles));
        pairs_real.push((base_real.stats.cycles, pack_real.stats.cycles));
        t.row(vec![
            b.name.to_string(),
            spct(row[0]),
            spct(row[1]),
            spct(row[2]),
            spct(row[3]),
        ]);
        rows.push(row);
    }
    for (label, idx) in [("perfect", 0usize), ("realistic", 2usize)] {
        let col: Vec<f64> = rows.iter().map(|r| r[idx]).collect();
        let (spec, media) = by_suite(&benches, &col);
        t.note(format!(
            "{label} avg: SPEC {}  media {}",
            spct(mean(&spec)),
            spct(mean(&media))
        ));
    }
    t.note(format!(
        "(geomean speedup, realistic: {}; perfect: {})",
        spct(mean_speedup_percent(&pairs_real)),
        spct(mean_speedup_percent(&pairs_perf))
    ));
    if wide {
        t.note("(paper, 8-wide: SPEC 9.9%/6.2% and media 10.3%/10.4% for perfect/realistic)");
    } else {
        t.note("(paper, 4-wide: SPEC 7.1%/4.3% and media 7.6%/8.0% for perfect/realistic)");
    }
    t
}

/// The dominant stall cause of a run, with its share of lost slots.
fn top_stall(r: &SimReport) -> String {
    let (cause, slots) = r
        .stall
        .iter()
        .max_by_key(|&(_, n)| n)
        .expect("StallCause::ALL is non-empty");
    if slots == 0 {
        "-".to_string()
    } else {
        format!("{} {:.0}%", cause.name(), r.stall.fraction(cause) * 100.0)
    }
}

/// Figure 11: IPC of baseline, packed, and 8-issue/8-ALU machines,
/// with the dominant stall cause of each machine alongside (packing
/// pays off exactly where the baseline is FU- or dependence-bound).
pub fn fig11() -> Table {
    let benches = suite();
    let reports = reports(benches.iter().flat_map(|b| {
        [
            (b, base_config()),
            (b, packing_config()),
            (b, base_config().with_eight_issue()),
        ]
    }));
    let mut t = Table::new(
        "Figure 11 - IPC: baseline vs packing vs 8-issue/8-ALU (combining predictor)",
        "fig11",
        &[
            "benchmark",
            "baseline",
            "packed",
            "8-issue",
            "packing capture",
            "base stall",
            "packed stall",
            "8i stall",
        ],
    );
    for (b, chunk) in benches.iter().zip(reports.chunks(3)) {
        let [base, pack, eight] = chunk else {
            unreachable!("three jobs per benchmark");
        };
        // How much of the 8-issue machine's gain the packed 4-issue
        // machine captures.
        let gain_eight = eight.ipc() - base.ipc();
        let gain_pack = pack.ipc() - base.ipc();
        let capture = if gain_eight > 1e-9 {
            format!(
                "{:.0}% of 8-issue gain",
                (gain_pack / gain_eight * 100.0).min(999.0)
            )
        } else {
            "8-issue gains nothing".to_string()
        };
        t.row(vec![
            b.name.to_string(),
            format!("{:.3}", base.ipc()),
            format!("{:.3}", pack.ipc()),
            format!("{:.3}", eight.ipc()),
            capture,
            top_stall(base),
            top_stall(pack),
            top_stall(eight),
        ]);
    }
    t.note("(paper: ijpeg, vortex and the media benchmarks come very close");
    t.note(" to the 8-issue/8-ALU machine's IPC; stall columns show each");
    t.note(" machine's dominant lost-slot cause and its share)");
    t
}

/// Stall attribution: where every lost commit slot of the baseline
/// machine goes, per benchmark. Each cycle that retires fewer than
/// `commit_width` instructions charges the missing slots to exactly one
/// cause, so the cause columns sum to 100% per row and the absolute
/// counts satisfy `sum = commit_width * cycles - committed` (see
/// docs/observability.md for the taxonomy).
pub fn stalls() -> Table {
    let benches = suite();
    let reports = reports(benches.iter().map(|b| (b, base_config())));
    let mut columns = vec!["benchmark".to_string(), "lost/cycle".to_string()];
    columns.extend(StallCause::ALL.iter().map(|c| c.name().to_string()));
    let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Stall attribution - lost commit slots by cause (baseline machine)",
        "stalls",
        &cols,
    );
    for (b, r) in benches.iter().zip(&reports) {
        let mut row = vec![
            b.name.to_string(),
            format!(
                "{:.2}",
                r.stall.total() as f64 / r.stats.cycles.max(1) as f64
            ),
        ];
        row.extend(
            StallCause::ALL
                .iter()
                .map(|&c| pct(r.stall.fraction(c) * 100.0)),
        );
        t.row(row);
    }
    t.note(format!(
        "(slots lost per cycle out of a commit width of {}; cause columns",
        base_config().commit_width
    ));
    t.note(" are shares of lost slots and sum to 100% per row)");
    t
}

/// Ablation: gate at 16 only vs 16+33, with and without ones-detect.
pub fn ablation_gate() -> Table {
    let benches = suite();
    let variants: [(&str, GatingConfig); 4] = [
        ("16+33+ones", GatingConfig::default()),
        (
            "16 only",
            GatingConfig {
                gate33: false,
                ..GatingConfig::default()
            },
        ),
        (
            "33 only",
            GatingConfig {
                gate16: false,
                ..GatingConfig::default()
            },
        ),
        (
            "no ones-det",
            GatingConfig {
                ones_detect: false,
                ..GatingConfig::default()
            },
        ),
    ];
    let reports = reports(benches.iter().flat_map(|b| {
        variants
            .iter()
            .map(move |(_, g)| (b, SimConfig::default().with_gating(*g)))
    }));
    let mut columns = vec!["benchmark"];
    columns.extend(variants.iter().map(|(n, _)| *n));
    let mut t = Table::new(
        "Ablation - gating variants (integer-unit power reduction, %)",
        "ablation-gate",
        &columns,
    );
    for (b, chunk) in benches.iter().zip(reports.chunks(variants.len())) {
        let mut row = vec![b.name.to_string()];
        for r in chunk {
            row.push(pct(r.power.reduction_percent));
        }
        t.row(row);
    }
    t
}

/// Ablation: packing degree 2 vs 4.
pub fn ablation_degree() -> Table {
    let benches = suite();
    let reports = reports(benches.iter().flat_map(|b| {
        [
            (b, base_config()),
            (
                b,
                SimConfig::default().with_packing(PackConfig {
                    degree: 2,
                    ..PackConfig::default()
                }),
            ),
            (b, packing_config()),
        ]
    }));
    let mut t = Table::new(
        "Ablation - packing degree (speedup over baseline, %)",
        "ablation-degree",
        &["benchmark", "degree 2", "degree 4"],
    );
    for (b, chunk) in benches.iter().zip(reports.chunks(3)) {
        let [base, d2, d4] = chunk else {
            unreachable!("three jobs per benchmark");
        };
        let sp = |r: &SimReport| (base.stats.cycles as f64 / r.stats.cycles as f64 - 1.0) * 100.0;
        t.row(vec![b.name.to_string(), spct(sp(d2)), spct(sp(d4))]);
    }
    t
}

/// Ablation: packing with and without negative (ones-detected) operands.
pub fn ablation_neg() -> Table {
    let benches = suite();
    let reports = reports(benches.iter().flat_map(|b| {
        [
            (b, packing_config()),
            (
                b,
                SimConfig::default().with_packing(PackConfig {
                    allow_negative: false,
                    ..PackConfig::default()
                }),
            ),
        ]
    }));
    let mut t = Table::new(
        "Ablation - packing negative operands (packed ops per 1000 issued)",
        "ablation-neg",
        &["benchmark", "with neg", "without neg"],
    );
    for (b, chunk) in benches.iter().zip(reports.chunks(2)) {
        let rate =
            |r: &SimReport| r.stats.pack.packed_ops as f64 / r.stats.issued.max(1) as f64 * 1000.0;
        t.row(vec![
            b.name.to_string(),
            f1(rate(&chunk[0])),
            f1(rate(&chunk[1])),
        ]);
    }
    t
}

/// Ablation: zero-detect on loads on/off (Section 4.2).
pub fn ablation_zdl() -> Table {
    let benches = suite();
    let without_zdl = || {
        let mut cfg = gating_config();
        cfg.zero_detect_loads = false;
        cfg
    };
    let reports = reports(
        benches
            .iter()
            .flat_map(|b| [(b, gating_config()), (b, without_zdl())]),
    );
    let mut t = Table::new(
        "Ablation - zero-detect on loads (power reduction, %)",
        "ablation-zdl",
        &["benchmark", "with", "without"],
    );
    for (b, chunk) in benches.iter().zip(reports.chunks(2)) {
        t.row(vec![
            b.name.to_string(),
            pct(chunk[0].power.reduction_percent),
            pct(chunk[1].power.reduction_percent),
        ]);
    }
    t
}

/// Ablation: branch predictors (baseline IPC).
pub fn ablation_bpred() -> Table {
    use nwo_bpred::{DirKind, PredictorConfig};
    use nwo_sim::PredictorChoice;
    let benches = suite();
    let kinds: [(&str, Option<DirKind>); 5] = [
        ("nottaken", Some(DirKind::NotTaken)),
        ("bimodal", Some(DirKind::Bimodal { entries: 2048 })),
        (
            "gshare",
            Some(DirKind::GShare {
                entries: 4096,
                history_bits: 12,
            }),
        ),
        ("combining", Some(DirKind::Combining)),
        ("perfect", None),
    ];
    let shape = |kind: &Option<DirKind>| {
        let mut cfg = base_config();
        cfg.predictor = match kind {
            None => PredictorChoice::Perfect,
            Some(k) => PredictorChoice::Real(PredictorConfig {
                dir: *k,
                ..PredictorConfig::default()
            }),
        };
        cfg
    };
    let reports = reports(
        benches
            .iter()
            .flat_map(|b| kinds.iter().map(move |(_, kind)| (b, shape(kind)))),
    );
    let mut columns = vec!["benchmark"];
    columns.extend(kinds.iter().map(|(n, _)| *n));
    let mut t = Table::new(
        "Ablation - branch predictors (baseline IPC)",
        "ablation-bpred",
        &columns,
    );
    for (b, chunk) in benches.iter().zip(reports.chunks(kinds.len())) {
        let mut row = vec![b.name.to_string()];
        for r in chunk {
            row.push(format!("{:.3}", r.ipc()));
        }
        t.row(row);
    }
    t
}

/// Ablation: instruction-window (RUU) size vs packing benefit — the
/// paper argues packing opportunity grows as "the RUU is filled with
/// more useful instructions". Speedup of packing over the same-sized
/// baseline at each window size, 8-wide decode (where issue pressure
/// exists).
pub fn ablation_window() -> Table {
    let benches = suite();
    let sizes: [(usize, usize); 4] = [(16, 8), (32, 16), (80, 40), (160, 80)];
    let shape = |mut c: SimConfig, ruu: usize, lsq: usize| {
        c.ruu_size = ruu;
        c.lsq_size = lsq;
        c.with_wide_decode()
    };
    let selected: Vec<&Benchmark> = benches
        .iter()
        .filter(|b| {
            [
                "go",
                "ijpeg",
                "gsm-enc",
                "g721-dec",
                "mpeg2-enc",
                "mpeg2-dec",
            ]
            .contains(&b.name)
        })
        .collect();
    let reports = reports(selected.iter().flat_map(|b| {
        sizes.iter().flat_map(move |&(ruu, lsq)| {
            [
                (*b, shape(base_config(), ruu, lsq)),
                (*b, shape(packing_config(), ruu, lsq)),
            ]
        })
    }));
    let mut columns = vec!["benchmark".to_string()];
    columns.extend(sizes.iter().map(|(r, _)| format!("RUU {r}")));
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Ablation - window size vs packing speedup (8-wide decode, %)",
        "ablation-window",
        &column_refs,
    );
    for (b, chunk) in selected.iter().zip(reports.chunks(2 * sizes.len())) {
        let mut row = vec![b.name.to_string()];
        for pair in chunk.chunks(2) {
            let (base, pack) = (&pair[0], &pair[1]);
            let speedup = (base.stats.cycles as f64 / pack.stats.cycles as f64 - 1.0) * 100.0;
            row.push(spct(speedup));
        }
        t.row(row);
    }
    t.note("(the paper: a fuller RUU gives more opportunities for packing)");
    t
}

/// Extension (the paper's Section 6 future work): narrow-width power
/// savings in the data cache and result bus. Store values with known
/// narrow tags gate the array write and bus; load values gate the
/// result bus after the fill-path zero-detect.
pub fn ext_cache() -> Table {
    let benches = suite();
    let reports = reports(benches.iter().map(|b| (b, gating_config())));
    let mut t = Table::new(
        "Extension (Section 6) - narrow-width savings in the memory system",
        "ext-cache",
        &[
            "benchmark",
            "narrow accesses",
            "redundant bytes",
            "baseline mW",
            "gated mW",
            "reduction",
        ],
    );
    let mut reductions = Vec::new();
    for (b, r) in benches.iter().zip(&reports) {
        let m = &r.mem_ext;
        reductions.push(m.reduction_percent);
        t.row(vec![
            b.name.to_string(),
            pct(m.narrow_access_fraction * 100.0),
            pct(m.redundant_byte_fraction * 100.0),
            f1(m.baseline_mw_per_cycle),
            f1(m.gated_mw_per_cycle),
            pct(m.reduction_percent),
        ]);
    }
    let (spec, media) = by_suite(&benches, &reductions);
    t.note(format!(
        "SPEC avg {}   media avg {}",
        pct(mean(&spec)),
        pct(mean(&media))
    ));
    t.note("(extension model; constants documented in nwo-power::memext,");
    t.note(" not taken from the paper)");
    t
}

/// Ablation: commit-time vs speculative history updating in the
/// combining predictor (accuracy and IPC).
pub fn ablation_spechist() -> Table {
    use nwo_bpred::PredictorConfig;
    use nwo_sim::PredictorChoice;
    let benches = suite();
    let shape = |speculative: bool| {
        let mut cfg = base_config();
        cfg.predictor = PredictorChoice::Real(PredictorConfig {
            speculative_history: speculative,
            ..PredictorConfig::default()
        });
        cfg
    };
    let reports = reports(
        benches
            .iter()
            .flat_map(|b| [(b, shape(false)), (b, shape(true))]),
    );
    let mut t = Table::new(
        "Ablation - speculative branch history (combining predictor)",
        "ablation-spechist",
        &[
            "benchmark",
            "acc commit",
            "acc spec",
            "ipc commit",
            "ipc spec",
        ],
    );
    for (b, chunk) in benches.iter().zip(reports.chunks(2)) {
        let (commit, spec) = (&chunk[0], &chunk[1]);
        t.row(vec![
            b.name.to_string(),
            pct(commit.stats.branch.accuracy() * 100.0),
            pct(spec.stats.branch.accuracy() * 100.0),
            format!("{:.3}", commit.ipc()),
            format!("{:.3}", spec.ipc()),
        ]);
    }
    t.note("(speculative history keeps the global history fresh across the");
    t.note(" many in-flight branches of an 80-entry window)");
    t
}
