//! Parallel, memoizing simulation runner.
//!
//! The experiment harness used to execute every `run(bench, config)`
//! eagerly and serially, re-simulating identical `(benchmark, config)`
//! pairs for every figure that asked for them. This module replaces
//! that with:
//!
//! * a **worker pool** of std threads (`NWO_JOBS` env override,
//!   default: available parallelism) executing simulation jobs, and
//! * a **memo cache** keyed on `(benchmark name, scale, config
//!   fingerprint)` — see [`nwo_sim::SimConfig::fingerprint`] — so each
//!   distinct simulation runs exactly once per harness invocation no
//!   matter how many experiments request it.
//!
//! Experiments submit all of their jobs up front via [`reports`] and
//! collect the results in submission order, which keeps table and CSV
//! output byte-identical to a serial (`NWO_JOBS=1`) run: the simulator
//! is deterministic, so a memoized report is indistinguishable from a
//! fresh one, and ordering is fixed by the caller rather than by
//! completion time.
//!
//! Two further caches sit under the in-memory memo:
//!
//! * a **disk-persistent result cache** (`NWO_CACHE_DIR` env, off by
//!   default) holding serialized [`SimReport`]s keyed on `(benchmark,
//!   scale, config fingerprint, code salt)` — a repeated harness run
//!   answers every simulation from disk, and a rebuilt binary (new
//!   [`nwo_ckpt::code_salt`]) transparently invalidates all of it; and
//! * a **warm-checkpoint cache** (`NWO_WARMUP=n` env, off by default)
//!   sharing one functional fast-forward image per `(benchmark, scale,
//!   [`SimConfig::warm_fingerprint`])` — a config sweep warms each
//!   kernel exactly once, however many machine variants it times.

use crate::run_with_warm_state;
use nwo_ckpt::{with_retry, CacheDir};
use nwo_sim::{SimConfig, SimReport};
use nwo_workloads::Benchmark;
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Memo-cache key: benchmark name, workload scale, config fingerprint.
///
/// The benchmark *name* stands in for the program: the harness always
/// derives a given `(name, scale)` pair from
/// [`nwo_workloads::benchmark`], so the pair identifies the program
/// bytes exactly.
type Key = (&'static str, u32, u64);

/// One job's result slot, shared by the worker and any waiters.
/// `None` until the worker finishes; an `Err` carries a panic message
/// from the simulation (e.g. reference-output divergence).
#[derive(Default)]
struct JobSlot {
    result: Mutex<Option<Result<Arc<SimReport>, String>>>,
    done: Condvar,
}

impl JobSlot {
    fn fill(&self, value: Result<Arc<SimReport>, String>) {
        let mut guard = self.result.lock().unwrap();
        *guard = Some(value);
        self.done.notify_all();
    }
}

/// A handle to a submitted (possibly memoized) simulation.
pub struct JobHandle {
    slot: Arc<JobSlot>,
    /// True when submission found the key already present — the
    /// simulation is (or will be) shared with an earlier submission.
    pub memo_hit: bool,
    /// True when submission was answered directly from the
    /// `NWO_CACHE_DIR` disk cache (no job was enqueued).
    pub disk_hit: bool,
}

impl JobHandle {
    /// Non-blocking probe: `Some` with the finished result, `None`
    /// while the simulation is still queued or running. This is what
    /// lets the serve daemon poll a job under its per-request watchdog
    /// and keep servicing cancel frames instead of parking a thread in
    /// [`JobHandle::result`].
    pub fn try_result(&self) -> Option<Result<Arc<SimReport>, String>> {
        self.slot.result.lock().unwrap().clone()
    }

    /// Blocks until the simulation finishes and returns its report, or
    /// the failure message if the simulation panicked.
    ///
    /// # Errors
    ///
    /// Returns the panic payload of a failed simulation (divergence
    /// from the reference output, simulator deadlock, …).
    pub fn result(&self) -> Result<Arc<SimReport>, String> {
        let mut guard = self.slot.result.lock().unwrap();
        while guard.is_none() {
            guard = self.slot.done.wait(guard).unwrap();
        }
        guard.as_ref().expect("loop exits only when filled").clone()
    }

    /// Blocks until the simulation finishes and returns its report.
    ///
    /// # Panics
    ///
    /// Re-raises a failed simulation's panic message in the waiting
    /// thread, so experiment code keeps its fail-fast behaviour.
    pub fn wait(&self) -> Arc<SimReport> {
        self.result().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Monotonic counters, snapshot-diffed by the harness to report
/// per-experiment work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunnerCounters {
    /// Jobs submitted (hits + misses).
    pub submitted: u64,
    /// Submissions answered from the memo cache (or coalesced onto an
    /// in-flight job).
    pub memo_hits: u64,
    /// Simulations actually executed by a worker.
    pub sims_run: u64,
    /// Submissions answered from the `NWO_CACHE_DIR` disk cache.
    pub disk_hits: u64,
    /// Functional warmups actually executed (`NWO_WARMUP` mode).
    pub warmups_run: u64,
    /// Simulations that reused an already-built warm checkpoint from
    /// this process's in-memory slot.
    pub warm_hits: u64,
    /// Warm checkpoints loaded from the `NWO_CACHE_DIR` disk cache —
    /// warmups some earlier process (or server run) already paid for.
    pub warm_disk_hits: u64,
}

/// A queued simulation.
struct QueuedJob {
    bench: Arc<Benchmark>,
    scale: u32,
    config: SimConfig,
    slot: Arc<JobSlot>,
    /// Disk-cache key to store the finished report under (`None` when
    /// the disk cache is off).
    disk_key: Option<String>,
}

/// Warm-checkpoint cache key: benchmark name, scale, warm fingerprint.
type WarmKey = (&'static str, u32, u64);

/// A slot in the warm-checkpoint cache: workers race to initialize the
/// `OnceLock`, and the losers block on (rather than duplicate) the
/// winner's warmup.
type WarmSlot = Arc<OnceLock<Arc<Vec<u8>>>>;

/// State shared between submitters and workers.
#[derive(Default)]
struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    counters: Mutex<RunnerCounters>,
    /// Disk-persistent report cache (`NWO_CACHE_DIR`), off by default.
    disk: Option<CacheDir>,
    /// Functional-warmup instruction budget (`NWO_WARMUP`), 0 = off.
    warm_insts: u64,
    /// One warm checkpoint per [`WarmKey`]; the `OnceLock` makes
    /// concurrent workers block on (rather than duplicate) a warmup.
    warm: Mutex<HashMap<WarmKey, WarmSlot>>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
}

/// The worker pool plus its memo cache.
pub struct Runner {
    shared: Arc<Shared>,
    memo: Mutex<HashMap<Key, Arc<JobSlot>>>,
    workers: Vec<JoinHandle<()>>,
    jobs: usize,
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("jobs", &self.jobs)
            .field("counters", &self.counters())
            .finish_non_exhaustive()
    }
}

impl Runner {
    /// A pool of exactly `jobs` worker threads (clamped to at least 1),
    /// with no disk cache and no warmup — the fully deterministic
    /// configuration unit tests rely on.
    pub fn with_jobs(jobs: usize) -> Runner {
        Runner::with_options(jobs, None, 0)
    }

    /// A pool with explicit cache/warmup policy: `disk` enables the
    /// persistent report cache, `warm_insts > 0` fast-forwards that many
    /// instructions (sharing one checkpoint per warm fingerprint) before
    /// every timed simulation.
    pub fn with_options(jobs: usize, disk: Option<CacheDir>, warm_insts: u64) -> Runner {
        let jobs = jobs.max(1);
        let shared = Arc::new(Shared {
            disk,
            warm_insts,
            ..Shared::default()
        });
        let workers = (0..jobs)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nwo-runner-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn runner worker")
            })
            .collect();
        Runner {
            shared,
            memo: Mutex::new(HashMap::new()),
            workers,
            jobs,
        }
    }

    /// The process-wide runner used by the experiment harness, sized
    /// from `NWO_JOBS` (default: available parallelism), with the disk
    /// cache from `NWO_CACHE_DIR` and the warmup budget from
    /// `NWO_WARMUP`. The memo cache therefore spans all experiments of
    /// one harness invocation.
    pub fn global() -> &'static Runner {
        static GLOBAL: OnceLock<Runner> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            Runner::with_options(
                jobs_from_env(),
                CacheDir::from_env("NWO_CACHE_DIR"),
                crate::warmup_insts(),
            )
        })
    }

    /// Number of worker threads.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Current counter values.
    pub fn counters(&self) -> RunnerCounters {
        *self.shared.counters.lock().unwrap()
    }

    /// Submits one simulation. If a job with the same `(benchmark name,
    /// scale, fingerprint)` key was already submitted — finished or
    /// still in flight — the returned handle shares its result and no
    /// new simulation is enqueued.
    pub fn submit(&self, bench: &Benchmark, scale: u32, config: SimConfig) -> JobHandle {
        let key: Key = (bench.name, scale, config.fingerprint());
        let (slot, memo_hit) = {
            let mut memo = self.memo.lock().unwrap();
            match memo.get(&key) {
                Some(slot) => (Arc::clone(slot), true),
                None => {
                    let slot = Arc::new(JobSlot::default());
                    memo.insert(key, Arc::clone(&slot));
                    (slot, false)
                }
            }
        };
        {
            let mut counters = self.shared.counters.lock().unwrap();
            counters.submitted += 1;
            if memo_hit {
                counters.memo_hits += 1;
            }
        }
        let mut disk_hit = false;
        if !memo_hit {
            let disk_key = self
                .shared
                .disk
                .as_ref()
                .map(|_| disk_key(bench.name, scale, &config, self.shared.warm_insts));
            let loaded = disk_key.is_some().then(|| {
                let _prof = nwo_sim::obs::span::span("cache-lookup");
                let report = self.load_from_disk(disk_key.as_deref());
                nwo_sim::obs::span::add(if report.is_some() { "hits" } else { "misses" }, 1);
                report
            });
            if let Some(report) = loaded.flatten() {
                self.shared.counters.lock().unwrap().disk_hits += 1;
                disk_hit = true;
                slot.fill(Ok(Arc::new(report)));
            } else {
                let mut queue = self.shared.queue.lock().unwrap();
                queue.jobs.push_back(QueuedJob {
                    bench: Arc::new(bench.clone()),
                    scale,
                    config,
                    slot: Arc::clone(&slot),
                    disk_key,
                });
                drop(queue);
                self.shared.available.notify_one();
            }
        }
        JobHandle {
            slot,
            memo_hit,
            disk_hit,
        }
    }

    /// Attempts to answer a submission from the disk cache. Transient
    /// I/O errors are retried with backoff; any persistent failure —
    /// missing file, I/O error, stale code salt, corruption — is a
    /// miss: the simulation re-runs and overwrites the entry.
    fn load_from_disk(&self, key: Option<&str>) -> Option<SimReport> {
        let disk = self.shared.disk.as_ref()?;
        let key = key?;
        let bytes = with_retry(|| disk.load(key)).ok().flatten()?;
        SimReport::from_ckpt_bytes(&bytes).ok()
    }

    /// Submits every `(benchmark, config)` pair in order and waits for
    /// all of them, returning reports in submission order. With
    /// `NWO_PROGRESS` set (the CLI's `--progress`), one JSON ticker
    /// line per finished job goes to stderr — stdout stays untouched,
    /// preserving the byte-for-byte determinism contract.
    pub fn collect<'a>(
        &self,
        scale: u32,
        jobs: impl IntoIterator<Item = (&'a Benchmark, SimConfig)>,
    ) -> Vec<Arc<SimReport>> {
        let handles: Vec<JobHandle> = jobs
            .into_iter()
            .map(|(bench, config)| self.submit(bench, scale, config))
            .collect();
        let progress = progress_enabled();
        let start = std::time::Instant::now();
        let total = handles.len();
        let mut reports = Vec::with_capacity(total);
        for (done, handle) in handles.iter().enumerate() {
            reports.push(handle.wait());
            if progress {
                let done = done + 1;
                let eta = eta_seconds(start.elapsed().as_secs_f64(), done, total);
                eprintln!(
                    "{}",
                    progress_json("jobs", done, total, &self.counters(), 0, eta)
                );
            }
        }
        reports
    }
}

/// True when the live progress ticker is requested (`NWO_PROGRESS`
/// set and not `0`; the CLI's `--progress` flag sets it).
pub fn progress_enabled() -> bool {
    std::env::var_os("NWO_PROGRESS").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Naive remaining-time estimate: average seconds per finished unit
/// times units left. Zero until something finishes.
pub(crate) fn eta_seconds(elapsed_s: f64, done: usize, total: usize) -> f64 {
    if done == 0 {
        return 0.0;
    }
    elapsed_s / done as f64 * total.saturating_sub(done) as f64
}

/// One line of the live progress stream (stderr, `--progress`): a flat
/// JSON object with a `"t": "progress"` discriminator, the done/total
/// counts for `scope` (`"jobs"` per collected simulation,
/// `"experiments"` per harness experiment), the runner's cumulative
/// cache counters, quarantine count and an ETA in seconds. This is the
/// status payload a future `nwo-serve` daemon will put on the wire.
pub fn progress_json(
    scope: &str,
    done: usize,
    total: usize,
    counters: &RunnerCounters,
    quarantined: usize,
    eta_s: f64,
) -> String {
    format!(
        "{{\"t\": \"progress\", \"scope\": \"{scope}\", \"done\": {done}, \"total\": {total}, \
         \"sims_run\": {}, \"memo_hits\": {}, \"disk_hits\": {}, \"warm_hits\": {}, \
         \"quarantined\": {quarantined}, \"eta_s\": {eta_s:.1}}}",
        counters.sims_run, counters.memo_hits, counters.disk_hits, counters.warm_hits,
    )
}

impl Drop for Runner {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        let bench = Arc::clone(&job.bench);
        let scale = job.scale;
        let config = job.config;
        // One span per executed job: its total across workers is the
        // pool's busy time, which the harness turns into utilization.
        let job_span = nwo_sim::obs::span::labeled_span("sim-job", bench.name);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let warm = (shared.warm_insts > 0).then(|| warm_bytes(shared, &bench, scale, &config));
            run_with_warm_state(&bench, config, warm.as_ref().map(|w| w.as_slice()))
        }))
        .map(Arc::new)
        .map_err(|payload| panic_message(&job.bench, &payload));
        if let (Some(disk), Some(key), Ok(report)) = (&shared.disk, &job.disk_key, &outcome) {
            let _prof = nwo_sim::obs::span::span("cache-store");
            let bytes = report.to_ckpt_bytes();
            if let Err(e) = with_retry(|| disk.store(key, &bytes)) {
                eprintln!("NWO_CACHE_DIR: cannot store {key}: {e}");
            }
        }
        drop(job_span);
        shared.counters.lock().unwrap().sims_run += 1;
        job.slot.fill(outcome);
    }
}

/// Where one `warm_bytes` call got its checkpoint from, for counter
/// attribution.
enum WarmSource {
    /// Another submission already initialized the in-process slot.
    Memo,
    /// Loaded from the persistent cache (`NWO_CACHE_DIR`).
    Disk,
    /// Built by fast-forwarding here (and spilled to disk if enabled).
    Built,
}

/// The warm checkpoint for `(bench, scale, warm fingerprint)`, building
/// it on first use. Concurrent requests for the same key block on one
/// warmup instead of duplicating it, and with `NWO_CACHE_DIR` set the
/// built image is spilled to [`CacheDir`] so sibling processes and
/// server restarts reuse it instead of rewarming.
fn warm_bytes(shared: &Shared, bench: &Benchmark, scale: u32, config: &SimConfig) -> Arc<Vec<u8>> {
    let key: WarmKey = (bench.name, scale, config.warm_fingerprint());
    let cell = {
        let mut warm = shared.warm.lock().unwrap();
        Arc::clone(warm.entry(key).or_default())
    };
    let mut source = WarmSource::Memo;
    let bytes = Arc::clone(cell.get_or_init(|| {
        if let Some(loaded) = load_warm_from_disk(shared, bench.name, scale, config) {
            source = WarmSource::Disk;
            return Arc::new(loaded);
        }
        source = WarmSource::Built;
        let bytes = crate::warm_checkpoint(bench, config, shared.warm_insts);
        if let Some(disk) = &shared.disk {
            let key = warm_disk_key(bench.name, scale, config, shared.warm_insts);
            if let Err(e) = with_retry(|| disk.store(&key, &bytes)) {
                eprintln!("NWO_CACHE_DIR: cannot store {key}: {e}");
            }
        }
        Arc::new(bytes)
    }));
    let mut counters = shared.counters.lock().unwrap();
    match source {
        WarmSource::Memo => counters.warm_hits += 1,
        WarmSource::Disk => counters.warm_disk_hits += 1,
        WarmSource::Built => counters.warmups_run += 1,
    }
    bytes
}

/// Attempts to load a persisted warm checkpoint. `run_with_warm_state`
/// panics on a rejected warm image, so a stale or corrupt disk entry
/// must be detected here and degrade to a rebuild, not a panic:
/// [`nwo_ckpt::CheckpointReader::from_bytes`] re-verifies the container
/// magic, format version, code salt and per-section CRCs.
fn load_warm_from_disk(
    shared: &Shared,
    name: &str,
    scale: u32,
    config: &SimConfig,
) -> Option<Vec<u8>> {
    let disk = shared.disk.as_ref()?;
    let key = warm_disk_key(name, scale, config, shared.warm_insts);
    let bytes = with_retry(|| disk.load(&key)).ok().flatten()?;
    nwo_ckpt::CheckpointReader::from_bytes(&bytes).ok()?;
    Some(bytes)
}

/// Disk key for a persisted warm checkpoint: program identity, the
/// warm-relevant config fingerprint, the warmup budget and the code
/// salt (also embedded in the blob and re-verified on load).
fn warm_disk_key(name: &str, scale: u32, config: &SimConfig, warm_insts: u64) -> String {
    format!(
        "warm-{name}-s{scale}-{:016x}-w{warm_insts}-{:016x}",
        config.warm_fingerprint(),
        nwo_ckpt::code_salt()
    )
}

/// Disk-cache key: every component that can change the report —
/// program identity (name, scale), full config fingerprint, warmup
/// budget, and the binary's code salt (also embedded in the blob and
/// re-verified on load).
fn disk_key(name: &str, scale: u32, config: &SimConfig, warm_insts: u64) -> String {
    format!(
        "report-{name}-s{scale}-{:016x}-w{warm_insts}-{:016x}",
        config.fingerprint(),
        nwo_ckpt::code_salt()
    )
}

/// Extracts a readable message from a worker panic payload.
fn panic_message(bench: &Benchmark, payload: &(dyn std::any::Any + Send)) -> String {
    let detail = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("simulation panicked");
    format!("{}: {detail}", bench.name)
}

/// Worker count from the environment: `NWO_JOBS` when set to a positive
/// integer, otherwise the machine's available parallelism.
///
/// Tolerant fallback for late consumers like [`Runner::global`];
/// entry points that can still report an error should call
/// [`jobs_from_env_checked`] first so `NWO_JOBS=0` fails loudly.
pub fn jobs_from_env() -> usize {
    std::env::var("NWO_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(default_parallelism)
}

/// Machine parallelism, the `NWO_JOBS`-unset default.
fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Validating worker count: unset `NWO_JOBS` means available
/// parallelism, but a set-and-useless value (`0`, or not an integer)
/// is a typed [`nwo_sim::ConfigError`] instead of a silent fallback —
/// the CLI, the bench harness and `nwo serve` all check this up front
/// so a typo'd job count aborts before any simulation starts.
///
/// # Errors
///
/// [`nwo_sim::ConfigError::ZeroParameter`] when `NWO_JOBS` is set but
/// does not parse as a positive integer.
pub fn jobs_from_env_checked() -> Result<usize, nwo_sim::ConfigError> {
    match std::env::var("NWO_JOBS") {
        Err(_) => Ok(default_parallelism()),
        Ok(s) => s.trim().parse::<usize>().ok().filter(|&n| n > 0).ok_or(
            nwo_sim::ConfigError::ZeroParameter {
                what: "NWO_JOBS worker count",
            },
        ),
    }
}

/// Submits `(benchmark, config)` pairs on the [global](Runner::global)
/// runner at the harness scale and returns reports in submission order
/// — the workhorse behind every experiment's figure loop.
pub fn reports<'a>(
    jobs: impl IntoIterator<Item = (&'a Benchmark, SimConfig)>,
) -> Vec<Arc<SimReport>> {
    Runner::global().collect(crate::harness_scale(), jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base_config;
    use nwo_workloads::benchmark;

    /// A small, fast benchmark for runner tests.
    fn small_bench() -> Benchmark {
        benchmark("mpeg2-enc", 0).expect("known benchmark")
    }

    #[test]
    fn eta_extrapolates_average_pace_over_remaining_units() {
        assert_eq!(eta_seconds(10.0, 0, 8), 0.0, "no estimate before data");
        assert!((eta_seconds(10.0, 2, 8) - 30.0).abs() < 1e-12);
        assert_eq!(eta_seconds(10.0, 8, 8), 0.0, "nothing left");
    }

    #[test]
    fn progress_line_is_valid_json_with_every_field() {
        let counters = RunnerCounters {
            submitted: 7,
            sims_run: 5,
            memo_hits: 2,
            disk_hits: 1,
            warmups_run: 4,
            warm_hits: 4,
            warm_disk_hits: 3,
        };
        let line = progress_json("experiments", 3, 7, &counters, 1, 12.34);
        let v = nwo_sim::obs::json::parse(&line).expect("progress line parses");
        assert_eq!(v.get("t").and_then(|x| x.as_str()), Some("progress"));
        assert_eq!(v.get("scope").and_then(|x| x.as_str()), Some("experiments"));
        assert_eq!(v.get("done").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(v.get("total").and_then(|x| x.as_u64()), Some(7));
        assert_eq!(v.get("sims_run").and_then(|x| x.as_u64()), Some(5));
        assert_eq!(v.get("memo_hits").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.get("disk_hits").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("warm_hits").and_then(|x| x.as_u64()), Some(4));
        assert_eq!(v.get("quarantined").and_then(|x| x.as_u64()), Some(1));
        assert!((v.get("eta_s").and_then(|x| x.as_f64()).unwrap() - 12.3).abs() < 1e-9);
    }

    #[test]
    fn memo_hits_identical_fingerprints_and_misses_different_ones() {
        let runner = Runner::with_jobs(2);
        let bench = small_bench();
        let first = runner.submit(&bench, 0, base_config());
        let second = runner.submit(&bench, 0, base_config());
        assert!(!first.memo_hit, "first submission simulates");
        assert!(second.memo_hit, "identical fingerprint is served from memo");
        let a = first.wait();
        let b = second.wait();
        assert!(
            Arc::ptr_eq(&a, &b),
            "memo hit returns the cached SimReport, not a re-run"
        );

        // Any differing field produces a different fingerprint -> miss.
        let mut tweaked = base_config();
        tweaked.ruu_size += 1;
        let third = runner.submit(&bench, 0, tweaked);
        assert!(!third.memo_hit, "a changed field must re-simulate");
        let c = third.wait();
        assert!(!Arc::ptr_eq(&a, &c));

        // A different scale is a different workload -> miss.
        let fourth = runner.submit(&bench, 1, base_config());
        assert!(!fourth.memo_hit, "a changed scale must re-simulate");

        let counters = runner.counters();
        assert_eq!(counters.submitted, 4);
        assert_eq!(counters.memo_hits, 1);
        let _ = fourth.wait();
        assert_eq!(runner.counters().sims_run, 3);
    }

    #[test]
    fn collect_preserves_submission_order() {
        let runner = Runner::with_jobs(4);
        let bench = small_bench();
        let configs = [
            base_config(),
            base_config().with_perfect_prediction(),
            base_config(),
        ];
        let reports = runner.collect(0, configs.iter().map(|c| (&bench, c.clone())));
        assert_eq!(reports.len(), 3);
        assert!(
            Arc::ptr_eq(&reports[0], &reports[2]),
            "duplicate jobs collapse onto one simulation"
        );
        assert_eq!(
            reports[0].stats.committed, reports[1].stats.committed,
            "prediction mode must not change architected work"
        );
        assert_eq!(runner.counters().sims_run, 2);
    }

    #[test]
    fn worker_panics_propagate_to_the_waiter() {
        let runner = Runner::with_jobs(1);
        // Corrupt the expected output so `run` panics in the worker.
        let mut bench = small_bench();
        bench.expected.push(0xdead);
        let handle = runner.submit(&bench, 0, base_config());
        let err = handle.result().expect_err("divergence must surface");
        assert!(
            err.contains("mpeg2-enc"),
            "error names the benchmark: {err}"
        );
    }

    /// A scratch cache directory unique to one test, removed on drop.
    struct ScratchCache(std::path::PathBuf);

    impl ScratchCache {
        fn new(tag: &str) -> ScratchCache {
            let root =
                std::env::temp_dir().join(format!("nwo-runner-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            ScratchCache(root)
        }

        fn dir(&self) -> CacheDir {
            CacheDir::new(&self.0)
        }
    }

    impl Drop for ScratchCache {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn disk_cache_persists_reports_across_runners() {
        let scratch = ScratchCache::new("persist");
        let bench = small_bench();

        let cold = Runner::with_options(1, Some(scratch.dir()), 0);
        let first = cold.submit(&bench, 0, base_config()).wait();
        let counters = cold.counters();
        assert_eq!(counters.sims_run, 1);
        assert_eq!(counters.disk_hits, 0, "cold cache cannot hit");
        drop(cold);

        // A fresh runner (fresh memo) answers the same job from disk.
        let warm = Runner::with_options(1, Some(scratch.dir()), 0);
        let handle = warm.submit(&bench, 0, base_config());
        assert!(!handle.memo_hit, "fresh memo cache has no entry");
        let second = handle.wait();
        let counters = warm.counters();
        assert_eq!(counters.disk_hits, 1, "warm cache answers from disk");
        assert_eq!(counters.sims_run, 0, "no simulation re-runs");
        assert_eq!(second.to_ckpt_bytes(), first.to_ckpt_bytes());

        // A different fingerprint misses the disk cache too.
        let other = warm.submit(&bench, 0, base_config().with_perfect_prediction());
        let _ = other.wait();
        assert_eq!(warm.counters().sims_run, 1);
    }

    #[test]
    fn corrupted_disk_entry_is_a_miss_not_a_panic() {
        let scratch = ScratchCache::new("corrupt");
        let bench = small_bench();
        let key = disk_key(bench.name, 0, &base_config(), 0);
        let dir = scratch.dir();
        dir.store(&key, b"not a checkpoint")
            .expect("stores garbage");

        let runner = Runner::with_options(1, Some(dir), 0);
        let report = runner.submit(&bench, 0, base_config()).wait();
        let counters = runner.counters();
        assert_eq!(counters.disk_hits, 0, "garbage never counts as a hit");
        assert_eq!(counters.sims_run, 1, "the simulation re-runs");
        assert!(report.stats.committed > 0);

        // The re-run overwrote the entry with a valid blob.
        let bytes = scratch
            .dir()
            .load(&key)
            .expect("readable")
            .expect("present");
        assert!(SimReport::from_ckpt_bytes(&bytes).is_ok());
    }

    #[test]
    fn transient_cache_faults_are_retried_through() {
        let scratch = ScratchCache::new("retry");
        let bench = small_bench();

        // Seed the cache with a clean handle.
        let seed = Runner::with_options(1, Some(scratch.dir()), 0);
        let first = seed.submit(&bench, 0, base_config()).wait();
        drop(seed);

        // One injected transient failure per operation: the retry path
        // absorbs it and the run still answers from disk.
        let flaky = CacheDir::with_injected_faults(&scratch.0, 1);
        let runner = Runner::with_options(1, Some(flaky), 0);
        let handle = runner.submit(&bench, 0, base_config());
        let report = handle.wait();
        let counters = runner.counters();
        assert_eq!(counters.disk_hits, 1, "retry turned the fault into a hit");
        assert_eq!(counters.sims_run, 0, "no simulation re-ran");
        assert_eq!(report.to_ckpt_bytes(), first.to_ckpt_bytes());
    }

    #[test]
    fn exhausted_retries_fall_back_to_simulation() {
        let scratch = ScratchCache::new("retry-miss");
        let bench = small_bench();
        // More faults than load retries (3) plus store retries (3): both
        // the read and the write-back fail, yet the job still completes.
        let flaky = CacheDir::with_injected_faults(&scratch.0, 6);
        let runner = Runner::with_options(1, Some(flaky), 0);
        let report = runner.submit(&bench, 0, base_config()).wait();
        let counters = runner.counters();
        assert_eq!(counters.disk_hits, 0);
        assert_eq!(counters.sims_run, 1, "persistent failure degrades to a run");
        assert!(report.stats.committed > 0);
    }

    #[test]
    fn config_sweep_warms_each_kernel_exactly_once() {
        let runner = Runner::with_options(2, None, 500);
        let bench = small_bench();
        // Three machine variants that share warm state (hierarchy and
        // predictor identical; only the optimization mode differs).
        let configs = [
            crate::base_config(),
            crate::gating_config(),
            crate::packing_config(),
        ];
        assert_eq!(
            configs[0].warm_fingerprint(),
            configs[1].warm_fingerprint(),
            "sweep members share warm state"
        );
        let reports = runner.collect(0, configs.iter().map(|c| (&bench, c.clone())));
        assert_eq!(reports.len(), 3);
        let counters = runner.counters();
        assert_eq!(counters.sims_run, 3, "three distinct fingerprints");
        assert_eq!(counters.warmups_run, 1, "one shared fast-forward");
        assert_eq!(counters.warm_hits, 2, "the other two reuse it");
        // run_with_warm_state verified architected output internally;
        // the warmed runs also agree with each other.
        assert_eq!(reports[0].out_quads, reports[1].out_quads);
    }

    #[test]
    fn warm_checkpoints_persist_across_runners() {
        let scratch = ScratchCache::new("warm-persist");
        let bench = small_bench();

        // Cold: the warmup runs once and spills its image to disk.
        let cold = Runner::with_options(1, Some(scratch.dir()), 500);
        let first = cold.submit(&bench, 0, base_config()).wait();
        let counters = cold.counters();
        assert_eq!(counters.warmups_run, 1, "cold run pays the warmup");
        assert_eq!(counters.warm_disk_hits, 0);
        let key = warm_disk_key(bench.name, 0, &base_config(), 500);
        assert!(
            scratch.dir().load(&key).unwrap().is_some(),
            "warm image spilled under {key}"
        );
        drop(cold);

        // A fresh runner ("server restart"): different config same warm
        // fingerprint, so the memo would miss — the disk answers instead
        // and no rewarm runs. (The result cache key differs, so the
        // simulation itself re-runs and must still verify.)
        let warm = Runner::with_options(1, Some(scratch.dir()), 500);
        let second = warm.submit(&bench, 0, crate::gating_config()).wait();
        let counters = warm.counters();
        assert_eq!(counters.warmups_run, 0, "restart reuses the spilled image");
        assert_eq!(counters.warm_disk_hits, 1);
        assert_eq!(counters.sims_run, 1);
        assert_eq!(
            first.stats.committed, second.stats.committed,
            "warm source must not change architected work"
        );
    }

    #[test]
    fn corrupt_warm_checkpoint_degrades_to_a_rebuild() {
        let scratch = ScratchCache::new("warm-corrupt");
        let bench = small_bench();
        let key = warm_disk_key(bench.name, 0, &base_config(), 500);
        let dir = scratch.dir();
        dir.store(&key, b"not a checkpoint")
            .expect("stores garbage");

        // `run_with_warm_state` panics on a bad warm image, so this only
        // passes if validation rejected the blob before use.
        let runner = Runner::with_options(1, Some(dir), 500);
        let report = runner.submit(&bench, 0, base_config()).wait();
        let counters = runner.counters();
        assert_eq!(counters.warm_disk_hits, 0, "garbage never counts as a hit");
        assert_eq!(counters.warmups_run, 1, "the warmup re-runs");
        assert!(report.stats.committed > 0);

        // The rebuild overwrote the entry with a valid image.
        let bytes = scratch
            .dir()
            .load(&key)
            .expect("readable")
            .expect("present");
        assert!(nwo_ckpt::CheckpointReader::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn try_result_is_none_until_done_then_some() {
        let runner = Runner::with_jobs(1);
        let bench = small_bench();
        let handle = runner.submit(&bench, 0, base_config());
        // May or may not be finished yet; after wait() it must be Some.
        let report = handle.wait();
        let polled = handle
            .try_result()
            .expect("finished job polls as Some")
            .expect("successful job");
        assert!(Arc::ptr_eq(&report, &polled));
        assert!(!handle.disk_hit, "no disk cache configured");
    }

    #[test]
    fn jobs_from_env_parses_and_defaults() {
        // Not exercised via the env var itself (tests run in parallel in
        // one process); with_jobs clamps instead.
        assert_eq!(Runner::with_jobs(0).jobs(), 1);
        assert!(jobs_from_env() >= 1);
    }
}
