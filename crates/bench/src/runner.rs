//! Parallel, memoizing simulation runner.
//!
//! The experiment harness used to execute every `run(bench, config)`
//! eagerly and serially, re-simulating identical `(benchmark, config)`
//! pairs for every figure that asked for them. This module replaces
//! that with:
//!
//! * a **worker pool** of std threads (`NWO_JOBS` env override,
//!   default: available parallelism) executing simulation jobs, and
//! * a **memo cache** keyed on `(benchmark name, scale, config
//!   fingerprint)` — see [`nwo_sim::SimConfig::fingerprint`] — so each
//!   distinct simulation runs exactly once per harness invocation no
//!   matter how many experiments request it.
//!
//! Experiments submit all of their jobs up front via [`reports`] and
//! collect the results in submission order, which keeps table and CSV
//! output byte-identical to a serial (`NWO_JOBS=1`) run: the simulator
//! is deterministic, so a memoized report is indistinguishable from a
//! fresh one, and ordering is fixed by the caller rather than by
//! completion time.

use crate::run;
use nwo_sim::{SimConfig, SimReport};
use nwo_workloads::Benchmark;
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Memo-cache key: benchmark name, workload scale, config fingerprint.
///
/// The benchmark *name* stands in for the program: the harness always
/// derives a given `(name, scale)` pair from
/// [`nwo_workloads::benchmark`], so the pair identifies the program
/// bytes exactly.
type Key = (&'static str, u32, u64);

/// One job's result slot, shared by the worker and any waiters.
/// `None` until the worker finishes; an `Err` carries a panic message
/// from the simulation (e.g. reference-output divergence).
#[derive(Default)]
struct JobSlot {
    result: Mutex<Option<Result<Arc<SimReport>, String>>>,
    done: Condvar,
}

impl JobSlot {
    fn fill(&self, value: Result<Arc<SimReport>, String>) {
        let mut guard = self.result.lock().unwrap();
        *guard = Some(value);
        self.done.notify_all();
    }
}

/// A handle to a submitted (possibly memoized) simulation.
pub struct JobHandle {
    slot: Arc<JobSlot>,
    /// True when submission found the key already present — the
    /// simulation is (or will be) shared with an earlier submission.
    pub memo_hit: bool,
}

impl JobHandle {
    /// Blocks until the simulation finishes and returns its report, or
    /// the failure message if the simulation panicked.
    ///
    /// # Errors
    ///
    /// Returns the panic payload of a failed simulation (divergence
    /// from the reference output, simulator deadlock, …).
    pub fn result(&self) -> Result<Arc<SimReport>, String> {
        let mut guard = self.slot.result.lock().unwrap();
        while guard.is_none() {
            guard = self.slot.done.wait(guard).unwrap();
        }
        guard.as_ref().expect("loop exits only when filled").clone()
    }

    /// Blocks until the simulation finishes and returns its report.
    ///
    /// # Panics
    ///
    /// Re-raises a failed simulation's panic message in the waiting
    /// thread, so experiment code keeps its fail-fast behaviour.
    pub fn wait(&self) -> Arc<SimReport> {
        self.result().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Monotonic counters, snapshot-diffed by the harness to report
/// per-experiment work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunnerCounters {
    /// Jobs submitted (hits + misses).
    pub submitted: u64,
    /// Submissions answered from the memo cache (or coalesced onto an
    /// in-flight job).
    pub memo_hits: u64,
    /// Simulations actually executed by a worker.
    pub sims_run: u64,
}

/// A queued simulation.
struct QueuedJob {
    bench: Arc<Benchmark>,
    config: SimConfig,
    slot: Arc<JobSlot>,
}

/// State shared between submitters and workers.
#[derive(Default)]
struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    counters: Mutex<RunnerCounters>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
}

/// The worker pool plus its memo cache.
pub struct Runner {
    shared: Arc<Shared>,
    memo: Mutex<HashMap<Key, Arc<JobSlot>>>,
    workers: Vec<JoinHandle<()>>,
    jobs: usize,
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("jobs", &self.jobs)
            .field("counters", &self.counters())
            .finish_non_exhaustive()
    }
}

impl Runner {
    /// A pool of exactly `jobs` worker threads (clamped to at least 1).
    pub fn with_jobs(jobs: usize) -> Runner {
        let jobs = jobs.max(1);
        let shared = Arc::new(Shared::default());
        let workers = (0..jobs)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nwo-runner-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn runner worker")
            })
            .collect();
        Runner {
            shared,
            memo: Mutex::new(HashMap::new()),
            workers,
            jobs,
        }
    }

    /// The process-wide runner used by the experiment harness, sized
    /// from `NWO_JOBS` (default: available parallelism). The memo cache
    /// therefore spans all experiments of one harness invocation.
    pub fn global() -> &'static Runner {
        static GLOBAL: OnceLock<Runner> = OnceLock::new();
        GLOBAL.get_or_init(|| Runner::with_jobs(jobs_from_env()))
    }

    /// Number of worker threads.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Current counter values.
    pub fn counters(&self) -> RunnerCounters {
        *self.shared.counters.lock().unwrap()
    }

    /// Submits one simulation. If a job with the same `(benchmark name,
    /// scale, fingerprint)` key was already submitted — finished or
    /// still in flight — the returned handle shares its result and no
    /// new simulation is enqueued.
    pub fn submit(&self, bench: &Benchmark, scale: u32, config: SimConfig) -> JobHandle {
        let key: Key = (bench.name, scale, config.fingerprint());
        let (slot, memo_hit) = {
            let mut memo = self.memo.lock().unwrap();
            match memo.get(&key) {
                Some(slot) => (Arc::clone(slot), true),
                None => {
                    let slot = Arc::new(JobSlot::default());
                    memo.insert(key, Arc::clone(&slot));
                    (slot, false)
                }
            }
        };
        {
            let mut counters = self.shared.counters.lock().unwrap();
            counters.submitted += 1;
            if memo_hit {
                counters.memo_hits += 1;
            }
        }
        if !memo_hit {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.jobs.push_back(QueuedJob {
                bench: Arc::new(bench.clone()),
                config,
                slot: Arc::clone(&slot),
            });
            drop(queue);
            self.shared.available.notify_one();
        }
        JobHandle { slot, memo_hit }
    }

    /// Submits every `(benchmark, config)` pair in order and waits for
    /// all of them, returning reports in submission order.
    pub fn collect<'a>(
        &self,
        scale: u32,
        jobs: impl IntoIterator<Item = (&'a Benchmark, SimConfig)>,
    ) -> Vec<Arc<SimReport>> {
        let handles: Vec<JobHandle> = jobs
            .into_iter()
            .map(|(bench, config)| self.submit(bench, scale, config))
            .collect();
        handles.iter().map(JobHandle::wait).collect()
    }
}

impl Drop for Runner {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        let bench = Arc::clone(&job.bench);
        let config = job.config;
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| run(&bench, config)))
            .map(Arc::new)
            .map_err(|payload| panic_message(&job.bench, &payload));
        shared.counters.lock().unwrap().sims_run += 1;
        job.slot.fill(outcome);
    }
}

/// Extracts a readable message from a worker panic payload.
fn panic_message(bench: &Benchmark, payload: &(dyn std::any::Any + Send)) -> String {
    let detail = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("simulation panicked");
    format!("{}: {detail}", bench.name)
}

/// Worker count from the environment: `NWO_JOBS` when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn jobs_from_env() -> usize {
    std::env::var("NWO_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Submits `(benchmark, config)` pairs on the [global](Runner::global)
/// runner at the harness scale and returns reports in submission order
/// — the workhorse behind every experiment's figure loop.
pub fn reports<'a>(
    jobs: impl IntoIterator<Item = (&'a Benchmark, SimConfig)>,
) -> Vec<Arc<SimReport>> {
    Runner::global().collect(crate::harness_scale(), jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base_config;
    use nwo_workloads::benchmark;

    /// A small, fast benchmark for runner tests.
    fn small_bench() -> Benchmark {
        benchmark("mpeg2-enc", 0).expect("known benchmark")
    }

    #[test]
    fn memo_hits_identical_fingerprints_and_misses_different_ones() {
        let runner = Runner::with_jobs(2);
        let bench = small_bench();
        let first = runner.submit(&bench, 0, base_config());
        let second = runner.submit(&bench, 0, base_config());
        assert!(!first.memo_hit, "first submission simulates");
        assert!(second.memo_hit, "identical fingerprint is served from memo");
        let a = first.wait();
        let b = second.wait();
        assert!(
            Arc::ptr_eq(&a, &b),
            "memo hit returns the cached SimReport, not a re-run"
        );

        // Any differing field produces a different fingerprint -> miss.
        let mut tweaked = base_config();
        tweaked.ruu_size += 1;
        let third = runner.submit(&bench, 0, tweaked);
        assert!(!third.memo_hit, "a changed field must re-simulate");
        let c = third.wait();
        assert!(!Arc::ptr_eq(&a, &c));

        // A different scale is a different workload -> miss.
        let fourth = runner.submit(&bench, 1, base_config());
        assert!(!fourth.memo_hit, "a changed scale must re-simulate");

        let counters = runner.counters();
        assert_eq!(counters.submitted, 4);
        assert_eq!(counters.memo_hits, 1);
        let _ = fourth.wait();
        assert_eq!(runner.counters().sims_run, 3);
    }

    #[test]
    fn collect_preserves_submission_order() {
        let runner = Runner::with_jobs(4);
        let bench = small_bench();
        let configs = [
            base_config(),
            base_config().with_perfect_prediction(),
            base_config(),
        ];
        let reports = runner.collect(0, configs.iter().map(|c| (&bench, c.clone())));
        assert_eq!(reports.len(), 3);
        assert!(
            Arc::ptr_eq(&reports[0], &reports[2]),
            "duplicate jobs collapse onto one simulation"
        );
        assert_eq!(
            reports[0].stats.committed, reports[1].stats.committed,
            "prediction mode must not change architected work"
        );
        assert_eq!(runner.counters().sims_run, 2);
    }

    #[test]
    fn worker_panics_propagate_to_the_waiter() {
        let runner = Runner::with_jobs(1);
        // Corrupt the expected output so `run` panics in the worker.
        let mut bench = small_bench();
        bench.expected.push(0xdead);
        let handle = runner.submit(&bench, 0, base_config());
        let err = handle.result().expect_err("divergence must surface");
        assert!(
            err.contains("mpeg2-enc"),
            "error names the benchmark: {err}"
        );
    }

    #[test]
    fn jobs_from_env_parses_and_defaults() {
        // Not exercised via the env var itself (tests run in parallel in
        // one process); with_jobs clamps instead.
        assert_eq!(Runner::with_jobs(0).jobs(), 1);
        assert!(jobs_from_env() >= 1);
    }
}
