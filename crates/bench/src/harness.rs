//! Experiment-harness driver: runs a selection of experiments on the
//! global [`crate::runner::Runner`], prints one summary line per
//! experiment (wall-clock, simulations run, memo hits), and persists a
//! machine-readable timing summary to `BENCH_harness.json` so future
//! changes have a perf trajectory to regress against.
//!
//! The JSON schema (`schema` bumps on incompatible change):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "jobs": 8,            // worker threads (NWO_JOBS)
//!   "scale": 0,           // NWO_SCALE workload bump
//!   "wall_s": 12.34,      // whole-run wall-clock
//!   "sims_run": 120,      // distinct simulations executed
//!   "memo_hits": 96,      // submissions served from the memo cache
//!   "disk_hits": 0,       // submissions served from NWO_CACHE_DIR
//!   "warmups_run": 0,     // functional warmups executed (NWO_WARMUP)
//!   "warm_hits": 0,       // simulations reusing a warm checkpoint
//!   "experiments": [
//!     {"name": "fig1", "wall_s": 0.81, "sims_run": 8, "memo_hits": 0,
//!      "disk_hits": 0}
//!   ]
//! }
//! ```
//!
//! Override the output path with `NWO_HARNESS_JSON=<path>`; set it to
//! `0` (or empty) to skip writing.

use crate::figures;
use crate::runner::Runner;
use nwo_sim::obs::json;
use std::time::Instant;

/// Timing and memo accounting for one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentTiming {
    /// Experiment name (one of [`figures::EXPERIMENTS`]).
    pub name: String,
    /// Wall-clock seconds spent in the experiment.
    pub wall_s: f64,
    /// Simulations executed by workers during the experiment.
    pub sims_run: u64,
    /// Submissions served from the memo cache during the experiment.
    pub memo_hits: u64,
    /// Submissions served from the disk cache during the experiment.
    pub disk_hits: u64,
}

/// Whole-run accounting, serializable to `BENCH_harness.json`.
#[derive(Debug, Clone)]
pub struct HarnessSummary {
    /// Worker threads used.
    pub jobs: usize,
    /// Workload scale bump (`NWO_SCALE`).
    pub scale: u32,
    /// Whole-run wall-clock seconds.
    pub wall_s: f64,
    /// Total simulations executed.
    pub sims_run: u64,
    /// Total memo hits.
    pub memo_hits: u64,
    /// Total disk-cache hits (`NWO_CACHE_DIR`).
    pub disk_hits: u64,
    /// Total functional warmups executed (`NWO_WARMUP`).
    pub warmups_run: u64,
    /// Total simulations that reused a warm checkpoint.
    pub warm_hits: u64,
    /// Per-experiment breakdown, in execution order.
    pub experiments: Vec<ExperimentTiming>,
}

impl HarnessSummary {
    /// Serializes the summary (the `BENCH_harness.json` payload).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 96 * self.experiments.len());
        out.push_str("{\n  \"schema\": 1,\n  \"jobs\": ");
        out.push_str(&self.jobs.to_string());
        out.push_str(",\n  \"scale\": ");
        out.push_str(&self.scale.to_string());
        out.push_str(",\n  \"wall_s\": ");
        json::write_f64(&mut out, self.wall_s);
        out.push_str(",\n  \"sims_run\": ");
        out.push_str(&self.sims_run.to_string());
        out.push_str(",\n  \"memo_hits\": ");
        out.push_str(&self.memo_hits.to_string());
        out.push_str(",\n  \"disk_hits\": ");
        out.push_str(&self.disk_hits.to_string());
        out.push_str(",\n  \"warmups_run\": ");
        out.push_str(&self.warmups_run.to_string());
        out.push_str(",\n  \"warm_hits\": ");
        out.push_str(&self.warm_hits.to_string());
        out.push_str(",\n  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            out.push_str("    {\"name\": ");
            json::write_str(&mut out, &e.name);
            out.push_str(", \"wall_s\": ");
            json::write_f64(&mut out, e.wall_s);
            out.push_str(", \"sims_run\": ");
            out.push_str(&e.sims_run.to_string());
            out.push_str(", \"memo_hits\": ");
            out.push_str(&e.memo_hits.to_string());
            out.push_str(", \"disk_hits\": ");
            out.push_str(&e.disk_hits.to_string());
            out.push('}');
            if i + 1 < self.experiments.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Where to persist the run summary: `NWO_HARNESS_JSON` when set
/// (`0`/empty disables), else `BENCH_harness.json` in the working
/// directory.
fn summary_path() -> Option<std::path::PathBuf> {
    match std::env::var_os("NWO_HARNESS_JSON") {
        Some(v) if v.is_empty() || v == *"0" => None,
        Some(v) => Some(v.into()),
        None => Some("BENCH_harness.json".into()),
    }
}

/// Runs `names` in order on the global runner, printing each
/// experiment's table followed by a `[name  wall …]` summary line,
/// then a whole-run total, and persists the summary JSON.
///
/// # Errors
///
/// Returns an error (before running anything) if any name is unknown.
pub fn run_harness(names: &[&str]) -> Result<HarnessSummary, String> {
    for name in names {
        if !figures::EXPERIMENTS.iter().any(|(n, _)| n == name) {
            return Err(format!(
                "unknown experiment `{name}`; known: {:?}",
                figures::experiment_names()
            ));
        }
    }
    let runner = Runner::global();
    let start = Instant::now();
    let mut experiments = Vec::with_capacity(names.len());
    for name in names {
        let before = runner.counters();
        let t = Instant::now();
        let ran = figures::run_experiment(name);
        debug_assert!(ran, "names were validated above");
        let wall_s = t.elapsed().as_secs_f64();
        let after = runner.counters();
        let timing = ExperimentTiming {
            name: name.to_string(),
            wall_s,
            sims_run: after.sims_run - before.sims_run,
            memo_hits: after.memo_hits - before.memo_hits,
            disk_hits: after.disk_hits - before.disk_hits,
        };
        println!(
            "[{}  wall {:.2}s  sims {}  memo-hits {}  disk-hits {}]",
            timing.name, timing.wall_s, timing.sims_run, timing.memo_hits, timing.disk_hits
        );
        experiments.push(timing);
    }
    let totals = runner.counters();
    let summary = HarnessSummary {
        jobs: runner.jobs(),
        scale: crate::harness_scale(),
        wall_s: start.elapsed().as_secs_f64(),
        sims_run: experiments.iter().map(|e| e.sims_run).sum(),
        memo_hits: experiments.iter().map(|e| e.memo_hits).sum(),
        disk_hits: experiments.iter().map(|e| e.disk_hits).sum(),
        warmups_run: totals.warmups_run,
        warm_hits: totals.warm_hits,
        experiments,
    };
    println!(
        "[total  wall {:.2}s  sims {}  memo-hits {}  disk-hits {}  warmups {}  jobs {}]",
        summary.wall_s,
        summary.sims_run,
        summary.memo_hits,
        summary.disk_hits,
        summary.warmups_run,
        summary.jobs
    );
    debug_assert!(totals.submitted >= totals.memo_hits);
    if let Some(path) = summary_path() {
        match std::fs::write(&path, summary.to_json()) {
            Ok(()) => eprintln!("wrote harness timing summary to {}", path.display()),
            Err(e) => eprintln!("NWO_HARNESS_JSON: cannot write {}: {e}", path.display()),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_json_parses_with_the_crate_parser() {
        let summary = HarnessSummary {
            jobs: 4,
            scale: 1,
            wall_s: 2.5,
            sims_run: 10,
            memo_hits: 3,
            disk_hits: 5,
            warmups_run: 2,
            warm_hits: 8,
            experiments: vec![
                ExperimentTiming {
                    name: "fig1".into(),
                    wall_s: 1.25,
                    sims_run: 8,
                    memo_hits: 0,
                    disk_hits: 5,
                },
                ExperimentTiming {
                    name: "stalls".into(),
                    wall_s: 1.25,
                    sims_run: 2,
                    memo_hits: 3,
                    disk_hits: 0,
                },
            ],
        };
        let text = summary.to_json();
        let v = json::parse(&text).expect("summary JSON parses");
        assert_eq!(v.get("schema").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("jobs").and_then(|x| x.as_u64()), Some(4));
        assert_eq!(v.get("sims_run").and_then(|x| x.as_u64()), Some(10));
        assert_eq!(v.get("memo_hits").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(v.get("disk_hits").and_then(|x| x.as_u64()), Some(5));
        assert_eq!(v.get("warmups_run").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.get("warm_hits").and_then(|x| x.as_u64()), Some(8));
        assert!((v.get("wall_s").and_then(|x| x.as_f64()).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_names_are_rejected_before_running() {
        let err = run_harness(&["definitely-not-real"]).expect_err("must reject");
        assert!(err.contains("definitely-not-real"));
    }
}
