//! Experiment-harness driver: runs a selection of experiments on the
//! global [`crate::runner::Runner`], prints one summary line per
//! experiment (wall-clock, simulations run, memo hits), and persists a
//! machine-readable timing summary to `BENCH_harness.json` so future
//! changes have a perf trajectory to regress against.
//!
//! Each experiment runs on its own worker thread under a panic guard
//! and an optional wall-clock watchdog (`NWO_WATCHDOG_SECS`): a
//! panicking or runaway experiment is **quarantined** — recorded in the
//! summary's `failures` array with its panic message or timeout — and
//! the sweep continues with the next experiment instead of dying.
//! `NWO_FAIL_EXPERIMENT=<name>` (or `<name>:hang`) deliberately breaks
//! one experiment, which is how the quarantine path itself is tested.
//!
//! The JSON schema (`schema` bumps on incompatible change; schema 2
//! added the per-experiment `phases`/`phase_counts` breakdown and the
//! top-level `busy_s`/`utilization` pool accounting):
//!
//! ```json
//! {
//!   "schema": 2,
//!   "jobs": 8,            // worker threads (NWO_JOBS)
//!   "scale": 0,           // NWO_SCALE workload bump
//!   "wall_s": 12.34,      // whole-run wall-clock
//!   "busy_s": 80.1,       // summed worker sim-job time
//!   "utilization": 0.81,  // busy_s / (wall_s * jobs)
//!   "sims_run": 120,      // distinct simulations executed
//!   "memo_hits": 96,      // submissions served from the memo cache
//!   "disk_hits": 0,       // submissions served from NWO_CACHE_DIR
//!   "warmups_run": 0,     // functional warmups executed (NWO_WARMUP)
//!   "warm_hits": 0,       // simulations reusing a warm checkpoint
//!   "experiments": [
//!     {"name": "fig1", "wall_s": 0.81, "sims_run": 8, "memo_hits": 0,
//!      "disk_hits": 0, "status": "ok",
//!      "phases": {"decode_s": 0.01, "warmup_s": 0.0, "restore_s": 0.0,
//!                 "measured_run_s": 0.78, "oracle_step_s": 0.0,
//!                 "ckpt_io_s": 0.0, "cache_s": 0.0, "busy_s": 0.80},
//!      "phase_counts": {"decode": 1, "warmup": 0, "restore": 0,
//!                       "measured_run": 8, "oracle_step": 0,
//!                       "ckpt_io": 0, "cache": 0, "busy": 8}}
//!   ],
//!   "failures": [
//!     {"name": "fig2", "status": "failed", "detail": "panicked: ..."}
//!   ]
//! }
//! ```
//!
//! Phase times come from the span profiler ([`nwo_sim::obs::span`]),
//! which the harness always enables in aggregation-only mode (the
//! spans are coarse — per job, per phase — so the cost is noise).
//! Experiments run serially, so diffing the global aggregate before
//! and after each one attributes worker-thread time to the right
//! experiment.
//!
//! Override the output path with `NWO_HARNESS_JSON=<path>`; set it to
//! `0` (or empty) to skip writing.

use crate::figures;
use crate::runner::{progress_enabled, progress_json, Runner};
use nwo_sim::obs::json;
use nwo_sim::obs::ProfileAgg;
use std::time::{Duration, Instant};

/// Per-experiment profiling phase breakdown: seconds and invocation
/// counts per named phase, attributed by diffing the global span
/// aggregate around the experiment. A phase's time is summed over
/// every nesting site of its leaf span (`warmup` counts both direct
/// warmups and those inside worker `sim-job` spans); `busy` is the
/// total worker `sim-job` time — the numerator of pool utilization.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// `(key, seconds, count)` per phase, in [`PhaseBreakdown::KEYS`]
    /// order. Empty (all phases zero) for a default value.
    entries: Vec<(&'static str, f64, u64)>,
}

impl PhaseBreakdown {
    /// Phase keys in serialization order, each with the profiler leaf
    /// span names it sums over.
    pub const KEYS: [(&'static str, &'static [&'static str]); 8] = [
        ("decode", &["decode"]),
        ("warmup", &["warmup"]),
        ("restore", &["restore"]),
        ("measured_run", &["measured-run"]),
        ("oracle_step", &["oracle-step"]),
        ("ckpt_io", &["ckpt-io"]),
        ("cache", &["cache-lookup", "cache-store"]),
        ("busy", &["sim-job"]),
    ];

    /// Builds the breakdown from a (usually diffed) span aggregate.
    pub fn from_agg(agg: &ProfileAgg) -> PhaseBreakdown {
        let entries = Self::KEYS
            .iter()
            .map(|(key, leaves)| {
                let (ns, count) = leaves.iter().fold((0u64, 0u64), |(ns, c), leaf| {
                    let (n2, c2) = agg.leaf_totals(leaf);
                    (ns + n2, c + c2)
                });
                (*key, ns as f64 / 1e9, count)
            })
            .collect();
        PhaseBreakdown { entries }
    }

    /// Seconds attributed to `key` (0 for unknown keys or a default
    /// value).
    pub fn seconds(&self, key: &str) -> f64 {
        self.entries
            .iter()
            .find(|(k, _, _)| *k == key)
            .map_or(0.0, |(_, s, _)| *s)
    }

    /// Invocation count of `key`'s spans.
    pub fn count(&self, key: &str) -> u64 {
        self.entries
            .iter()
            .find(|(k, _, _)| *k == key)
            .map_or(0, |(_, _, c)| *c)
    }

    /// Total worker `sim-job` seconds.
    pub fn busy_s(&self) -> f64 {
        self.seconds("busy")
    }

    /// Appends `"phases": {...}, "phase_counts": {...}` (no leading
    /// separator) with every key present, zeros included.
    fn write_json(&self, out: &mut String) {
        out.push_str("\"phases\": {");
        for (i, (key, _)) in Self::KEYS.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(key);
            out.push_str("_s\": ");
            json::write_f64(out, self.seconds(key));
        }
        out.push_str("}, \"phase_counts\": {");
        for (i, (key, _)) in Self::KEYS.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(key);
            out.push_str("\": ");
            out.push_str(&self.count(key).to_string());
        }
        out.push('}');
    }
}

/// Timing and memo accounting for one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentTiming {
    /// Experiment name (one of [`figures::EXPERIMENTS`]).
    pub name: String,
    /// Wall-clock seconds spent in the experiment.
    pub wall_s: f64,
    /// Simulations executed by workers during the experiment.
    pub sims_run: u64,
    /// Submissions served from the memo cache during the experiment.
    pub memo_hits: u64,
    /// Submissions served from the disk cache during the experiment.
    pub disk_hits: u64,
    /// `"ok"`, `"failed"` (panicked) or `"timeout"` (watchdog fired).
    pub status: String,
    /// Profiled phase breakdown for the experiment's interval.
    pub phases: PhaseBreakdown,
}

/// One quarantined experiment: the sweep continued without it.
#[derive(Debug, Clone)]
pub struct ExperimentFailure {
    /// Experiment name.
    pub name: String,
    /// `"failed"` or `"timeout"`.
    pub status: String,
    /// Panic message or watchdog description.
    pub detail: String,
}

/// Whole-run accounting, serializable to `BENCH_harness.json`.
#[derive(Debug, Clone)]
pub struct HarnessSummary {
    /// Worker threads used.
    pub jobs: usize,
    /// Workload scale bump (`NWO_SCALE`).
    pub scale: u32,
    /// Whole-run wall-clock seconds.
    pub wall_s: f64,
    /// Summed worker `sim-job` seconds across all experiments.
    pub busy_s: f64,
    /// Pool utilization: `busy_s / (wall_s * jobs)`.
    pub utilization: f64,
    /// Total simulations executed.
    pub sims_run: u64,
    /// Total memo hits.
    pub memo_hits: u64,
    /// Total disk-cache hits (`NWO_CACHE_DIR`).
    pub disk_hits: u64,
    /// Total functional warmups executed (`NWO_WARMUP`).
    pub warmups_run: u64,
    /// Total simulations that reused a warm checkpoint.
    pub warm_hits: u64,
    /// Per-experiment breakdown, in execution order.
    pub experiments: Vec<ExperimentTiming>,
    /// Experiments that panicked or timed out (sweep continued).
    pub failures: Vec<ExperimentFailure>,
}

impl HarnessSummary {
    /// Serializes the summary (the `BENCH_harness.json` payload).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 96 * self.experiments.len());
        out.push_str("{\n  \"schema\": 2,\n  \"jobs\": ");
        out.push_str(&self.jobs.to_string());
        out.push_str(",\n  \"scale\": ");
        out.push_str(&self.scale.to_string());
        out.push_str(",\n  \"wall_s\": ");
        json::write_f64(&mut out, self.wall_s);
        out.push_str(",\n  \"busy_s\": ");
        json::write_f64(&mut out, self.busy_s);
        out.push_str(",\n  \"utilization\": ");
        json::write_f64(&mut out, self.utilization);
        out.push_str(",\n  \"sims_run\": ");
        out.push_str(&self.sims_run.to_string());
        out.push_str(",\n  \"memo_hits\": ");
        out.push_str(&self.memo_hits.to_string());
        out.push_str(",\n  \"disk_hits\": ");
        out.push_str(&self.disk_hits.to_string());
        out.push_str(",\n  \"warmups_run\": ");
        out.push_str(&self.warmups_run.to_string());
        out.push_str(",\n  \"warm_hits\": ");
        out.push_str(&self.warm_hits.to_string());
        out.push_str(",\n  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            out.push_str("    {\"name\": ");
            json::write_str(&mut out, &e.name);
            out.push_str(", \"wall_s\": ");
            json::write_f64(&mut out, e.wall_s);
            out.push_str(", \"sims_run\": ");
            out.push_str(&e.sims_run.to_string());
            out.push_str(", \"memo_hits\": ");
            out.push_str(&e.memo_hits.to_string());
            out.push_str(", \"disk_hits\": ");
            out.push_str(&e.disk_hits.to_string());
            out.push_str(", \"status\": ");
            json::write_str(&mut out, &e.status);
            out.push_str(", ");
            e.phases.write_json(&mut out);
            out.push('}');
            if i + 1 < self.experiments.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"failures\": [\n");
        for (i, f) in self.failures.iter().enumerate() {
            out.push_str("    {\"name\": ");
            json::write_str(&mut out, &f.name);
            out.push_str(", \"status\": ");
            json::write_str(&mut out, &f.status);
            out.push_str(", \"detail\": ");
            json::write_str(&mut out, &f.detail);
            out.push('}');
            if i + 1 < self.failures.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Where to persist the run summary: `NWO_HARNESS_JSON` when set
/// (`0`/empty disables), else `BENCH_harness.json` in the working
/// directory.
fn summary_path() -> Option<std::path::PathBuf> {
    match std::env::var_os("NWO_HARNESS_JSON") {
        Some(v) if v.is_empty() || v == *"0" => None,
        Some(v) => Some(v.into()),
        None => Some("BENCH_harness.json".into()),
    }
}

/// Robustness knobs for a harness sweep, normally read from the
/// environment by [`HarnessOptions::from_env`].
#[derive(Debug, Clone, Default)]
pub struct HarnessOptions {
    /// Per-experiment wall-clock budget (`NWO_WATCHDOG_SECS`); an
    /// experiment exceeding it is quarantined as `"timeout"` and its
    /// worker thread detached. `None` disables the watchdog.
    pub watchdog: Option<Duration>,
    /// Deliberate failure injection (`NWO_FAIL_EXPERIMENT`): the named
    /// experiment panics instead of running; with a `:hang` suffix it
    /// blocks until the watchdog fires. Exercises the quarantine path.
    pub fail_experiment: Option<String>,
    /// Where to write the summary JSON; `None` skips writing.
    pub json_path: Option<std::path::PathBuf>,
    /// Live progress ticker on stderr (`NWO_PROGRESS` / `--progress`):
    /// one JSON line after every experiment, on top of the per-job
    /// lines the runner's collect loop emits.
    pub progress: bool,
}

/// How `NWO_FAIL_EXPERIMENT` breaks the matching experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Inject {
    Panic,
    Hang,
}

impl HarnessOptions {
    /// Reads `NWO_WATCHDOG_SECS`, `NWO_FAIL_EXPERIMENT` and
    /// `NWO_HARNESS_JSON` from the environment.
    pub fn from_env() -> HarnessOptions {
        let watchdog = std::env::var("NWO_WATCHDOG_SECS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|s| *s > 0.0)
            .map(Duration::from_secs_f64);
        let fail_experiment = std::env::var("NWO_FAIL_EXPERIMENT")
            .ok()
            .filter(|v| !v.is_empty());
        HarnessOptions {
            watchdog,
            fail_experiment,
            json_path: summary_path(),
            progress: progress_enabled(),
        }
    }

    /// The injected failure for `name`, if any.
    fn injected(&self, name: &str) -> Option<Inject> {
        let spec = self.fail_experiment.as_deref()?;
        match spec.strip_suffix(":hang") {
            Some(base) if base == name => Some(Inject::Hang),
            None if spec == name => Some(Inject::Panic),
            _ => None,
        }
    }
}

/// A human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Runs one experiment on its own thread under a panic guard and the
/// optional watchdog. Returns `("ok", None)` or a quarantine verdict.
fn run_guarded(name: &str, opts: &HarnessOptions) -> (&'static str, Option<String>) {
    let (tx, rx) = std::sync::mpsc::channel();
    let inject = opts.injected(name);
    let owned = name.to_string();
    let worker = std::thread::spawn(move || {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match inject {
            Some(Inject::Panic) => {
                panic!("deliberate failure injected via NWO_FAIL_EXPERIMENT")
            }
            Some(Inject::Hang) => std::thread::sleep(Duration::from_secs(3600)),
            None => {
                figures::run_experiment(&owned);
            }
        }));
        let _ = tx.send(outcome.map_err(|p| panic_message(&*p)));
    });
    let outcome = match opts.watchdog {
        Some(budget) => match rx.recv_timeout(budget) {
            Ok(res) => {
                let _ = worker.join();
                res
            }
            // The worker may be wedged mid-simulation; detach it and
            // move on — quarantine must not become a hang of its own.
            Err(_) => {
                return (
                    "timeout",
                    Some(format!(
                        "exceeded the {:.1}s watchdog; worker thread detached",
                        budget.as_secs_f64()
                    )),
                );
            }
        },
        None => {
            let res = rx
                .recv()
                .unwrap_or_else(|_| Err("worker exited without reporting".to_string()));
            let _ = worker.join();
            res
        }
    };
    match outcome {
        Ok(()) => ("ok", None),
        Err(msg) => ("failed", Some(msg)),
    }
}

/// Runs `names` in order with options from the environment. See
/// [`run_harness_with`].
///
/// # Errors
///
/// Returns an error (before running anything) if any name is unknown.
pub fn run_harness(names: &[&str]) -> Result<HarnessSummary, String> {
    run_harness_with(names, &HarnessOptions::from_env())
}

/// Runs `names` in order on the global runner, printing each
/// experiment's table followed by a `[name  wall …]` summary line,
/// then a whole-run total, and persists the summary JSON. Experiments
/// that panic or outrun the watchdog are quarantined (recorded in
/// [`HarnessSummary::failures`]) and the sweep continues.
///
/// # Errors
///
/// Returns an error (before running anything) if any name is unknown.
/// Quarantined failures are *not* errors here — callers decide whether
/// a partially-failed sweep is fatal.
pub fn run_harness_with(names: &[&str], opts: &HarnessOptions) -> Result<HarnessSummary, String> {
    for name in names {
        if !figures::EXPERIMENTS.iter().any(|(n, _)| n == name) {
            return Err(format!(
                "unknown experiment `{name}`; known: {:?}",
                figures::experiment_names()
            ));
        }
    }
    // Phase attribution needs the span aggregate; enable it in
    // aggregation-only mode (no event capture) — the CLI may already
    // have enabled capture via --profile-out, which this won't undo.
    nwo_sim::obs::span::enable(false);
    let runner = Runner::global();
    let start = Instant::now();
    let mut experiments = Vec::with_capacity(names.len());
    let mut failures = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let before = runner.counters();
        let prof_before = nwo_sim::obs::span::aggregate();
        let t = Instant::now();
        let (status, detail) = {
            let _prof = nwo_sim::obs::span::labeled_span("experiment", name);
            run_guarded(name, opts)
        };
        let wall_s = t.elapsed().as_secs_f64();
        let after = runner.counters();
        let phases = PhaseBreakdown::from_agg(&nwo_sim::obs::span::aggregate().since(&prof_before));
        let timing = ExperimentTiming {
            name: name.to_string(),
            wall_s,
            sims_run: after.sims_run - before.sims_run,
            memo_hits: after.memo_hits - before.memo_hits,
            disk_hits: after.disk_hits - before.disk_hits,
            status: status.to_string(),
            phases,
        };
        if let Some(detail) = detail {
            eprintln!("[{}  QUARANTINED ({status}): {detail}]", timing.name);
            failures.push(ExperimentFailure {
                name: name.to_string(),
                status: status.to_string(),
                detail,
            });
        } else {
            println!(
                "[{}  wall {:.2}s  sims {}  memo-hits {}  disk-hits {}  busy {:.2}s]",
                timing.name,
                timing.wall_s,
                timing.sims_run,
                timing.memo_hits,
                timing.disk_hits,
                timing.phases.busy_s()
            );
        }
        experiments.push(timing);
        if opts.progress {
            let done = i + 1;
            let eta = crate::runner::eta_seconds(start.elapsed().as_secs_f64(), done, names.len());
            eprintln!(
                "{}",
                progress_json(
                    "experiments",
                    done,
                    names.len(),
                    &runner.counters(),
                    failures.len(),
                    eta
                )
            );
        }
    }
    let totals = runner.counters();
    let wall_s = start.elapsed().as_secs_f64();
    let busy_s: f64 = experiments.iter().map(|e| e.phases.busy_s()).sum();
    let pool = wall_s * runner.jobs() as f64;
    let summary = HarnessSummary {
        jobs: runner.jobs(),
        scale: crate::harness_scale(),
        wall_s,
        busy_s,
        utilization: if pool > 0.0 { busy_s / pool } else { 0.0 },
        sims_run: experiments.iter().map(|e| e.sims_run).sum(),
        memo_hits: experiments.iter().map(|e| e.memo_hits).sum(),
        disk_hits: experiments.iter().map(|e| e.disk_hits).sum(),
        warmups_run: totals.warmups_run,
        warm_hits: totals.warm_hits,
        experiments,
        failures,
    };
    println!(
        "[total  wall {:.2}s  busy {:.2}s  sims {}  memo-hits {}  disk-hits {}  warmups {}  jobs {}  quarantined {}]",
        summary.wall_s,
        summary.busy_s,
        summary.sims_run,
        summary.memo_hits,
        summary.disk_hits,
        summary.warmups_run,
        summary.jobs,
        summary.failures.len()
    );
    debug_assert!(totals.submitted >= totals.memo_hits);
    if let Some(path) = &opts.json_path {
        match std::fs::write(path, summary.to_json()) {
            Ok(()) => eprintln!("wrote harness timing summary to {}", path.display()),
            Err(e) => eprintln!("NWO_HARNESS_JSON: cannot write {}: {e}", path.display()),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_json_parses_with_the_crate_parser() {
        let mut fig1_agg = ProfileAgg::default();
        fig1_agg.spans.insert(
            "sim-job".into(),
            nwo_sim::obs::SpanStat {
                total_ns: 2_100_000_000,
                count: 8,
                counters: Default::default(),
            },
        );
        fig1_agg.spans.insert(
            "sim-job/measured-run".into(),
            nwo_sim::obs::SpanStat {
                total_ns: 2_000_000_000,
                count: 8,
                counters: Default::default(),
            },
        );
        let summary = HarnessSummary {
            jobs: 4,
            scale: 1,
            wall_s: 2.5,
            busy_s: 2.1,
            utilization: 0.21,
            sims_run: 10,
            memo_hits: 3,
            disk_hits: 5,
            warmups_run: 2,
            warm_hits: 8,
            experiments: vec![
                ExperimentTiming {
                    name: "fig1".into(),
                    wall_s: 1.25,
                    sims_run: 8,
                    memo_hits: 0,
                    disk_hits: 5,
                    status: "ok".into(),
                    phases: PhaseBreakdown::from_agg(&fig1_agg),
                },
                ExperimentTiming {
                    name: "stalls".into(),
                    wall_s: 1.25,
                    sims_run: 2,
                    memo_hits: 3,
                    disk_hits: 0,
                    status: "failed".into(),
                    phases: PhaseBreakdown::default(),
                },
            ],
            failures: vec![ExperimentFailure {
                name: "stalls".into(),
                status: "failed".into(),
                detail: "panicked: boom".into(),
            }],
        };
        let text = summary.to_json();
        let v = json::parse(&text).expect("summary JSON parses");
        assert_eq!(v.get("schema").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.get("jobs").and_then(|x| x.as_u64()), Some(4));
        assert!((v.get("busy_s").and_then(|x| x.as_f64()).unwrap() - 2.1).abs() < 1e-12);
        assert!((v.get("utilization").and_then(|x| x.as_f64()).unwrap() - 0.21).abs() < 1e-12);
        assert_eq!(v.get("sims_run").and_then(|x| x.as_u64()), Some(10));
        assert_eq!(v.get("memo_hits").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(v.get("disk_hits").and_then(|x| x.as_u64()), Some(5));
        assert_eq!(v.get("warmups_run").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.get("warm_hits").and_then(|x| x.as_u64()), Some(8));
        assert!((v.get("wall_s").and_then(|x| x.as_f64()).unwrap() - 2.5).abs() < 1e-12);
        let failures = v.get("failures").and_then(|x| x.as_array()).unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(
            failures[0].get("status").and_then(|x| x.as_str()),
            Some("failed")
        );
        let experiments = v.get("experiments").and_then(|x| x.as_array()).unwrap();
        assert_eq!(
            experiments[1].get("status").and_then(|x| x.as_str()),
            Some("failed")
        );
        // Schema 2: every experiment carries a full phases object (zeros
        // included), with counts alongside.
        let phases = experiments[0].get("phases").expect("phases object");
        assert!(
            (phases.get("busy_s").and_then(|x| x.as_f64()).unwrap() - 2.1).abs() < 1e-9,
            "busy_s sums the sim-job leaf"
        );
        assert!(
            (phases
                .get("measured_run_s")
                .and_then(|x| x.as_f64())
                .unwrap()
                - 2.0)
                .abs()
                < 1e-9
        );
        let counts = experiments[0].get("phase_counts").expect("counts object");
        assert_eq!(counts.get("busy").and_then(|x| x.as_u64()), Some(8));
        assert_eq!(counts.get("warmup").and_then(|x| x.as_u64()), Some(0));
        let empty = experiments[1].get("phases").expect("phases object");
        assert_eq!(
            empty.get("decode_s").and_then(|x| x.as_f64()),
            Some(0.0),
            "a default breakdown still serializes every key"
        );
    }

    #[test]
    fn unknown_names_are_rejected_before_running() {
        let err = run_harness_with(&["definitely-not-real"], &HarnessOptions::default())
            .expect_err("must reject");
        assert!(err.contains("definitely-not-real"));
    }

    #[test]
    fn injected_failure_is_quarantined_and_the_sweep_continues() {
        // The injection panics *before* any simulation starts, so this
        // stays fast: the experiment body never runs.
        let opts = HarnessOptions {
            watchdog: None,
            fail_experiment: Some("fig1".into()),
            json_path: None,
            progress: false,
        };
        let summary = run_harness_with(&["fig1"], &opts).expect("sweep completes");
        assert_eq!(summary.failures.len(), 1);
        assert_eq!(summary.failures[0].name, "fig1");
        assert_eq!(summary.failures[0].status, "failed");
        assert!(summary.failures[0].detail.contains("NWO_FAIL_EXPERIMENT"));
        assert_eq!(summary.experiments[0].status, "failed");
    }

    #[test]
    fn watchdog_quarantines_a_hung_experiment() {
        let opts = HarnessOptions {
            watchdog: Some(Duration::from_millis(50)),
            fail_experiment: Some("fig1:hang".into()),
            json_path: None,
            progress: false,
        };
        let summary = run_harness_with(&["fig1"], &opts).expect("sweep completes");
        assert_eq!(summary.failures.len(), 1);
        assert_eq!(summary.failures[0].status, "timeout");
        assert!(summary.failures[0].detail.contains("watchdog"));
        assert_eq!(summary.experiments[0].status, "timeout");
    }
}
