//! Minimal table formatter shared by all experiments: aligned console
//! output plus optional CSV export.
//!
//! Set `NWO_CSV=<dir>` to write every experiment's table as
//! `<dir>/<name>.csv`, ready for plotting.

use std::fmt::Write as _;

/// A titled table with a fixed column set.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    csv_name: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table. `csv_name` is the (extension-free) CSV file name.
    pub fn new(title: &str, csv_name: &str, columns: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            csv_name: csv_name.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row (must match the column count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Appends a free-form note printed under the table (not in the CSV).
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the aligned console form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n==== {} ====\n", self.title);
        for (i, col) in self.columns.iter().enumerate() {
            let pad = widths[i];
            if i == 0 {
                let _ = write!(out, "{col:<pad$}");
            } else {
                let _ = write!(out, "  {col:>pad$}");
            }
        }
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let pad = widths[i];
                if i == 0 {
                    let _ = write!(out, "{cell:<pad$}");
                } else {
                    let _ = write!(out, "  {cell:>pad$}");
                }
            }
            out.push('\n');
        }
        for note in &self.notes {
            let _ = writeln!(out, "{note}");
        }
        out
    }

    /// The CSV form (header + rows, comma-separated, quotes around cells
    /// containing commas).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the table and, when `NWO_CSV` is set, writes the CSV file.
    pub fn emit(&self) {
        print!("{}", self.render());
        if let Some(dir) = std::env::var_os("NWO_CSV") {
            let dir = std::path::PathBuf::from(dir);
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("NWO_CSV: cannot create {}: {e}", dir.display());
                return;
            }
            let path = dir.join(format!("{}.csv", self.csv_name));
            if let Err(e) = std::fs::write(&path, self.to_csv()) {
                eprintln!("NWO_CSV: cannot write {}: {e}", path.display());
            }
        }
    }
}

/// Formats a float with one decimal place.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a percentage with one decimal place.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Formats a signed percentage with two decimal places.
pub fn spct(v: f64) -> String {
    format!("{v:+.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", "t", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "23".into()]);
        let s = t.render();
        assert!(s.contains("==== T ===="));
        assert!(s.contains("long-name"));
        // Value column right-aligned to the same width.
        let lines: Vec<&str> = s
            .lines()
            .filter(|l| !l.is_empty() && !l.contains("===="))
            .collect();
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[1].len(), lines[2].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("T", "t", &["a", "b"]);
        t.row(vec!["x,y".into(), "z\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"z\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T", "t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(pct(54.13), "54.1%");
        assert_eq!(spct(4.3), "+4.30%");
        assert_eq!(spct(-0.5), "-0.50%");
    }
}
