#![warn(missing_docs)]

//! Experiment harness: regenerates every table and figure of the
//! paper's evaluation from the simulator.
//!
//! The `figures` bench target (`cargo bench -p nwo-bench --bench figures`)
//! drives [`figures::run_experiment`]; each experiment prints a
//! paper-style table to stdout. Individual experiments can be selected
//! by name:
//!
//! ```sh
//! cargo bench -p nwo-bench --bench figures -- fig10 fig11
//! ```
//!
//! Set `NWO_SCALE=n` to double every benchmark's input size `n` times,
//! and `NWO_JOBS=n` to size the worker pool (default: available
//! parallelism). See `docs/benchmarking.md` for the harness
//! architecture, memoization semantics and the `BENCH_harness.json`
//! timing-summary schema.

use nwo_core::{GatingConfig, PackConfig};
use nwo_sim::{SimConfig, SimReport, Simulator};
use nwo_workloads::{experiment_suite, Benchmark, Suite};

pub mod figures;
pub mod harness;
pub mod runner;
pub mod table;

/// Runs `bench` under `config`, verifying architected output against the
/// reference implementation.
///
/// # Panics
///
/// Panics if the simulation fails or the output diverges — a diverging
/// optimization would invalidate every number it produces.
pub fn run(bench: &Benchmark, config: SimConfig) -> SimReport {
    run_with_warm_state(bench, config, None)
}

/// Runs `bench` under `config`, optionally restoring pre-warmed machine
/// state (a blob from [`warm_checkpoint`]) in place of functional
/// warmup. Output verification covers the whole program either way:
/// warmed-over instructions contribute their architected output to the
/// checkpoint, so `out_quads` still equals the reference.
///
/// # Panics
///
/// Panics if the checkpoint does not match this `(bench, config)` pair,
/// the simulation fails, or the output diverges.
pub fn run_with_warm_state(bench: &Benchmark, config: SimConfig, warm: Option<&[u8]>) -> SimReport {
    let mut sim = Simulator::new(&bench.program, config);
    if let Some(bytes) = warm {
        sim.restore_checkpoint(bytes)
            .unwrap_or_else(|e| panic!("{}: warm checkpoint rejected: {e}", bench.name));
    }
    let report = sim
        .run(u64::MAX)
        .unwrap_or_else(|e| panic!("{} failed: {e}", bench.name));
    assert_eq!(
        report.out_quads, bench.expected,
        "{} diverged from its reference output",
        bench.name
    );
    report
}

/// Functionally warms a fresh machine for `insts` instructions and
/// serializes the result — the shareable fast-forward image the runner
/// reuses across every config with the same
/// [`SimConfig::warm_fingerprint`].
///
/// # Panics
///
/// Panics if the warmup itself fails (ill-formed program).
pub fn warm_checkpoint(bench: &Benchmark, config: &SimConfig, insts: u64) -> Vec<u8> {
    let mut sim = Simulator::new(&bench.program, config.clone());
    sim.warmup(insts)
        .unwrap_or_else(|e| panic!("{}: warmup failed: {e}", bench.name));
    sim.checkpoint()
}

/// The harness warmup budget: `NWO_WARMUP` instructions fast-forwarded
/// before timed simulation (0 when unset — timing results are then
/// byte-identical to a harness without warmup support).
pub fn warmup_insts() -> u64 {
    std::env::var("NWO_WARMUP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The harness workload scale: the `NWO_SCALE` env bump (0 when unset
/// or unparseable). Also the scale component of the runner's memo key.
pub fn harness_scale() -> u32 {
    std::env::var("NWO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The benchmark suite at the harness scale (`NWO_SCALE` env bump).
/// Workload generation and assembly is the harness's decode phase, so
/// it runs under a `decode` profiling span.
pub fn suite() -> Vec<Benchmark> {
    let _prof = nwo_sim::obs::span::span("decode");
    experiment_suite(harness_scale())
}

/// Header line of the bench table, shared by `nwo bench` and the
/// `nwo serve` result frames so both surfaces stay byte-identical.
pub fn bench_table_header() -> String {
    format!(
        "{:<11} {:>6} {:>10} {:>9} {:>7} {:>8} {:>9}",
        "benchmark", "scale", "instrs", "cycles", "ipc", "narrow16", "verified"
    )
}

/// One bench-table row for a verified report. Every number comes from
/// the deterministic simulator, so the row is byte-identical however
/// the report was obtained — fresh run, memo hit, or disk cache.
pub fn bench_table_row(name: &str, scale: u32, report: &SimReport) -> String {
    format!(
        "{:<11} {:>6} {:>10} {:>9} {:>7.3} {:>7.1}% {:>9}",
        name,
        scale,
        report.stats.committed,
        report.stats.cycles,
        report.ipc(),
        report.stats.breakdown.narrow16_total_fraction() * 100.0,
        "ok"
    )
}

/// Geometric-mean speedup in percent over pairs of (baseline, variant)
/// cycle counts.
pub fn mean_speedup_percent(pairs: &[(u64, u64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = pairs
        .iter()
        .map(|&(base, opt)| (base as f64 / opt as f64).ln())
        .sum();
    ((log_sum / pairs.len() as f64).exp() - 1.0) * 100.0
}

/// Arithmetic mean of a slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Splits a suite's values by membership for per-suite averages.
pub fn by_suite<T: Copy>(benches: &[Benchmark], values: &[T]) -> (Vec<T>, Vec<T>) {
    let mut spec = Vec::new();
    let mut media = Vec::new();
    for (b, &v) in benches.iter().zip(values) {
        match b.suite {
            Suite::SpecInt => spec.push(v),
            Suite::Media => media.push(v),
        }
    }
    (spec, media)
}

/// Baseline Table 1 machine.
pub fn base_config() -> SimConfig {
    SimConfig::default()
}

/// Clock-gating machine (Section 4).
pub fn gating_config() -> SimConfig {
    SimConfig::default().with_gating(GatingConfig::default())
}

/// Packing machine (Section 5.2).
pub fn packing_config() -> SimConfig {
    SimConfig::default().with_packing(PackConfig::default())
}

/// Replay-packing machine (Section 5.3).
pub fn replay_config() -> SimConfig {
    SimConfig::default().with_packing(PackConfig::with_replay())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_speedup_of_identity_is_zero() {
        assert!(mean_speedup_percent(&[(100, 100), (50, 50)]).abs() < 1e-12);
        assert_eq!(mean_speedup_percent(&[]), 0.0);
    }

    #[test]
    fn mean_speedup_detects_improvement() {
        let s = mean_speedup_percent(&[(110, 100)]);
        assert!((s - 10.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_experiments_are_rejected() {
        assert!(!crate::figures::run_experiment("not-an-experiment"));
        assert!(crate::figures::build_experiment("not-an-experiment").is_none());
    }

    #[test]
    fn every_listed_experiment_dispatches() {
        // Dispatch is driven by the same table as the name list, so a
        // listed name can never fail to resolve — and names stay unique.
        let names = crate::figures::experiment_names();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "experiment names are unique");
        for name in names {
            assert!(
                crate::figures::find_experiment(name).is_some(),
                "listed experiment `{name}` must dispatch"
            );
        }
    }

    #[test]
    fn run_verifies_output() {
        let suite = experiment_suite(0);
        let bench = suite.iter().find(|b| b.name == "perl").unwrap();
        let report = run(bench, base_config());
        assert!(report.stats.committed > 0);
    }
}
