//! The `nwo serve` daemon: a `std::net` TCP accept loop, per-connection
//! handler threads, bounded admission onto the shared bench runner, and
//! graceful drain.
//!
//! One connection handles one request at a time, in order — the framed
//! protocol is strictly request/response-stream, so a client wanting
//! parallel sweeps opens parallel connections. Cancellation therefore
//! arrives on a *different* connection, addressed by the server-assigned
//! job id from the `accepted` frame.
//!
//! Every admitted request runs through the same three cache tiers as
//! the CLI: the runner's in-process memo (coalescing concurrent
//! identical sweeps onto one simulation), the `NWO_CACHE_DIR` disk
//! result cache, and the persisted warm-checkpoint cache. The handler
//! never blocks in `JobHandle::result`; it polls
//! [`JobHandle::try_result`] so the per-request watchdog
//! (`NWO_WATCHDOG_SECS`) and cancel flags stay live while a simulation
//! runs.

use crate::metrics::{serve_snapshot, ServeMetrics};
use crate::proto::{self, code, Request};
use crate::wire::{read_frame, write_frame, Frame, WireError};
use nwo_bench::runner::{progress_json, JobHandle, Runner};
use nwo_bench::{bench_table_header, bench_table_row};
use nwo_sim::ConfigError;
use nwo_workloads::{benchmark, experiment_scale, Benchmark, BENCHMARK_NAMES};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a connection handler sleeps between job-completion polls.
/// Short enough that cancel frames and the watchdog feel immediate,
/// long enough to keep a polling thread near-idle.
const POLL: Duration = Duration::from_millis(2);

/// Read timeout on connection sockets: the cadence at which idle
/// handlers notice the drain flag.
const IDLE_TICK: Duration = Duration::from_millis(50);

/// Default bind address when `--addr`/`NWO_SERVE_ADDR` is absent.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7199";

/// Default admission-queue depth when `--queue-depth`/`NWO_SERVE_QUEUE`
/// is absent.
pub const DEFAULT_QUEUE_DEPTH: usize = 16;

/// Server tuning, normally built by [`ServeOptions::from_env`] and then
/// overridden by CLI flags.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Maximum simultaneously admitted jobs; further requests are
    /// rejected with a `busy` error frame.
    pub queue_depth: usize,
    /// Per-request wall-clock budget (`NWO_WATCHDOG_SECS`). `None`
    /// disables the watchdog.
    pub watchdog: Option<Duration>,
    /// How long a drain waits for active jobs before declaring them
    /// leaked.
    pub drain_grace: Duration,
}

impl ServeOptions {
    /// Reads `NWO_SERVE_ADDR`, `NWO_SERVE_QUEUE` and
    /// `NWO_WATCHDOG_SECS`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroParameter`] when `NWO_SERVE_QUEUE` is set but
    /// not a positive integer — the same up-front typed rejection as
    /// `NWO_JOBS=0`.
    pub fn from_env() -> Result<ServeOptions, ConfigError> {
        let addr = std::env::var("NWO_SERVE_ADDR").unwrap_or_else(|_| DEFAULT_ADDR.to_string());
        let queue_depth = match std::env::var("NWO_SERVE_QUEUE") {
            Err(_) => DEFAULT_QUEUE_DEPTH,
            Ok(s) => parse_queue_depth(&s)?,
        };
        let watchdog = std::env::var("NWO_WATCHDOG_SECS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|s| *s > 0.0)
            .map(Duration::from_secs_f64);
        Ok(ServeOptions {
            addr,
            queue_depth,
            watchdog,
            drain_grace: Duration::from_secs(5),
        })
    }

    /// Defaults with an ephemeral port — what unit tests want.
    pub fn ephemeral() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: DEFAULT_QUEUE_DEPTH,
            watchdog: None,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// Parses a queue-depth value (flag or env var) with the typed
/// rejection satellite: `0` or garbage is a [`ConfigError`], not a
/// silent fallback.
///
/// # Errors
///
/// [`ConfigError::ZeroParameter`] unless `s` is a positive integer.
pub fn parse_queue_depth(s: &str) -> Result<usize, ConfigError> {
    s.trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or(ConfigError::ZeroParameter {
            what: "serve queue depth",
        })
}

/// What a completed [`Server::run_until`] observed while draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs still holding an admission slot when the drain grace
    /// expired. Nonzero means simulations were abandoned mid-flight —
    /// `nwo serve` turns this into a nonzero exit code.
    pub leaked: u64,
}

/// How many completed keyed sweeps the idempotency registry remembers.
/// Retries arrive within seconds of the original, so a small FIFO
/// window is plenty; the bound keeps a hostile client from growing
/// server memory by streaming fresh keys.
const REPLAY_CAPACITY: usize = 64;

/// The idempotency replay registry: completed sweeps that carried a
/// client key, remembered so a retry of the same request (same key,
/// same content) is answered from here instead of re-admitted.
///
/// The content fingerprint guards against key collisions (two distinct
/// requests reusing a key): a mismatch falls through to normal
/// admission rather than replaying the wrong table.
#[derive(Default)]
struct ReplayRegistry {
    entries: HashMap<u64, (u64, String)>,
    order: VecDeque<u64>,
}

impl ReplayRegistry {
    /// The stored table for `key`, if the content fingerprint matches.
    fn lookup(&self, key: u64, fingerprint: u64) -> Option<String> {
        self.entries
            .get(&key)
            .filter(|(stored, _)| *stored == fingerprint)
            .map(|(_, table)| table.clone())
    }

    /// Remembers a completed sweep, evicting the oldest entry past the
    /// capacity bound.
    fn record(&mut self, key: u64, fingerprint: u64, table: String) {
        if self.entries.insert(key, (fingerprint, table)).is_none() {
            self.order.push_back(key);
        }
        while self.order.len() > REPLAY_CAPACITY {
            if let Some(evicted) = self.order.pop_front() {
                self.entries.remove(&evicted);
            }
        }
    }
}

/// Shared server state: the runner, admission accounting and the
/// cancel-flag registry.
pub struct ServerState {
    runner: Arc<Runner>,
    queue_depth: usize,
    watchdog: Option<Duration>,
    /// Set by a `shutdown` frame or the process signal handler; stops
    /// the accept loop and makes idle connections hang up.
    draining: AtomicBool,
    next_job: AtomicU64,
    cancels: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    replays: Mutex<ReplayRegistry>,
    /// Admission/outcome counters, exposed as `serve.*` metrics.
    pub metrics: ServeMetrics,
}

impl ServerState {
    /// Claims an admission slot if the bounded queue has room.
    fn try_admit(&self) -> bool {
        let depth = self.queue_depth as u64;
        self.metrics
            .active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |active| {
                (active < depth).then_some(active + 1)
            })
            .is_ok()
    }

    /// The runner executing this server's jobs.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// True once a shutdown/drain was requested.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// Releases an admission slot and unregisters the job's cancel flag on
/// every exit path — success, error frame, or a write failure to a
/// vanished client.
struct SlotGuard<'a> {
    state: &'a ServerState,
    job: u64,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.state.cancels.lock().unwrap().remove(&self.job);
        self.state.metrics.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    drain_grace: Duration,
}

impl Server {
    /// Binds `options.addr` and wires the daemon to `runner`.
    ///
    /// # Errors
    ///
    /// Any socket error from binding the address.
    pub fn bind(options: &ServeOptions, runner: Arc<Runner>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                runner,
                queue_depth: options.queue_depth,
                watchdog: options.watchdog,
                draining: AtomicBool::new(false),
                next_job: AtomicU64::new(0),
                cancels: Mutex::new(HashMap::new()),
                replays: Mutex::new(ReplayRegistry::default()),
                metrics: ServeMetrics::default(),
            }),
            drain_grace: options.drain_grace,
        })
    }

    /// The bound address (the actual port when 0 was requested).
    ///
    /// # Errors
    ///
    /// Propagates the socket's `local_addr` failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared state, for tests and metrics scraping.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Accepts and serves connections until `stop` is set (SIGTERM) or
    /// a `shutdown` frame arrives, then drains: no new connections, a
    /// grace period for active jobs, and a [`DrainReport`] of whatever
    /// leaked.
    pub fn run_until(&self, stop: &AtomicBool) -> DrainReport {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if stop.load(Ordering::SeqCst) {
                self.state.draining.store(true, Ordering::SeqCst);
            }
            if self.state.draining() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    ServeMetrics::bump(&self.state.metrics.connections);
                    let state = Arc::clone(&self.state);
                    let handle = std::thread::Builder::new()
                        .name("nwo-serve-conn".to_string())
                        .spawn(move || handle_connection(&state, stream))
                        .expect("spawn connection handler");
                    conns.push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    conns.retain(|h| !h.is_finished());
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        // Drain: active jobs get a grace period to finish. Idle
        // connections notice the drain flag on their next read-timeout
        // tick and hang up on their own.
        let deadline = Instant::now() + self.drain_grace;
        while self.state.metrics.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let leaked = self.state.metrics.active.load(Ordering::SeqCst);
        let conn_deadline = Instant::now() + Duration::from_millis(500);
        while conns.iter().any(|h| !h.is_finished()) && Instant::now() < conn_deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Join what finished; a handler stuck on a leaked job stays
        // detached (the process is about to exit anyway).
        for handle in conns {
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
        DrainReport { leaked }
    }
}

/// Whether the connection loop continues after a request.
enum Flow {
    Continue,
    Stop,
}

fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IDLE_TICK));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        match read_frame(&mut reader) {
            Ok(Frame::Idle) => {
                if state.draining() {
                    return;
                }
            }
            Ok(Frame::Eof) => return,
            Ok(Frame::Payload(payload)) => {
                match handle_request(state, &mut writer, &payload) {
                    Ok(Flow::Continue) => {}
                    // Shutdown acknowledged or the client vanished —
                    // either way this connection is done.
                    Ok(Flow::Stop) | Err(_) => return,
                }
            }
            Err(WireError::Io(e)) if e.kind() == std::io::ErrorKind::Interrupted => {}
            // An oversized length field is the one malformation the
            // decoder catches *before* the stream desynchronizes — the
            // header itself parsed cleanly. Answer with a typed reject
            // so the client learns why, then close: the declared
            // payload was never read, so nothing after it can be
            // trusted as a frame boundary.
            Err(WireError::TooLong(len)) => {
                ServeMetrics::bump(&state.metrics.oversized);
                let detail = format!(
                    "frame declares {len} payload bytes; the cap is {} (1 MiB)",
                    crate::wire::MAX_FRAME_LEN
                );
                let _ = write_frame(&mut writer, &proto::error(0, code::OVERSIZED, &detail));
                return;
            }
            // Foreign magic/version, truncation, slow-loris stalls,
            // socket death: there is no framing left to answer on.
            // Drop the connection.
            Err(_) => return,
        }
    }
}

fn handle_request(
    state: &Arc<ServerState>,
    writer: &mut TcpStream,
    payload: &str,
) -> Result<Flow, WireError> {
    let request = match proto::parse_request(payload) {
        Ok(request) => request,
        Err(detail) => {
            // The id is unknown when parsing failed; 0 marks "unaddressed".
            write_frame(writer, &proto::error(0, code::BAD_REQUEST, &detail))?;
            return Ok(Flow::Continue);
        }
    };
    match request {
        Request::Status { id } => {
            let snap = serve_snapshot(&state.metrics, &state.runner.counters());
            let frame = format!(
                "{{\"t\": \"status\", \"id\": {id}, \"jobs\": {}, \"queue_depth\": {}, \
                 \"draining\": {}, \"metrics\": {}}}",
                state.runner.jobs(),
                state.queue_depth,
                state.draining(),
                snap.to_json_line()
            );
            write_frame(writer, &frame)?;
            Ok(Flow::Continue)
        }
        Request::Cancel { id, job } => {
            let flag = state.cancels.lock().unwrap().get(&job).cloned();
            match flag {
                Some(flag) => {
                    flag.store(true, Ordering::SeqCst);
                    write_frame(writer, &proto::ok(id))?;
                }
                None => {
                    let detail = format!("no active job {job}");
                    write_frame(writer, &proto::error(id, code::BAD_REQUEST, &detail))?;
                }
            }
            Ok(Flow::Continue)
        }
        Request::Shutdown { id } => {
            write_frame(writer, &proto::ok(id))?;
            state.draining.store(true, Ordering::SeqCst);
            Ok(Flow::Stop)
        }
        Request::Sweep {
            id,
            benches,
            scale,
            config,
            linger_ms,
            key,
        } => {
            // Idempotent replay: a retried keyed request whose content
            // matches an already-completed sweep is answered from the
            // registry — no admission, no simulation, truthfully
            // zeroed `done` counters. Checked even while draining: the
            // replay is read-only, so a retry racing a shutdown still
            // gets its result.
            let fingerprint = sweep_fingerprint(&benches, scale, &config, linger_ms);
            if let Some(key) = key {
                let stored = state.replays.lock().unwrap().lookup(key, fingerprint);
                if let Some(table) = stored {
                    ServeMetrics::bump(&state.metrics.replays);
                    write_frame(writer, &proto::accepted(id, 0))?;
                    write_frame(writer, &proto::result(&table))?;
                    write_frame(writer, &proto::done_replayed(id))?;
                    return Ok(Flow::Continue);
                }
            }
            if state.draining() {
                ServeMetrics::bump(&state.metrics.rejected);
                let detail = "server is draining; no new work accepted";
                write_frame(writer, &proto::error(id, code::DRAINING, detail))?;
                return Ok(Flow::Continue);
            }
            if !state.try_admit() {
                ServeMetrics::bump(&state.metrics.rejected);
                let detail = format!(
                    "admission queue full: {} jobs active, depth {}",
                    state.metrics.active.load(Ordering::SeqCst),
                    state.queue_depth
                );
                write_frame(writer, &proto::error(id, code::BUSY, &detail))?;
                return Ok(Flow::Continue);
            }
            let job = state.next_job.fetch_add(1, Ordering::SeqCst) + 1;
            let guard = SlotGuard { state, job };
            let cancel = Arc::new(AtomicBool::new(false));
            state
                .cancels
                .lock()
                .unwrap()
                .insert(job, Arc::clone(&cancel));
            // Resolve every benchmark before admitting work to the pool:
            // a typo'd name must not half-run a sweep.
            let names: Vec<String> = if benches.is_empty() {
                BENCHMARK_NAMES.iter().map(|s| s.to_string()).collect()
            } else {
                benches
            };
            let mut resolved: Vec<(String, u32, Benchmark)> = Vec::with_capacity(names.len());
            for name in names {
                let bench_scale = scale.unwrap_or_else(|| experiment_scale(&name));
                match benchmark(&name, bench_scale) {
                    Some(bench) => resolved.push((name, bench_scale, bench)),
                    None => {
                        ServeMetrics::bump(&state.metrics.failed);
                        let detail =
                            format!("unknown benchmark `{name}`; known: {BENCHMARK_NAMES:?}");
                        write_frame(writer, &proto::error(id, code::BAD_REQUEST, &detail))?;
                        return Ok(Flow::Continue);
                    }
                }
            }
            ServeMetrics::bump(&state.metrics.accepted);
            write_frame(writer, &proto::accepted(id, job))?;
            let replay_slot = key.map(|key| (key, fingerprint));
            run_sweep(
                state,
                writer,
                id,
                job,
                &cancel,
                &resolved,
                config,
                linger_ms,
                replay_slot,
            )?;
            drop(guard);
            Ok(Flow::Continue)
        }
    }
}

/// Executes one admitted sweep: submit everything, poll to completion
/// under the cancel flag and watchdog, stream progress frames, then
/// send the id-free `result` frame and the `done` accounting frame.
#[allow(clippy::too_many_arguments)]
fn run_sweep(
    state: &ServerState,
    writer: &mut TcpStream,
    id: u64,
    job: u64,
    cancel: &AtomicBool,
    resolved: &[(String, u32, Benchmark)],
    config: nwo_sim::SimConfig,
    linger_ms: u64,
    replay_slot: Option<(u64, u64)>,
) -> Result<(), WireError> {
    let start = Instant::now();
    let deadline = state.watchdog.map(|d| start + d);
    let handles: Vec<JobHandle> = resolved
        .iter()
        .map(|(_, bench_scale, bench)| state.runner.submit(bench, *bench_scale, config.clone()))
        .collect();
    let total = handles.len();
    let mut rows: Vec<String> = Vec::with_capacity(total);
    for (done, ((name, bench_scale, _), handle)) in resolved.iter().zip(&handles).enumerate() {
        let report = loop {
            if let Some(interrupted) = interruption(state, cancel, deadline, start) {
                write_frame(writer, &proto::error(id, interrupted.0, &interrupted.1))?;
                return Ok(());
            }
            match handle.try_result() {
                Some(Ok(report)) => break report,
                Some(Err(message)) => {
                    ServeMetrics::bump(&state.metrics.failed);
                    write_frame(writer, &proto::error(id, code::FAILED, &message))?;
                    return Ok(());
                }
                None => std::thread::sleep(POLL),
            }
        };
        rows.push(bench_table_row(name, *bench_scale, &report));
        let done = done + 1;
        let elapsed = start.elapsed().as_secs_f64();
        let eta = if done == 0 {
            0.0
        } else {
            elapsed / done as f64 * total.saturating_sub(done) as f64
        };
        let progress = progress_json("jobs", done, total, &state.runner.counters(), 0, eta);
        write_frame(writer, &progress)?;
    }
    // Testing aid: keep the admission slot occupied so rejection,
    // cancel and watchdog paths can be exercised deterministically.
    let linger_until = start + Duration::from_millis(linger_ms);
    while Instant::now() < linger_until {
        if let Some(interrupted) = interruption(state, cancel, deadline, start) {
            write_frame(writer, &proto::error(id, interrupted.0, &interrupted.1))?;
            return Ok(());
        }
        std::thread::sleep(POLL);
    }
    let mut table = bench_table_header();
    table.push('\n');
    for row in &rows {
        table.push_str(row);
        table.push('\n');
    }
    // Record the replay entry *before* sending the result: the whole
    // point of the idempotency key is the retry after a result frame
    // was computed but never delivered.
    if let Some((key, fingerprint)) = replay_slot {
        state
            .replays
            .lock()
            .unwrap()
            .record(key, fingerprint, table.clone());
    }
    write_frame(writer, &proto::result(&table))?;
    let memo_hits = handles.iter().filter(|h| h.memo_hit).count() as u64;
    let disk_hits = handles.iter().filter(|h| h.disk_hit).count() as u64;
    let sims_run = total as u64 - memo_hits - disk_hits;
    write_frame(
        writer,
        &proto::done(id, job, memo_hits, disk_hits, sims_run),
    )?;
    ServeMetrics::bump(&state.metrics.completed);
    Ok(())
}

/// A content fingerprint for the idempotency registry: everything
/// that determines a sweep's result (and its `linger_ms` side effect),
/// hashed over an unambiguous encoding. Bench names are separated by a
/// unit separator so `["ab", "c"]` and `["a", "bc"]` cannot collide.
fn sweep_fingerprint(
    benches: &[String],
    scale: Option<u32>,
    config: &nwo_sim::SimConfig,
    linger_ms: u64,
) -> u64 {
    let mut desc = String::new();
    for bench in benches {
        desc.push_str(bench);
        desc.push('\u{1f}');
    }
    desc.push_str(&format!(
        "|scale={scale:?}|config={:#018x}|linger={linger_ms}",
        config.fingerprint()
    ));
    nwo_ckpt::fnv1a(desc.as_bytes())
}

/// Checks the cancel flag then the watchdog; returns the error code
/// and detail to send when either fired. The underlying simulations
/// keep running on the pool (std threads cannot be killed safely) —
/// the request detaches, the slot frees, and a later identical request
/// memo-hits the finished result.
fn interruption(
    state: &ServerState,
    cancel: &AtomicBool,
    deadline: Option<Instant>,
    start: Instant,
) -> Option<(&'static str, String)> {
    if cancel.load(Ordering::SeqCst) {
        ServeMetrics::bump(&state.metrics.cancelled);
        return Some((
            code::CANCELLED,
            "job abandoned by a cancel frame".to_string(),
        ));
    }
    if let Some(deadline) = deadline {
        if Instant::now() >= deadline {
            ServeMetrics::bump(&state.metrics.timeouts);
            let detail = format!(
                "watchdog: {:.3}s elapsed, budget {:.3}s",
                start.elapsed().as_secs_f64(),
                state.watchdog.map(|d| d.as_secs_f64()).unwrap_or_default()
            );
            return Some((code::TIMEOUT, detail));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_depth_rejects_zero_and_garbage() {
        assert_eq!(parse_queue_depth("3"), Ok(3));
        assert_eq!(parse_queue_depth(" 8 "), Ok(8));
        for bad in ["0", "", "abc", "-1", "1.5"] {
            assert_eq!(
                parse_queue_depth(bad),
                Err(ConfigError::ZeroParameter {
                    what: "serve queue depth"
                }),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn replay_registry_matches_content_and_bounds_memory() {
        let mut reg = ReplayRegistry::default();
        reg.record(7, 0xAA, "table-a".to_string());
        assert_eq!(reg.lookup(7, 0xAA).as_deref(), Some("table-a"));
        assert_eq!(
            reg.lookup(7, 0xBB),
            None,
            "a colliding key with different content must miss, not replay the wrong table"
        );
        assert_eq!(reg.lookup(8, 0xAA), None);

        // Re-recording the same key replaces in place (no double order
        // entry), and the FIFO bound evicts the oldest keys.
        reg.record(7, 0xCC, "table-b".to_string());
        assert_eq!(reg.lookup(7, 0xCC).as_deref(), Some("table-b"));
        for key in 0..REPLAY_CAPACITY as u64 {
            reg.record(1000 + key, key, format!("t{key}"));
        }
        assert_eq!(reg.entries.len(), REPLAY_CAPACITY);
        assert_eq!(reg.order.len(), REPLAY_CAPACITY);
        assert_eq!(reg.lookup(7, 0xCC), None, "oldest entry was evicted");
        assert!(reg
            .lookup(
                1000 + REPLAY_CAPACITY as u64 - 1,
                REPLAY_CAPACITY as u64 - 1
            )
            .is_some());
    }

    #[test]
    fn sweep_fingerprints_separate_distinct_requests() {
        let base = nwo_sim::SimConfig::default();
        let benches = |names: &[&str]| names.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let a = sweep_fingerprint(&benches(&["ab", "c"]), None, &base, 0);
        let b = sweep_fingerprint(&benches(&["a", "bc"]), None, &base, 0);
        assert_ne!(a, b, "bench-name boundaries are part of the content");
        let scaled = sweep_fingerprint(&benches(&["ab", "c"]), Some(1), &base, 0);
        assert_ne!(a, scaled);
        let lingered = sweep_fingerprint(&benches(&["ab", "c"]), None, &base, 50);
        assert_ne!(a, lingered);
        let wide = sweep_fingerprint(
            &benches(&["ab", "c"]),
            None,
            &base.clone().with_wide_decode(),
            0,
        );
        assert_ne!(a, wide);
        // Same content, same fingerprint — the property replay relies on.
        assert_eq!(a, sweep_fingerprint(&benches(&["ab", "c"]), None, &base, 0));
    }

    #[test]
    fn admission_is_bounded_by_queue_depth() {
        let runner = Arc::new(Runner::with_jobs(1));
        let options = ServeOptions {
            queue_depth: 2,
            ..ServeOptions::ephemeral()
        };
        let server = Server::bind(&options, runner).expect("binds ephemeral port");
        let state = server.state();
        assert!(state.try_admit());
        assert!(state.try_admit());
        assert!(!state.try_admit(), "third job exceeds depth 2");
        state.metrics.active.fetch_sub(1, Ordering::SeqCst);
        assert!(state.try_admit(), "a released slot is reusable");
    }
}
