//! `serve.*` metrics: admission, outcome and cache-tier counters
//! exposed through the obs registry, so a `status` request returns the
//! same snapshot shape (`Snapshot::to_json_line`) as every other
//! metrics surface in the repo.

use nwo_bench::runner::RunnerCounters;
use nwo_obs::{MetricSource, Registry};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic server counters plus the live active-jobs gauge. All
/// relaxed atomics: they are statistics, never synchronization.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests admitted past the bounded queue.
    pub accepted: AtomicU64,
    /// Requests rejected by admission control (`busy` / `draining`).
    pub rejected: AtomicU64,
    /// Requests that returned a result frame.
    pub completed: AtomicU64,
    /// Requests abandoned by a cancel frame.
    pub cancelled: AtomicU64,
    /// Requests killed by the per-request watchdog.
    pub timeouts: AtomicU64,
    /// Requests whose simulation failed (divergence, panic).
    pub failed: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Frames rejected for declaring a payload over the 1 MiB cap.
    pub oversized: AtomicU64,
    /// Sweeps answered from the idempotency replay registry — a
    /// retried request whose key matched an already-completed sweep.
    pub replays: AtomicU64,
    /// Jobs currently holding an admission slot.
    pub active: AtomicU64,
}

impl ServeMetrics {
    /// Relaxed increment, the only mutation the server needs.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

impl MetricSource for ServeMetrics {
    fn collect(&self, registry: &mut Registry) {
        registry.counter("accepted", self.accepted.load(Ordering::Relaxed));
        registry.counter("rejected", self.rejected.load(Ordering::Relaxed));
        registry.counter("completed", self.completed.load(Ordering::Relaxed));
        registry.counter("cancelled", self.cancelled.load(Ordering::Relaxed));
        registry.counter("timeouts", self.timeouts.load(Ordering::Relaxed));
        registry.counter("failed", self.failed.load(Ordering::Relaxed));
        registry.counter("connections", self.connections.load(Ordering::Relaxed));
        registry.counter("oversized", self.oversized.load(Ordering::Relaxed));
        registry.gauge("active", self.active.load(Ordering::Relaxed) as f64);
        registry.group("retry", |r| {
            r.counter("replays", self.replays.load(Ordering::Relaxed));
        });
    }
}

/// Collects the serve counters and the runner's cache-tier counters
/// into one snapshot under the `serve.` namespace — cache-hit tiers
/// (`serve.cache.memo_hits` / `disk_hits` / `warm_hits` /
/// `warm_disk_hits`) sit next to the admission counters so a single
/// `status` frame answers "is the cache working".
pub fn serve_snapshot(metrics: &ServeMetrics, cache: &RunnerCounters) -> nwo_obs::Snapshot {
    let mut registry = Registry::new();
    registry.group("serve", |r| {
        metrics.collect(r);
        r.group("cache", |r| {
            r.counter("submitted", cache.submitted);
            r.counter("memo_hits", cache.memo_hits);
            r.counter("disk_hits", cache.disk_hits);
            r.counter("sims_run", cache.sims_run);
            r.counter("warmups_run", cache.warmups_run);
            r.counter("warm_hits", cache.warm_hits);
            r.counter("warm_disk_hits", cache.warm_disk_hits);
        });
    });
    registry.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_namespaces_admission_and_cache_tiers() {
        let metrics = ServeMetrics::default();
        ServeMetrics::bump(&metrics.accepted);
        ServeMetrics::bump(&metrics.accepted);
        ServeMetrics::bump(&metrics.rejected);
        metrics.active.store(1, Ordering::Relaxed);
        let cache = RunnerCounters {
            submitted: 5,
            memo_hits: 2,
            disk_hits: 1,
            sims_run: 2,
            warmups_run: 1,
            warm_hits: 1,
            warm_disk_hits: 1,
        };
        ServeMetrics::bump(&metrics.replays);
        let snap = serve_snapshot(&metrics, &cache);
        assert_eq!(snap.counter("serve.accepted"), Some(2));
        assert_eq!(snap.counter("serve.rejected"), Some(1));
        assert_eq!(snap.counter("serve.oversized"), Some(0));
        assert_eq!(snap.counter("serve.retry.replays"), Some(1));
        assert_eq!(snap.gauge("serve.active"), Some(1.0));
        assert_eq!(snap.counter("serve.cache.memo_hits"), Some(2));
        assert_eq!(snap.counter("serve.cache.warm_disk_hits"), Some(1));
        // The line is parseable JSON, like every obs snapshot.
        nwo_obs::json::parse(&snap.to_json_line()).expect("snapshot line parses");
    }
}
