//! Deterministic hostile conditions for the serving stack.
//!
//! This is the transport-layer sibling of `nwo-verify`'s fault
//! campaigns: the same lockstep-oracle philosophy — every claim checked
//! against an independent witness, every fault either *detected* or
//! *gracefully degraded* — applied to bytes on the wire instead of bits
//! in the datapath. Three pieces:
//!
//! * [`FrameFuzzer`] — a seeded, structure-aware mutator of valid
//!   frames (truncation, length-field lies, magic/version corruption,
//!   oversized payloads, mid-frame EOF, garbage) with
//!   [`fuzz_decoder`] for the in-process codec and [`fuzz_server`]
//!   for a live daemon over real sockets. The contract under fuzz:
//!   never panic, never hang past the deadline, always answer with a
//!   typed error frame or a clean close.
//! * [`ChaosProxy`] — an in-process TCP interposer applying a seeded
//!   [`NetPlan`] (delay, drip-fed writes, header corruption, resets,
//!   mid-frame stalls) between a real client and a real server, with
//!   injected-fault counts in [`ChaosStats`] (`serve.chaos.*`).
//! * [`repro_banner`] — every failure path embeds the seed in its
//!   message, so any CI failure reproduces locally with one env var
//!   (`NWO_CHAOS_SEED`).
//!
//! Everything is seeded [`XorShift64`] — no wall clock, no OS entropy —
//! so a chaos run is as replayable as a simulation: the same seed
//! yields the same mutations, the same proxy faults, in the same order.
//!
//! One deliberate restriction: the proxy corrupts only frame *header*
//! bytes (magic/version, offsets 0..6). The wire format carries no
//! payload checksum, so a flipped payload byte could silently alter a
//! result table — an *undetectable* fault, which is exactly what the
//! byte-identity contract forbids us to inject. Header corruption is
//! always detected ([`WireError::BadMagic`] / [`WireError::Version`]);
//! length-field lies stay the fuzzer's job, on sockets it controls.

use crate::proto;
use crate::wire::{read_frame, Frame, WireError, MAGIC, MAX_FRAME_LEN, WIRE_VERSION};
use nwo_obs::Registry;
use nwo_verify::XorShift64;
use std::io::{Cursor, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The env var every chaos entry point reads its seed from, and the
/// one a failure banner tells you to set.
pub const SEED_ENV: &str = "NWO_CHAOS_SEED";

/// The reproduction line embedded in every chaos failure message:
/// asserting on it is how the tests guarantee no failure ships without
/// its seed.
pub fn repro_banner(seed: u64) -> String {
    format!("chaos seed {seed:#018x} — rerun with {SEED_ENV}={seed:#x}")
}

/// The seed to use: `NWO_CHAOS_SEED` (hex with `0x` prefix, or
/// decimal) when set, otherwise `default`. Unparseable values fall
/// back to `default` — a typo'd override must not silently change
/// which campaign runs, so the banner always names the seed in use.
pub fn env_seed(default: u64) -> u64 {
    env_seed_opt().unwrap_or(default)
}

/// Like [`env_seed`] but with no default: `Some(seed)` only when
/// `NWO_CHAOS_SEED` is set and parseable. This is how opt-in surfaces
/// (the `nwo client` chaos hook) tell "user asked for chaos" apart
/// from "chaos with a default seed".
pub fn env_seed_opt() -> Option<u64> {
    let text = std::env::var(SEED_ENV).ok()?;
    let text = text.trim();
    match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => text.parse::<u64>().ok(),
    }
}

// ---------------------------------------------------------------------
// Structure-aware wire fuzzer
// ---------------------------------------------------------------------

/// The mutation classes the fuzzer applies to a valid frame. Kept as a
/// typed enum (not just byte soup) so reports can say *which* class a
/// decoder bug hides in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// No mutation — the frame must decode back to its payload.
    Valid,
    /// Two back-to-back valid frames — both must decode.
    DoubleFrame,
    /// The stream ends partway through the 10-byte header.
    TruncatedHeader,
    /// The stream ends partway through the declared payload.
    TruncatedPayload,
    /// The length field declares fewer bytes than follow.
    LengthLieShort,
    /// The length field declares more bytes than follow (but under the
    /// cap) — a mid-frame EOF from the reader's point of view.
    LengthLieLong,
    /// The length field declares more than [`MAX_FRAME_LEN`] — must be
    /// the typed [`WireError::TooLong`], *before* any allocation.
    Oversized,
    /// One of the four magic bytes is flipped.
    BadMagic,
    /// A foreign wire version.
    BadVersion,
    /// A payload byte replaced with `0xFF` (never valid UTF-8).
    NonUtf8,
    /// Unframed random bytes, as a port scanner would send.
    Garbage,
}

/// All mutation classes, in the order the fuzzer cycles priorities.
pub const MUTATIONS: [Mutation; 11] = [
    Mutation::Valid,
    Mutation::DoubleFrame,
    Mutation::TruncatedHeader,
    Mutation::TruncatedPayload,
    Mutation::LengthLieShort,
    Mutation::LengthLieLong,
    Mutation::Oversized,
    Mutation::BadMagic,
    Mutation::BadVersion,
    Mutation::NonUtf8,
    Mutation::Garbage,
];

/// One generated fuzz case: the bytes to feed and what the decoder
/// owes us for them.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Which mutation class produced it.
    pub mutation: Mutation,
    /// The (possibly mangled) wire bytes.
    pub bytes: Vec<u8>,
    /// The original payload, for `Valid`/`DoubleFrame` round-trip
    /// checks.
    pub payload: String,
}

/// Seeded generator of [`FuzzCase`]s from a corpus of valid protocol
/// payloads. Deterministic: the same seed yields the same case
/// sequence.
pub struct FrameFuzzer {
    rng: XorShift64,
    corpus: Vec<String>,
    cases: u64,
}

impl FrameFuzzer {
    /// A fuzzer seeded with `seed`, over a corpus of protocol request
    /// payloads plus degenerate ones (empty, bare braces, non-JSON, a
    /// multi-KiB string). Deliberately no `shutdown` request and no
    /// heavyweight sweep: a *valid* case must be survivable by a live
    /// fuzz target, so the only work-carrying entry is one scale-0
    /// bench and the rest are typed rejections (unknown benchmark,
    /// unknown job, malformed JSON).
    pub fn new(seed: u64) -> FrameFuzzer {
        let corpus = vec![
            proto::plain_request("status", 1),
            proto::cancel_request(3, 9),
            proto::sweep_request(
                4,
                &["mpeg2-enc".to_string()],
                Some(0),
                &["gating", "packing"],
                0,
                Some(0xFEED),
            ),
            proto::sweep_request(5, &["no-such-bench".to_string()], Some(0), &[], 0, None),
            String::new(),
            "{}".to_string(),
            "not json at all".to_string(),
            "x".repeat(4096),
        ];
        FrameFuzzer {
            rng: XorShift64::new(seed),
            corpus,
            cases: 0,
        }
    }

    /// The next deterministic case.
    pub fn next_case(&mut self) -> FuzzCase {
        self.cases += 1;
        let payload = self.corpus[self.rng.below(self.corpus.len() as u64) as usize].clone();
        let mutation = MUTATIONS[self.rng.below(MUTATIONS.len() as u64) as usize];
        let mut bytes = frame_bytes(&payload);
        match mutation {
            Mutation::Valid => {}
            Mutation::DoubleFrame => {
                let again = frame_bytes(&payload);
                bytes.extend_from_slice(&again);
            }
            Mutation::TruncatedHeader => bytes.truncate(self.rng.below(10) as usize),
            Mutation::TruncatedPayload => {
                let keep = 10 + self.rng.below((bytes.len() as u64 - 10).max(1)) as usize;
                bytes.truncate(keep.min(bytes.len().saturating_sub(1)).max(10));
            }
            Mutation::LengthLieShort => {
                let actual = (bytes.len() - 10) as u64;
                let lie = self.rng.below(actual.max(1)) as u32;
                bytes[6..10].copy_from_slice(&lie.to_le_bytes());
            }
            Mutation::LengthLieLong => {
                let actual = (bytes.len() - 10) as u64;
                let lie = (actual + 1 + self.rng.below(4096)).min(u64::from(MAX_FRAME_LEN)) as u32;
                bytes[6..10].copy_from_slice(&lie.to_le_bytes());
            }
            Mutation::Oversized => {
                let over = MAX_FRAME_LEN as u64
                    + 1
                    + self
                        .rng
                        .below(u64::from(u32::MAX) - u64::from(MAX_FRAME_LEN) - 1);
                bytes[6..10].copy_from_slice(&(over as u32).to_le_bytes());
            }
            Mutation::BadMagic => {
                let i = self.rng.below(4) as usize;
                bytes[i] ^= 1 << self.rng.below(8);
                // A flip that lands back on the magic is no mutation at
                // all; force a definite mismatch.
                if bytes[..4] == MAGIC {
                    bytes[i] = !bytes[i];
                }
            }
            Mutation::BadVersion => {
                let mut v = self.rng.below(u64::from(u16::MAX)) as u16;
                if v == WIRE_VERSION {
                    v = v.wrapping_add(1);
                }
                bytes[4..6].copy_from_slice(&v.to_le_bytes());
            }
            Mutation::NonUtf8 => {
                if bytes.len() > 10 {
                    let i = 10 + self.rng.below((bytes.len() - 10) as u64) as usize;
                    bytes[i] = 0xFF;
                } else {
                    // Empty payload: nothing to corrupt, degrade to
                    // garbage bytes.
                    bytes = self.garbage();
                }
            }
            Mutation::Garbage => bytes = self.garbage(),
        }
        FuzzCase {
            mutation,
            bytes,
            payload,
        }
    }

    /// Cases generated so far.
    pub fn cases(&self) -> u64 {
        self.cases
    }

    fn garbage(&mut self) -> Vec<u8> {
        let len = 1 + self.rng.below(64) as usize;
        (0..len).map(|_| self.rng.below(256) as u8).collect()
    }
}

/// Encodes `payload` as one valid wire frame.
fn frame_bytes(payload: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(10 + payload.len());
    crate::wire::write_frame(&mut buf, payload).expect("corpus payloads fit the frame cap");
    buf
}

/// What a fuzz campaign observed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// `Valid`/`DoubleFrame` cases that round-tripped.
    pub valid_decoded: u64,
    /// Cases answered with a typed [`WireError`].
    pub typed_errors: u64,
}

/// Feeds `iters` seeded fuzz cases straight into the frame decoder.
///
/// The contract: no panic, ever; `Valid`/`DoubleFrame` cases decode
/// back to their payloads; `Oversized` cases produce exactly
/// [`WireError::TooLong`]; everything else produces *some* typed
/// outcome (a frame or a `WireError`) within a bounded number of
/// reads.
///
/// # Errors
///
/// A description of the first contract violation, always containing
/// [`repro_banner`]`(seed)`.
pub fn fuzz_decoder(seed: u64, iters: u64) -> Result<FuzzReport, String> {
    let mut fuzzer = FrameFuzzer::new(seed);
    let mut report = FuzzReport::default();
    for case_index in 0..iters {
        let case = fuzzer.next_case();
        let fail = |what: String| {
            format!(
                "wire-fuzz case {case_index} ({:?}): {what} [{}]",
                case.mutation,
                repro_banner(seed)
            )
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut cursor = Cursor::new(case.bytes.clone());
            let mut decoded: Vec<Result<Frame, WireError>> = Vec::new();
            // A Cursor cannot block, so the only hang risk is a logic
            // loop; bound the reads so even that becomes a failure.
            for _ in 0..8 {
                let result = read_frame(&mut cursor);
                let stop = matches!(result, Err(_) | Ok(Frame::Eof));
                decoded.push(result);
                if stop {
                    break;
                }
            }
            decoded
        }));
        let decoded = match outcome {
            Ok(decoded) => decoded,
            Err(panic) => {
                let text = panic_text(&panic);
                return Err(fail(format!("decoder panicked: {text}")));
            }
        };
        report.cases += 1;
        match case.mutation {
            Mutation::Valid | Mutation::DoubleFrame => {
                let want = if case.mutation == Mutation::Valid {
                    1
                } else {
                    2
                };
                let payloads = decoded
                    .iter()
                    .filter(|r| matches!(r, Ok(Frame::Payload(p)) if *p == case.payload))
                    .count();
                if payloads != want {
                    return Err(fail(format!(
                        "expected {want} round-tripped payload(s), decoded {decoded:?}"
                    )));
                }
                report.valid_decoded += 1;
            }
            Mutation::Oversized => {
                if !matches!(decoded.last(), Some(Err(WireError::TooLong(n))) if *n > u64::from(MAX_FRAME_LEN))
                {
                    return Err(fail(format!(
                        "oversized length must be the typed TooLong reject, got {decoded:?}"
                    )));
                }
                report.typed_errors += 1;
            }
            _ => {
                if decoded.iter().any(|r| r.is_err()) {
                    report.typed_errors += 1;
                }
            }
        }
    }
    Ok(report)
}

fn panic_text(panic: &Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// What a socket-level campaign against a live daemon observed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerFuzzReport {
    /// Hostile connections opened.
    pub connections: u64,
    /// Typed `error` frames the server answered with before closing.
    pub error_frames: u64,
    /// Liveness probes (a full `status` round trip on a clean
    /// connection) that succeeded between hostile batches.
    pub health_checks: u64,
}

/// How long a hostile connection may take to be answered or closed
/// before the campaign declares the server hung. Generous next to the
/// server's own 2s slow-loris budget.
const CONN_DEADLINE: Duration = Duration::from_secs(10);

/// Opens `conns` hostile connections against a live daemon at `addr`,
/// each fed one seeded fuzz case, asserting the liveness contract:
/// every connection is answered or closed within [`CONN_DEADLINE`],
/// and the server still answers a clean `status` request after every
/// batch of sixteen (no resource leak, no wedged accept loop).
///
/// The campaign closes its write half after each case instead of
/// waiting out the server's mid-frame stall budget — truncation
/// becomes an immediate EOF, keeping a 10k-case CI run in seconds.
///
/// # Errors
///
/// A description of the first violation, always containing
/// [`repro_banner`]`(seed)`.
pub fn fuzz_server(addr: &str, seed: u64, conns: u64) -> Result<ServerFuzzReport, String> {
    let mut fuzzer = FrameFuzzer::new(seed);
    let mut report = ServerFuzzReport::default();
    for conn_index in 0..conns {
        let case = fuzzer.next_case();
        let fail = |what: String| {
            format!(
                "server-fuzz connection {conn_index} ({:?}): {what} [{}]",
                case.mutation,
                repro_banner(seed)
            )
        };
        let stream = TcpStream::connect(addr).map_err(|e| fail(format!("connect: {e}")))?;
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .map_err(|e| fail(format!("set_read_timeout: {e}")))?;
        let mut stream = stream;
        // The server may reject-and-close before we finish writing;
        // a send error is a legal outcome, not a campaign failure.
        let _ = stream.write_all(&case.bytes);
        let _ = stream.shutdown(Shutdown::Write);
        report.connections += 1;
        // Drain whatever the server answers until it closes our read
        // half. Anything decodable counts; `error` frames are tallied.
        let deadline = Instant::now() + CONN_DEADLINE;
        loop {
            if Instant::now() >= deadline {
                return Err(fail(format!(
                    "server neither answered nor closed within {CONN_DEADLINE:?}"
                )));
            }
            match read_frame(&mut stream) {
                Ok(Frame::Payload(frame)) => {
                    if frame.contains("\"t\": \"error\"") {
                        report.error_frames += 1;
                    }
                }
                Ok(Frame::Idle) => {}
                Ok(Frame::Eof) => break,
                // The server hung up mid-frame or reset us — a close,
                // which the contract allows.
                Err(_) => break,
            }
        }
        if conn_index % 16 == 15 {
            health_check(addr).map_err(|e| fail(format!("liveness probe failed: {e}")))?;
            report.health_checks += 1;
        }
    }
    health_check(addr)
        .map_err(|e| format!("final liveness probe failed: {e} [{}]", repro_banner(seed)))?;
    report.health_checks += 1;
    Ok(report)
}

/// One clean `status` round trip — the liveness witness between
/// hostile batches.
fn health_check(addr: &str) -> Result<(), String> {
    let mut client = crate::client::Client::connect(addr).map_err(|e| e.to_string())?;
    let status = client.status().map_err(|e| e.to_string())?;
    if status.contains("\"t\": \"status\"") {
        Ok(())
    } else {
        Err(format!("unexpected status reply: {status}"))
    }
}

// ---------------------------------------------------------------------
// Chaos proxy
// ---------------------------------------------------------------------

/// Per-frame fault probabilities (in per-mille) and magnitudes for a
/// [`ChaosProxy`]. Zeroed fields never fire, so [`NetPlan::clean`] is
/// a plain pass-through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetPlan {
    /// ‰ chance a forwarded frame is delayed.
    pub delay_pm: u32,
    /// Maximum injected delay in milliseconds.
    pub delay_max_ms: u64,
    /// ‰ chance a frame is drip-fed in small chunks instead of one
    /// write.
    pub drip_pm: u32,
    /// ‰ chance a *dripped* frame also stalls mid-frame.
    pub stall_pm: u32,
    /// Length of a mid-frame stall in milliseconds.
    pub stall_ms: u64,
    /// ‰ chance one frame-header byte (offset 0..6: magic/version —
    /// never the payload, see the module docs) is bit-flipped.
    pub corrupt_pm: u32,
    /// ‰ chance the connection is reset instead of forwarding the
    /// frame.
    pub reset_pm: u32,
}

impl NetPlan {
    /// No faults: the proxy is a transparent relay.
    pub fn clean() -> NetPlan {
        NetPlan {
            delay_pm: 0,
            delay_max_ms: 0,
            drip_pm: 0,
            stall_pm: 0,
            stall_ms: 0,
            corrupt_pm: 0,
            reset_pm: 0,
        }
    }

    /// Occasional slowness, no connection-killing faults — what a
    /// congested but honest network looks like.
    pub fn gentle() -> NetPlan {
        NetPlan {
            delay_pm: 300,
            delay_max_ms: 5,
            drip_pm: 300,
            stall_pm: 100,
            stall_ms: 30,
            corrupt_pm: 0,
            reset_pm: 0,
        }
    }

    /// Everything at once: delays, drips, stalls, header corruption
    /// and resets. A [`crate::client::healing_sweep`] client must
    /// still converge to the byte-identical table through this.
    pub fn aggressive() -> NetPlan {
        NetPlan {
            delay_pm: 350,
            delay_max_ms: 4,
            drip_pm: 300,
            stall_pm: 200,
            stall_ms: 60,
            corrupt_pm: 120,
            reset_pm: 80,
        }
    }
}

/// Injected-fault counters for one [`ChaosProxy`], exposed as
/// `serve.chaos.*` through the obs registry.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Connections interposed.
    pub connections: AtomicU64,
    /// Frames forwarded (either direction).
    pub frames: AtomicU64,
    /// Frames delayed.
    pub delays: AtomicU64,
    /// Frames drip-fed in small chunks.
    pub drips: AtomicU64,
    /// Mid-frame stalls injected into dripped frames.
    pub stalls: AtomicU64,
    /// Frame headers bit-flipped.
    pub corruptions: AtomicU64,
    /// Connections reset instead of forwarded.
    pub resets: AtomicU64,
}

impl ChaosStats {
    /// Total faults injected (everything except clean forwards).
    pub fn faults(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
            + self.drips.load(Ordering::Relaxed)
            + self.stalls.load(Ordering::Relaxed)
            + self.corruptions.load(Ordering::Relaxed)
            + self.resets.load(Ordering::Relaxed)
    }

    /// A `serve.chaos.*` snapshot, the same shape as every other obs
    /// metrics surface.
    pub fn snapshot(&self) -> nwo_obs::Snapshot {
        let mut registry = Registry::new();
        registry.group("serve", |r| {
            r.group("chaos", |r| {
                r.counter("connections", self.connections.load(Ordering::Relaxed));
                r.counter("frames", self.frames.load(Ordering::Relaxed));
                r.counter("delays", self.delays.load(Ordering::Relaxed));
                r.counter("drips", self.drips.load(Ordering::Relaxed));
                r.counter("stalls", self.stalls.load(Ordering::Relaxed));
                r.counter("corruptions", self.corruptions.load(Ordering::Relaxed));
                r.counter("resets", self.resets.load(Ordering::Relaxed));
            });
        });
        registry.finish()
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// An in-process TCP fault interposer: listens on an ephemeral port,
/// forwards each connection to `upstream`, and applies a seeded
/// [`NetPlan`] frame by frame in both directions.
///
/// Fault decisions are drawn from a per-connection, per-direction
/// [`XorShift64`] derived from the proxy seed and the accept order —
/// never from the wall clock — so a single-client retry sequence sees
/// a deterministic fault schedule for a given seed.
pub struct ChaosProxy {
    addr: SocketAddr,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts the proxy in front of `upstream` (`host:port`).
    ///
    /// # Errors
    ///
    /// Any socket error from binding the ephemeral listen port.
    pub fn start(upstream: &str, plan: NetPlan, seed: u64) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ChaosStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let upstream = upstream.to_string();
        let accept_stats = Arc::clone(&stats);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("nwo-chaos-accept".to_string())
            .spawn(move || {
                let mut conn_index: u64 = 0;
                while !accept_stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((downstream, _)) => {
                            let up = match TcpStream::connect(&upstream) {
                                Ok(up) => up,
                                // Upstream gone: drop the client; it
                                // reads an immediate EOF/reset.
                                Err(_) => continue,
                            };
                            ChaosStats::bump(&accept_stats.connections);
                            let index = conn_index;
                            conn_index += 1;
                            spawn_pumps(
                                downstream,
                                up,
                                plan,
                                seed,
                                index,
                                &accept_stats,
                                &accept_stop,
                            );
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
            .expect("spawn chaos accept loop");
        Ok(ChaosProxy {
            addr,
            stats,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address — point clients here instead of at
    /// the real daemon.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// The injected-fault counters.
    pub fn stats(&self) -> Arc<ChaosStats> {
        Arc::clone(&self.stats)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Pump threads notice the stop flag on their next 50ms read
        // tick and exit on their own.
    }
}

/// Spawns the two directional pump threads for one interposed
/// connection. Each direction gets an independent RNG derived from
/// `(seed, index, direction)` so fault schedules do not interleave
/// nondeterministically across threads.
fn spawn_pumps(
    downstream: TcpStream,
    upstream: TcpStream,
    plan: NetPlan,
    seed: u64,
    index: u64,
    stats: &Arc<ChaosStats>,
    stop: &Arc<AtomicBool>,
) {
    let pairs = [
        (downstream.try_clone(), upstream.try_clone(), 0u64),
        (upstream.try_clone(), downstream.try_clone(), 1u64),
    ];
    for (src, dst, direction) in pairs {
        let (src, dst) = match (src, dst) {
            (Ok(src), Ok(dst)) => (src, dst),
            _ => return,
        };
        let rng = XorShift64::new(
            seed ^ (index.wrapping_mul(2).wrapping_add(direction))
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ 1,
        );
        let stats = Arc::clone(stats);
        let stop = Arc::clone(stop);
        let _ = std::thread::Builder::new()
            .name(format!("nwo-chaos-pump-{index}-{direction}"))
            .spawn(move || pump(src, dst, plan, rng, &stats, &stop));
    }
}

/// Forwards frames from `src` to `dst`, applying the plan's faults.
/// Exits (shutting both sockets down) on EOF, any socket error, a
/// planned reset, or the proxy stop flag.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: NetPlan,
    mut rng: XorShift64,
    stats: &ChaosStats,
    stop: &AtomicBool,
) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(50)));
    while let Some(mut frame) = read_raw_frame(&mut src, stop) {
        ChaosStats::bump(&stats.frames);
        if rng.below(1000) < u64::from(plan.reset_pm) {
            ChaosStats::bump(&stats.resets);
            break;
        }
        if rng.below(1000) < u64::from(plan.corrupt_pm) {
            // Header bytes 0..6 only — always-detectable corruption
            // (see the module docs for why the payload is off-limits).
            let i = rng.below(6) as usize;
            frame[i] ^= 1 << rng.below(8);
            ChaosStats::bump(&stats.corruptions);
        }
        if plan.delay_max_ms > 0 && rng.below(1000) < u64::from(plan.delay_pm) {
            std::thread::sleep(Duration::from_millis(1 + rng.below(plan.delay_max_ms)));
            ChaosStats::bump(&stats.delays);
        }
        if rng.below(1000) < u64::from(plan.drip_pm) {
            ChaosStats::bump(&stats.drips);
            let stall_at = if rng.below(1000) < u64::from(plan.stall_pm) {
                ChaosStats::bump(&stats.stalls);
                Some(rng.below(frame.len() as u64) as usize)
            } else {
                None
            };
            let chunk = (frame.len() / 8).max(1);
            let mut sent = 0;
            let mut failed = false;
            for piece in frame.chunks(chunk) {
                if let Some(at) = stall_at {
                    if sent <= at && at < sent + piece.len() {
                        std::thread::sleep(Duration::from_millis(plan.stall_ms));
                    }
                }
                if dst.write_all(piece).is_err() {
                    failed = true;
                    break;
                }
                let _ = dst.flush();
                sent += piece.len();
            }
            if failed {
                break;
            }
        } else if dst.write_all(&frame).is_err() {
            break;
        }
        let _ = dst.flush();
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// Reads one raw frame (10-byte header plus declared payload) without
/// decoding it. `None` on EOF, error, an over-cap declared length
/// (the header is still forwarded by the caller reading `Some` — an
/// over-cap length returns just the header so the receiver can issue
/// its typed reject), or the stop flag.
fn read_raw_frame(src: &mut TcpStream, stop: &AtomicBool) -> Option<Vec<u8>> {
    let mut head = [0u8; 10];
    if !read_full(src, &mut head, stop) {
        return None;
    }
    let len = u32::from_le_bytes([head[6], head[7], head[8], head[9]]);
    let mut frame = head.to_vec();
    if len > MAX_FRAME_LEN {
        // Do not allocate a hostile length; forward the bare header and
        // let the receiving decoder reject it.
        return Some(frame);
    }
    let mut payload = vec![0u8; len as usize];
    if len > 0 && !read_full(src, &mut payload, stop) {
        return None;
    }
    frame.extend_from_slice(&payload);
    Some(frame)
}

/// Fills `buf` from a socket with a 50ms read timeout, polling the
/// stop flag between timeouts. False on EOF, error, or stop.
fn read_full(src: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        match src.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_banner_names_the_seed_and_env_var() {
        let banner = repro_banner(0xDEAD_BEEF);
        assert!(banner.contains("0x00000000deadbeef"), "{banner}");
        assert!(banner.contains("NWO_CHAOS_SEED=0xdeadbeef"), "{banner}");
    }

    #[test]
    fn fuzz_cases_are_deterministic_per_seed() {
        let mut a = FrameFuzzer::new(42);
        let mut b = FrameFuzzer::new(42);
        for _ in 0..256 {
            let (ca, cb) = (a.next_case(), b.next_case());
            assert_eq!(ca.mutation, cb.mutation);
            assert_eq!(ca.bytes, cb.bytes);
        }
        let mut c = FrameFuzzer::new(43);
        let differs = (0..256).any(|_| {
            let (ca, cc) = (a.next_case(), c.next_case());
            ca.bytes != cc.bytes
        });
        assert!(differs, "different seeds must explore differently");
    }

    #[test]
    fn decoder_survives_a_seeded_campaign() {
        // A real slice of the CI campaign: every mutation class gets
        // hit hundreds of times even at this budget.
        let report = fuzz_decoder(env_seed(0xA5A5), 2000).expect("no contract violations");
        assert_eq!(report.cases, 2000);
        assert!(report.valid_decoded > 0, "valid cases must round-trip");
        assert!(
            report.typed_errors > 0,
            "mutations must produce typed errors"
        );
    }

    #[test]
    fn env_seed_parses_hex_and_decimal() {
        // Not set in the test environment (serve tests scrub it), so
        // the default flows through.
        assert_eq!(env_seed(7), 7);
    }

    #[test]
    fn clean_plan_injects_nothing() {
        let plan = NetPlan::clean();
        assert_eq!(plan.corrupt_pm, 0);
        assert_eq!(plan.reset_pm, 0);
        let stats = ChaosStats::default();
        assert_eq!(stats.faults(), 0);
        let snap = stats.snapshot();
        assert_eq!(snap.counter("serve.chaos.frames"), Some(0));
        assert_eq!(snap.counter("serve.chaos.resets"), Some(0));
    }
}
