//! Request/response payloads for the serve protocol.
//!
//! Every frame payload is one flat JSON object with a `"t"`
//! discriminator, the same convention as the repo's other JSONL
//! streams (telemetry lines, `NWO_PROGRESS` ticks, `BENCH_harness.json`
//! entries). Client → server frames are `"t": "req"` with a `kind`;
//! server → client frames are `accepted`, `progress`, `result`,
//! `done`, `status`, `ok` or `error`.
//!
//! Two deliberate shape rules keep the determinism contract testable:
//!
//! * **`result` frames carry no request id, no job id and no cache
//!   tier** — only the table text. N clients issuing the same sweep
//!   therefore receive byte-identical `result` frames whether the
//!   answer came from a cold simulation, the memo cache or the disk
//!   cache.
//! * Everything run-specific (ids, cache-tier counters, timing) rides
//!   in the separate `accepted`/`done`/`progress` frames, which the
//!   client routes to stderr.

use nwo_core::{GatingConfig, PackConfig};
use nwo_obs::json::{self, JsonValue};
use nwo_sim::SimConfig;

/// A parsed client request.
///
/// One short-lived value per frame; the size skew from the inline
/// `SimConfig` is irrelevant at that rate, so no boxing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run benchmarks under one config and return the bench table.
    /// `nwo client … sim` (one bench) and `… sweep` (many) both parse
    /// to this; `sim` is a sweep of exactly one kernel.
    Sweep {
        /// Client-chosen request id, echoed in addressed responses.
        id: u64,
        /// Benchmark names; empty means every built-in benchmark.
        benches: Vec<String>,
        /// Workload scale override (`None`: per-benchmark experiment
        /// scale, matching `nwo bench`).
        scale: Option<u32>,
        /// Machine configuration for every benchmark in the sweep.
        config: SimConfig,
        /// Testing aid: hold the admission slot this many extra
        /// milliseconds after the sweep completes, before the result
        /// is sent. Exercises admission-control rejection and the
        /// cancel/watchdog paths deterministically, in the spirit of
        /// `NWO_FAIL_EXPERIMENT`.
        linger_ms: u64,
        /// Client-supplied idempotency key. A retried sweep resends
        /// the same key; if the server already completed a sweep under
        /// it (with the same content), the stored result is replayed
        /// instead of re-admitting the work — a retry after a dropped
        /// result frame never double-submits.
        key: Option<u64>,
    },
    /// Server and cache-tier counters.
    Status {
        /// Client-chosen request id.
        id: u64,
    },
    /// Abandon a running job by its server-assigned job id.
    Cancel {
        /// Client-chosen request id.
        id: u64,
        /// The job to abandon (from its `accepted` frame).
        job: u64,
    },
    /// Drain and stop the server.
    Shutdown {
        /// Client-chosen request id.
        id: u64,
    },
}

impl Request {
    /// The client-chosen request id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Sweep { id, .. }
            | Request::Status { id }
            | Request::Cancel { id, .. }
            | Request::Shutdown { id } => *id,
        }
    }
}

/// Boolean config flags accepted in a request's `"config"` object,
/// mirroring the `nwo sim`/`nwo bench` flags one-for-one.
const CONFIG_FLAGS: [&str; 6] = ["gating", "packing", "replay", "perfect", "wide", "eight"];

/// Parses one request payload.
///
/// # Errors
///
/// A human-readable description of the malformation — the server
/// returns it verbatim in a `bad-request` error frame.
pub fn parse_request(payload: &str) -> Result<Request, String> {
    let v = json::parse(payload).map_err(|e| e.to_string())?;
    if v.get("t").and_then(JsonValue::as_str) != Some("req") {
        return Err("expected a {\"t\": \"req\", ...} object".to_string());
    }
    let id = v
        .get("id")
        .and_then(JsonValue::as_u64)
        .ok_or("request needs a numeric \"id\"")?;
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("request needs a \"kind\"")?;
    match kind {
        "sim" | "sweep" => {
            let benches = match v.get("benches") {
                None => Vec::new(),
                Some(arr) => arr
                    .as_array()
                    .ok_or("\"benches\" must be an array of names")?
                    .iter()
                    .map(|b| {
                        b.as_str()
                            .map(str::to_string)
                            .ok_or("\"benches\" entries must be strings".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            };
            if kind == "sim" && benches.len() != 1 {
                return Err("\"sim\" takes exactly one benchmark; use \"sweep\" for more".into());
            }
            let scale = match v.get("scale") {
                None => None,
                Some(s) => Some(
                    s.as_u64()
                        .filter(|&n| n <= u64::from(u32::MAX))
                        .ok_or("\"scale\" must be a small non-negative integer")?
                        as u32,
                ),
            };
            let config = parse_config(v.get("config"))?;
            let linger_ms = match v.get("linger_ms") {
                None => 0,
                Some(n) => n
                    .as_u64()
                    .ok_or("\"linger_ms\" must be a non-negative integer")?,
            };
            let key = match v.get("key") {
                None => None,
                Some(k) => Some(k.as_u64().ok_or("\"key\" must be a non-negative integer")?),
            };
            Ok(Request::Sweep {
                id,
                benches,
                scale,
                config,
                linger_ms,
                key,
            })
        }
        "status" => Ok(Request::Status { id }),
        "cancel" => {
            let job = v
                .get("job")
                .and_then(JsonValue::as_u64)
                .ok_or("\"cancel\" needs a numeric \"job\"")?;
            Ok(Request::Cancel { id, job })
        }
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(format!(
            "unknown request kind `{other}`; known: sim, sweep, status, cancel, shutdown"
        )),
    }
}

/// Builds a [`SimConfig`] from a request's `"config"` object and
/// validates it through the same typed [`nwo_sim::ConfigError`] path
/// as the CLI flags.
fn parse_config(spec: Option<&JsonValue>) -> Result<SimConfig, String> {
    let mut config = SimConfig::default();
    if let Some(spec) = spec {
        let entries = match spec {
            JsonValue::Object(entries) => entries,
            _ => return Err("\"config\" must be an object of boolean flags".to_string()),
        };
        for (key, value) in entries {
            let on = match value {
                JsonValue::Bool(b) => *b,
                _ => return Err(format!("config flag \"{key}\" must be a boolean")),
            };
            if !CONFIG_FLAGS.contains(&key.as_str()) {
                return Err(format!(
                    "unknown config flag \"{key}\"; known: {CONFIG_FLAGS:?}"
                ));
            }
            if !on {
                continue;
            }
            config = match key.as_str() {
                "gating" => config.with_gating(GatingConfig::default()),
                "packing" => config.with_packing(PackConfig::default()),
                "replay" => config.with_packing(PackConfig::with_replay()),
                "perfect" => config.with_perfect_prediction(),
                "wide" => config.with_wide_decode(),
                "eight" => config.with_eight_issue(),
                _ => unreachable!("membership checked above"),
            };
        }
    }
    config.validate().map_err(|e| e.to_string())?;
    Ok(config)
}

/// Serializes a sweep request — the client-side inverse of
/// [`parse_request`].
pub fn sweep_request(
    id: u64,
    benches: &[String],
    scale: Option<u32>,
    flags: &[&str],
    linger_ms: u64,
    key: Option<u64>,
) -> String {
    let mut out = format!("{{\"t\": \"req\", \"kind\": \"sweep\", \"id\": {id}");
    if !benches.is_empty() {
        out.push_str(", \"benches\": [");
        for (i, b) in benches.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, b);
        }
        out.push(']');
    }
    if let Some(s) = scale {
        out.push_str(&format!(", \"scale\": {s}"));
    }
    if !flags.is_empty() {
        out.push_str(", \"config\": {");
        for (i, f) in flags.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, f);
            out.push_str(": true");
        }
        out.push('}');
    }
    if linger_ms > 0 {
        out.push_str(&format!(", \"linger_ms\": {linger_ms}"));
    }
    if let Some(k) = key {
        out.push_str(&format!(", \"key\": {k}"));
    }
    out.push('}');
    out
}

/// Serializes a bare request of `kind` (`status` / `shutdown`).
pub fn plain_request(kind: &str, id: u64) -> String {
    format!("{{\"t\": \"req\", \"kind\": \"{kind}\", \"id\": {id}}}")
}

/// Serializes a cancel request for `job`.
pub fn cancel_request(id: u64, job: u64) -> String {
    format!("{{\"t\": \"req\", \"kind\": \"cancel\", \"id\": {id}, \"job\": {job}}}")
}

/// An `accepted` frame: the request was admitted as server job `job`.
pub fn accepted(id: u64, job: u64) -> String {
    format!("{{\"t\": \"accepted\", \"id\": {id}, \"job\": {job}}}")
}

/// An `ok` frame: the request (cancel/shutdown) took effect.
pub fn ok(id: u64) -> String {
    format!("{{\"t\": \"ok\", \"id\": {id}}}")
}

/// Machine-readable error codes carried by `error` frames.
pub mod code {
    /// The request payload failed parsing or config validation.
    pub const BAD_REQUEST: &str = "bad-request";
    /// Admission control rejected the request: the bounded queue is
    /// full. Retry later.
    pub const BUSY: &str = "busy";
    /// The server is draining and accepts no new work.
    pub const DRAINING: &str = "draining";
    /// A cancel frame abandoned the job.
    pub const CANCELLED: &str = "cancelled";
    /// The per-request watchdog (`NWO_WATCHDOG_SECS`) fired.
    pub const TIMEOUT: &str = "timeout";
    /// The simulation itself failed (divergence, panic).
    pub const FAILED: &str = "failed";
    /// A frame header declared a payload longer than the 1 MiB cap
    /// (`wire::MAX_FRAME_LEN`). The connection closes after this
    /// reject — the remaining stream cannot be trusted.
    pub const OVERSIZED: &str = "frame-too-long";
}

/// An `error` frame with a [`code`] and a human-readable detail.
pub fn error(id: u64, code: &str, detail: &str) -> String {
    let mut out = format!("{{\"t\": \"error\", \"id\": {id}, \"code\": \"{code}\", \"detail\": ");
    json::write_str(&mut out, detail);
    out.push('}');
    out
}

/// A `result` frame: the bench table text, and nothing else — see the
/// module docs for why ids and cache tiers are excluded.
pub fn result(table: &str) -> String {
    let mut out = String::from("{\"t\": \"result\", \"table\": ");
    json::write_str(&mut out, table);
    out.push('}');
    out
}

/// A `done` frame: per-request cache-tier accounting, mirroring the
/// `BENCH_harness.json` counter names.
pub fn done(id: u64, job: u64, memo_hits: u64, disk_hits: u64, sims_run: u64) -> String {
    format!(
        "{{\"t\": \"done\", \"id\": {id}, \"job\": {job}, \"memo_hits\": {memo_hits}, \
         \"disk_hits\": {disk_hits}, \"sims_run\": {sims_run}}}"
    )
}

/// A `done` frame for an idempotent replay: the request's key matched
/// a completed sweep, the stored result was resent, and no work ran —
/// all tier counters are truthfully zero and `"replayed": true` marks
/// the short-circuit for the client's retry accounting.
pub fn done_replayed(id: u64) -> String {
    format!(
        "{{\"t\": \"done\", \"id\": {id}, \"job\": 0, \"memo_hits\": 0, \
         \"disk_hits\": 0, \"sims_run\": 0, \"replayed\": true}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_requests_round_trip() {
        let payload = sweep_request(
            7,
            &["perl".to_string(), "go".to_string()],
            Some(2),
            &["gating", "perfect"],
            0,
            Some(0xBEEF),
        );
        let req = parse_request(&payload).expect("parses");
        match req {
            Request::Sweep {
                id,
                benches,
                scale,
                config,
                linger_ms,
                key,
            } => {
                assert_eq!(id, 7);
                assert_eq!(benches, vec!["perl", "go"]);
                assert_eq!(scale, Some(2));
                assert_eq!(linger_ms, 0);
                assert_eq!(key, Some(0xBEEF));
                let expected = SimConfig::default()
                    .with_gating(nwo_core::GatingConfig::default())
                    .with_perfect_prediction();
                assert_eq!(config.fingerprint(), expected.fingerprint());
            }
            other => panic!("expected a sweep, got {other:?}"),
        }
    }

    #[test]
    fn defaults_are_empty_benches_and_base_config() {
        let req = parse_request("{\"t\": \"req\", \"kind\": \"sweep\", \"id\": 1}").unwrap();
        match req {
            Request::Sweep {
                benches,
                scale,
                config,
                key,
                ..
            } => {
                assert!(benches.is_empty());
                assert_eq!(scale, None);
                assert_eq!(key, None, "no \"key\" field means no idempotency key");
                assert_eq!(config.fingerprint(), SimConfig::default().fingerprint());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plain_cancel_and_shutdown_parse() {
        assert_eq!(
            parse_request(&plain_request("status", 3)).unwrap(),
            Request::Status { id: 3 }
        );
        assert_eq!(
            parse_request(&plain_request("shutdown", 4)).unwrap(),
            Request::Shutdown { id: 4 }
        );
        assert_eq!(
            parse_request(&cancel_request(5, 9)).unwrap(),
            Request::Cancel { id: 5, job: 9 }
        );
    }

    #[test]
    fn malformed_requests_are_described() {
        let cases = [
            ("not json", "JSON error"),
            ("{\"t\": \"nope\"}", "expected a"),
            ("{\"t\": \"req\", \"kind\": \"sweep\"}", "numeric \"id\""),
            ("{\"t\": \"req\", \"id\": 1}", "needs a \"kind\""),
            (
                "{\"t\": \"req\", \"kind\": \"dance\", \"id\": 1}",
                "unknown request kind",
            ),
            (
                "{\"t\": \"req\", \"kind\": \"cancel\", \"id\": 1}",
                "numeric \"job\"",
            ),
            (
                "{\"t\": \"req\", \"kind\": \"sweep\", \"id\": 1, \"config\": {\"warp\": true}}",
                "unknown config flag",
            ),
            (
                "{\"t\": \"req\", \"kind\": \"sweep\", \"id\": 1, \"config\": {\"gating\": 1}}",
                "must be a boolean",
            ),
            (
                "{\"t\": \"req\", \"kind\": \"sim\", \"id\": 1}",
                "exactly one benchmark",
            ),
            (
                "{\"t\": \"req\", \"kind\": \"sweep\", \"id\": 1, \"key\": \"abc\"}",
                "\"key\" must be",
            ),
        ];
        for (payload, needle) in cases {
            let err = parse_request(payload).expect_err(payload);
            assert!(err.contains(needle), "{payload} -> {err}");
        }
    }

    #[test]
    fn sim_kind_is_a_single_bench_sweep() {
        let req = parse_request(
            "{\"t\": \"req\", \"kind\": \"sim\", \"id\": 2, \"benches\": [\"perl\"]}",
        )
        .unwrap();
        assert!(matches!(req, Request::Sweep { ref benches, .. } if benches == &["perl"]));
    }

    #[test]
    fn response_frames_are_valid_json() {
        for frame in [
            accepted(1, 2),
            ok(1),
            error(1, code::BUSY, "queue full: 4 active, depth 4"),
            result("benchmark  scale\nperl  0\n"),
            done(1, 2, 3, 4, 5),
            done_replayed(6),
        ] {
            nwo_obs::json::parse(&frame).unwrap_or_else(|e| panic!("{frame}: {e}"));
        }
        let e = error(9, code::TIMEOUT, "watchdog: 1.5s elapsed");
        let v = nwo_obs::json::parse(&e).unwrap();
        assert_eq!(v.get("code").and_then(|c| c.as_str()), Some("timeout"));
        assert_eq!(v.get("id").and_then(|c| c.as_u64()), Some(9));
    }
}
