#![warn(missing_docs)]

//! `nwo-serve` — simulation-as-a-service on the cached sweep substrate.
//!
//! PRs 3–7 made repeated simulations cheap (a memoizing worker pool, a
//! disk result cache, shared warm checkpoints, a lockstep oracle, span
//! profiling) but left it all behind a one-shot CLI: every sweep paid a
//! cold process start, a cold memo cache and a cold warm-checkpoint
//! slot. This crate keeps one warm process resident and puts the whole
//! substrate on a socket:
//!
//! * [`wire`] — a length-prefixed, versioned frame codec over
//!   `std::net` TCP (magic `NWOS`, u16 version, u32 length, JSON
//!   payload);
//! * [`proto`] — request kinds `sim`, `sweep`, `status`, `cancel`,
//!   `shutdown` and the response frames, all flat JSON objects with the
//!   repo's usual `"t"` discriminator;
//! * [`server`] — bounded admission onto the shared
//!   [`nwo_bench::runner`] pool, per-request `NWO_WATCHDOG_SECS`
//!   watchdog, cancel flags, progress streaming and graceful drain;
//! * [`metrics`] — `serve.*` counters (accepted/rejected/active and the
//!   cache-hit tiers) through the obs registry;
//! * [`client`] — the blocking client used by `nwo client` and the
//!   tests, with typed [`ClientError`]s (a dead daemon reads
//!   differently from a flaky network) and a self-healing
//!   [`healing_sweep`] wrapper: jittered-backoff retries under an
//!   idempotency key, so a retried sweep never double-submits work;
//! * [`chaos`] — the deterministic hostile-conditions layer: a seeded
//!   structure-aware wire fuzzer ([`chaos::FrameFuzzer`]) and an
//!   in-process TCP fault interposer ([`ChaosProxy`]) applying a
//!   seeded [`NetPlan`] (delays, drip feeds, header corruption,
//!   resets, stalls) between client and server.
//!
//! The whole crate is zero-dependency like the rest of the workspace:
//! sockets are `std::net`, JSON is `nwo_obs::json`, retries are
//! [`nwo_ckpt::with_retry`].
//!
//! The determinism contract extends onto the wire: `result` frames
//! carry only the bench table (no ids, no cache tier), so N concurrent
//! clients issuing the same sweep read byte-identical results whether
//! each was answered by a fresh simulation, the in-process memo, or
//! the `NWO_CACHE_DIR` disk cache. See `docs/serving.md` for the frame
//! format and worked examples.

pub mod chaos;
pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod wire;

pub use chaos::{ChaosProxy, ChaosStats, NetPlan};
pub use client::{healing_sweep, Client, ClientError, RetryPolicy, RetryStats, SweepOutcome};
pub use metrics::{serve_snapshot, ServeMetrics};
pub use proto::Request;
pub use server::{
    parse_queue_depth, DrainReport, ServeOptions, Server, ServerState, DEFAULT_ADDR,
    DEFAULT_QUEUE_DEPTH,
};
pub use wire::{read_frame, write_frame, Frame, WireError, MAX_FRAME_LEN, WIRE_VERSION};
