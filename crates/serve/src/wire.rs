//! Length-prefixed frame codec for the `nwo serve` TCP protocol.
//!
//! Every message on the wire — in either direction — is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"NWOS"
//! 4       2     wire version, u16 little-endian (currently 1)
//! 6       4     payload length, u32 little-endian (max 1 MiB)
//! 10      len   payload: one UTF-8 JSON object
//! ```
//!
//! The codec is deliberately self-describing and versioned, like the
//! `NWOC` checkpoint container: a client from a different build fails
//! with a typed [`WireError::Version`] instead of desynchronizing, and
//! a non-`nwo` peer (an HTTP probe, a port scanner) dies on
//! [`WireError::BadMagic`] before any payload is read.

use std::io::{Read, Write};

/// Frame magic, first on the wire.
pub const MAGIC: [u8; 4] = *b"NWOS";

/// Protocol version embedded in every frame header.
pub const WIRE_VERSION: u16 = 1;

/// Maximum payload length. Result tables and metric snapshots are a
/// few KiB; anything near this bound is a corrupt or hostile header.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Slow-loris guard: how many consecutive read-timeout ticks a peer may
/// stall *mid-frame* before the frame is abandoned with
/// [`WireError::Stalled`]. A peer that began a header gets this many
/// ticks (at the socket's read-timeout cadence — the server polls every
/// 50ms, so ~2s) to finish it; an honest peer under congestion makes
/// progress and resets the budget with every byte, a hostile drip-feed
/// that goes silent does not get to pin a handler thread forever.
pub const MAX_STALL_TICKS: u32 = 40;

/// A framing failure.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The first four bytes were not [`MAGIC`] — not an `nwo` peer.
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    Version(u16),
    /// The declared (or attempted) payload length exceeds
    /// [`MAX_FRAME_LEN`]; carries the offending length so the reject
    /// can name it.
    TooLong(u64),
    /// The payload was not valid UTF-8.
    Utf8,
    /// The connection closed mid-frame.
    Truncated,
    /// The peer went silent mid-frame for [`MAX_STALL_TICKS`] read
    /// timeouts (slow-loris guard).
    Stalled {
        /// Bytes of the current field received before the stall.
        filled: usize,
        /// Bytes the field needed.
        needed: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?} (not an nwo peer)"),
            WireError::Version(v) => {
                write!(
                    f,
                    "peer speaks wire version {v}, this build speaks {WIRE_VERSION}"
                )
            }
            WireError::TooLong(n) => write!(f, "declared frame length {n} exceeds {MAX_FRAME_LEN}"),
            WireError::Utf8 => write!(f, "frame payload is not UTF-8"),
            WireError::Truncated => write!(f, "connection closed mid-frame"),
            WireError::Stalled { filled, needed } => write!(
                f,
                "peer stalled mid-frame ({filled}/{needed} bytes after \
                 {MAX_STALL_TICKS} silent read timeouts; slow-loris guard)"
            ),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Outcome of one [`read_frame`] call.
#[derive(Debug)]
pub enum Frame {
    /// A complete frame's payload.
    Payload(String),
    /// A read timeout fired before any byte of a frame arrived — the
    /// connection is idle (the server uses this to poll its drain
    /// flag between requests).
    Idle,
    /// The peer closed the connection cleanly at a frame boundary.
    Eof,
}

/// Writes one frame and flushes.
///
/// # Errors
///
/// [`WireError::TooLong`] when `payload` exceeds [`MAX_FRAME_LEN`];
/// otherwise any socket error.
pub fn write_frame(w: &mut impl Write, payload: &str) -> Result<(), WireError> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_LEN as usize {
        return Err(WireError::TooLong(bytes.len() as u64));
    }
    let mut head = [0u8; 10];
    head[..4].copy_from_slice(&MAGIC);
    head[4..6].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    head[6..10].copy_from_slice(&(bytes.len() as u32).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. A clean EOF *between* frames is [`Frame::Eof`]; a
/// read timeout before the first byte is [`Frame::Idle`]; anything
/// torn mid-frame is an error. Once a frame has started, timeouts keep
/// reading — a peer that began a header is expected to finish it, but
/// only within the [`MAX_STALL_TICKS`] budget (the slow-loris guard).
///
/// # Errors
///
/// Any [`WireError`]: socket failure, foreign magic or version, an
/// oversized declared length, a mid-frame close, or non-UTF-8 payload.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut head = [0u8; 10];
    match read_all(r, &mut head, true)? {
        ReadOutcome::Eof => return Ok(Frame::Eof),
        ReadOutcome::Idle => return Ok(Frame::Idle),
        ReadOutcome::Full => {}
    }
    if head[..4] != MAGIC {
        return Err(WireError::BadMagic([head[0], head[1], head[2], head[3]]));
    }
    let version = u16::from_le_bytes([head[4], head[5]]);
    if version != WIRE_VERSION {
        return Err(WireError::Version(version));
    }
    let len = u32::from_le_bytes([head[6], head[7], head[8], head[9]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLong(u64::from(len)));
    }
    let mut payload = vec![0u8; len as usize];
    match read_all(r, &mut payload, false)? {
        ReadOutcome::Full => {}
        ReadOutcome::Eof | ReadOutcome::Idle => unreachable!("eof/idle map to Truncated"),
    }
    String::from_utf8(payload)
        .map(Frame::Payload)
        .map_err(|_| WireError::Utf8)
}

enum ReadOutcome {
    Full,
    Eof,
    Idle,
}

/// Fills `buf` completely. With `at_boundary`, a clean close or a
/// timeout before the first byte is reported as `Eof`/`Idle` instead
/// of an error; mid-buffer, a close is [`WireError::Truncated`] and
/// timeouts retry — but only [`MAX_STALL_TICKS`] times without any
/// forward progress, after which the frame is abandoned as
/// [`WireError::Stalled`] (the slow-loris guard). Any received byte
/// resets the budget, so a slow-but-live peer is never cut off.
fn read_all(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    let mut stalled_ticks = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && at_boundary => return Ok(ReadOutcome::Eof),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => {
                filled += n;
                stalled_ticks = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 && at_boundary {
                    return Ok(ReadOutcome::Idle);
                }
                // Mid-frame: the peer started a header, let it finish —
                // within the stall budget.
                stalled_ticks += 1;
                if stalled_ticks >= MAX_STALL_TICKS {
                    return Err(WireError::Stalled {
                        filled,
                        needed: buf.len(),
                    });
                }
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(payload: &str) -> String {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).expect("writes");
        match read_frame(&mut Cursor::new(buf)).expect("reads") {
            Frame::Payload(s) => s,
            other => panic!("expected a payload, got {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip() {
        assert_eq!(roundtrip(""), "");
        assert_eq!(roundtrip("{\"t\": \"status\"}"), "{\"t\": \"status\"}");
        let big = "x".repeat(100_000);
        assert_eq!(roundtrip(&big), big);
    }

    #[test]
    fn consecutive_frames_and_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "one").unwrap();
        write_frame(&mut buf, "two").unwrap();
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur).unwrap(), Frame::Payload(s) if s == "one"));
        assert!(matches!(read_frame(&mut cur).unwrap(), Frame::Payload(s) if s == "two"));
        assert!(matches!(read_frame(&mut cur).unwrap(), Frame::Eof));
    }

    #[test]
    fn foreign_magic_and_version_are_typed_errors() {
        let mut cur = Cursor::new(b"GET / HTTP/1.1\r\n".to_vec());
        assert!(matches!(
            read_frame(&mut cur),
            Err(WireError::BadMagic(m)) if &m == b"GET "
        ));

        let mut buf = Vec::new();
        write_frame(&mut buf, "hi").unwrap();
        buf[4] = 0xff; // foreign version
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(WireError::Version(v)) if v != WIRE_VERSION
        ));
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hi").unwrap();
        buf[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(WireError::TooLong(_))
        ));
    }

    #[test]
    fn truncation_mid_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "a longer payload").unwrap();
        buf.truncate(14); // header plus 4 payload bytes
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(WireError::Truncated)
        ));
        // Even a torn header is a truncation.
        let mut head_only = Vec::new();
        write_frame(&mut head_only, "x").unwrap();
        head_only.truncate(7);
        assert!(matches!(
            read_frame(&mut Cursor::new(head_only)),
            Err(WireError::Truncated)
        ));
    }

    /// A reader that yields its bytes one at a time, with an optional
    /// spray of timeout errors between every byte — the worst-case
    /// fragmented feed a TCP stream can legally produce. With
    /// `silent_eof`, exhaustion produces endless timeouts instead of a
    /// clean close (a peer that stops sending without hanging up).
    struct Drip {
        bytes: Vec<u8>,
        pos: usize,
        timeouts_between: u32,
        pending_timeouts: u32,
        silent_eof: bool,
    }

    impl Drip {
        fn new(bytes: Vec<u8>, timeouts_between: u32, silent_eof: bool) -> Drip {
            Drip {
                bytes,
                pos: 0,
                timeouts_between,
                pending_timeouts: 0,
                silent_eof,
            }
        }
    }

    impl Read for Drip {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.bytes.len() {
                return if self.silent_eof {
                    Err(std::io::ErrorKind::WouldBlock.into())
                } else {
                    Ok(0)
                };
            }
            if self.pending_timeouts > 0 {
                self.pending_timeouts -= 1;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            self.pending_timeouts = self.timeouts_between;
            Ok(1)
        }
    }

    #[test]
    fn one_byte_at_a_time_reads_decode_cleanly() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            "{\"t\": \"req\", \"kind\": \"status\", \"id\": 1}",
        )
        .unwrap();
        write_frame(&mut buf, "second").unwrap();
        // Pure 1-byte drip, and a drip with timeouts between every
        // byte (fewer than the stall budget — progress resets it).
        for timeouts in [0, MAX_STALL_TICKS - 1] {
            let mut drip = Drip::new(buf.clone(), timeouts, false);
            // The leading timeout (if any) arrives at a frame boundary.
            let first = loop {
                match read_frame(&mut drip).unwrap() {
                    Frame::Idle => {}
                    other => break other,
                }
            };
            assert!(matches!(first, Frame::Payload(s) if s.contains("status")));
            let second = loop {
                match read_frame(&mut drip).unwrap() {
                    Frame::Idle => {}
                    other => break other,
                }
            };
            assert!(matches!(second, Frame::Payload(s) if s == "second"));
        }
    }

    #[test]
    fn silent_mid_frame_peer_trips_the_stall_guard() {
        // Three header bytes then eternal silence: the slow-loris case.
        let mut buf = Vec::new();
        write_frame(&mut buf, "payload").unwrap();
        buf.truncate(3);
        let mut loris = Drip::new(buf, 0, true);
        let err = read_frame(&mut loris).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::Stalled {
                    filled: 3,
                    needed: 10
                }
            ),
            "got {err:?}"
        );
        // The guard's message names the budget so operators can see why
        // the connection died.
        assert!(err.to_string().contains("slow-loris"), "{err}");
    }

    #[test]
    fn non_utf8_payload_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "ab").unwrap();
        let len = buf.len();
        buf[len - 2] = 0xff;
        buf[len - 1] = 0xfe;
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(WireError::Utf8)
        ));
    }
}
