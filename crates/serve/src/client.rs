//! A minimal blocking client for the serve protocol — also the test
//! harness: `nwo client` and the integration tests both drive the
//! daemon through this type.

use crate::proto;
use crate::wire::{read_frame, write_frame, Frame, WireError};
use std::net::TcpStream;

/// One connection to an `nwo serve` daemon.
pub struct Client {
    stream: TcpStream,
}

/// Everything a completed sweep produced, split by stream: the
/// deterministic result table (stdout material) and the run-specific
/// side frames (stderr material).
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// The bench table from the `result` frame — byte-identical across
    /// clients, cache tiers and worker counts.
    pub table: String,
    /// The raw `accepted`, `progress` and `done` frames, in arrival
    /// order.
    pub side_frames: Vec<String>,
    /// The server-assigned job id from the `accepted` frame.
    pub job: Option<u64>,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// Any socket error from `TcpStream::connect`.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request payload.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from the socket.
    pub fn send(&mut self, payload: &str) -> Result<(), WireError> {
        write_frame(&mut self.stream, payload)
    }

    /// Reads the next frame payload; `None` on clean EOF.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from the socket or codec.
    pub fn next_frame(&mut self) -> Result<Option<String>, WireError> {
        loop {
            match read_frame(&mut self.stream)? {
                Frame::Payload(payload) => return Ok(Some(payload)),
                Frame::Idle => {}
                Frame::Eof => return Ok(None),
            }
        }
    }

    /// Runs one sweep request to completion: sends it, collects frames
    /// until `done`, and splits the deterministic table from the
    /// run-specific side frames.
    ///
    /// # Errors
    ///
    /// A human-readable message: a server `error` frame's code and
    /// detail, a protocol violation, or a socket failure.
    pub fn sweep(
        &mut self,
        benches: &[String],
        scale: Option<u32>,
        flags: &[&str],
        linger_ms: u64,
    ) -> Result<SweepOutcome, String> {
        let request = proto::sweep_request(1, benches, scale, flags, linger_ms);
        self.send(&request).map_err(|e| e.to_string())?;
        let mut outcome = SweepOutcome::default();
        loop {
            let frame = self
                .next_frame()
                .map_err(|e| e.to_string())?
                .ok_or("server closed the connection mid-request")?;
            let v = nwo_obs::json::parse(&frame).map_err(|e| format!("unparseable frame: {e}"))?;
            match v.get("t").and_then(|t| t.as_str()) {
                Some("accepted") => {
                    outcome.job = v.get("job").and_then(|j| j.as_u64());
                    outcome.side_frames.push(frame);
                }
                Some("progress") => outcome.side_frames.push(frame),
                Some("result") => {
                    outcome.table = v
                        .get("table")
                        .and_then(|t| t.as_str())
                        .ok_or("result frame without a table")?
                        .to_string();
                }
                Some("done") => {
                    outcome.side_frames.push(frame);
                    return Ok(outcome);
                }
                Some("error") => {
                    let code = v.get("code").and_then(|c| c.as_str()).unwrap_or("?");
                    let detail = v.get("detail").and_then(|d| d.as_str()).unwrap_or("");
                    return Err(format!("server error [{code}]: {detail}"));
                }
                other => return Err(format!("unexpected frame {other:?}: {frame}")),
            }
        }
    }

    /// Requests the server's status frame (metrics snapshot included).
    ///
    /// # Errors
    ///
    /// A socket/codec failure or an unexpected response frame.
    pub fn status(&mut self) -> Result<String, String> {
        self.send(&proto::plain_request("status", 1))
            .map_err(|e| e.to_string())?;
        self.expect_one()
    }

    /// Cancels server job `job`.
    ///
    /// # Errors
    ///
    /// A socket/codec failure or an `error` response (unknown job).
    pub fn cancel(&mut self, job: u64) -> Result<String, String> {
        self.send(&proto::cancel_request(1, job))
            .map_err(|e| e.to_string())?;
        self.expect_one()
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// A socket/codec failure or an unexpected response frame.
    pub fn shutdown(&mut self) -> Result<String, String> {
        self.send(&proto::plain_request("shutdown", 1))
            .map_err(|e| e.to_string())?;
        self.expect_one()
    }

    fn expect_one(&mut self) -> Result<String, String> {
        let frame = self
            .next_frame()
            .map_err(|e| e.to_string())?
            .ok_or("server closed the connection before answering")?;
        let v = nwo_obs::json::parse(&frame).map_err(|e| format!("unparseable frame: {e}"))?;
        if v.get("t").and_then(|t| t.as_str()) == Some("error") {
            let code = v.get("code").and_then(|c| c.as_str()).unwrap_or("?");
            let detail = v.get("detail").and_then(|d| d.as_str()).unwrap_or("");
            return Err(format!("server error [{code}]: {detail}"));
        }
        Ok(frame)
    }
}
