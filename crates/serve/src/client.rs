//! A minimal blocking client for the serve protocol — also the test
//! harness: `nwo client` and the integration tests both drive the
//! daemon through this type.
//!
//! Errors are typed ([`ClientError`]) so operators can tell a dead
//! daemon (`connection refused`) from a flaky network (`connection
//! reset mid-stream`), and so the self-healing wrapper
//! ([`healing_sweep`]) knows which failures are worth retrying.

use crate::proto;
use crate::wire::{read_frame, write_frame, Frame, WireError};
use nwo_obs::json::JsonValue;
use std::net::TcpStream;
use std::time::Duration;

/// A typed client-side failure.
///
/// The connect-phase variants are split deliberately: `Refused` means
/// nothing is listening (a dead or not-yet-started daemon), while
/// `Reset` means an established conversation died under us (a flaky
/// network, a chaos proxy, or a crashed handler). They demand
/// different operator responses, so they must not collapse into one
/// string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// `TcpStream::connect` was actively refused: no daemon listens on
    /// `addr`.
    Refused {
        /// The address nothing answered on.
        addr: String,
    },
    /// Any other connect-phase failure (unreachable host, timeout,
    /// bad address).
    Connect {
        /// The address being dialed.
        addr: String,
        /// The socket error text.
        detail: String,
    },
    /// An established connection died mid-conversation: reset, broken
    /// pipe, or the server hung up before answering.
    Reset {
        /// What the socket or decoder reported.
        detail: String,
    },
    /// The server answered with a typed `error` frame.
    Server {
        /// The machine-readable [`proto::code`] string.
        code: String,
        /// The human-readable detail.
        detail: String,
    },
    /// The byte stream or frame sequence violated the protocol
    /// (foreign magic, unparseable JSON, an unexpected frame kind).
    Protocol {
        /// What was malformed.
        detail: String,
    },
}

impl ClientError {
    /// Whether a retry with backoff has a chance of succeeding.
    ///
    /// Refused/connect failures heal when the daemon (re)starts;
    /// resets and protocol garbage heal when the network stops
    /// misbehaving; of the server codes only `busy` (admission queue
    /// full) is transient — `bad-request` or `frame-too-long` will
    /// fail identically forever.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Refused { .. }
            | ClientError::Connect { .. }
            | ClientError::Reset { .. }
            | ClientError::Protocol { .. } => true,
            ClientError::Server { code, .. } => code == proto::code::BUSY,
        }
    }

    /// Classifies a [`WireError`] that interrupted an established
    /// conversation.
    fn from_wire(err: WireError) -> ClientError {
        match err {
            WireError::Io(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::BrokenPipe
                        | std::io::ErrorKind::UnexpectedEof
                ) =>
            {
                ClientError::Reset {
                    detail: format!("connection reset mid-stream: {e}"),
                }
            }
            WireError::Truncated => ClientError::Reset {
                detail: "connection reset mid-stream: connection closed mid-frame".to_string(),
            },
            other => ClientError::Protocol {
                detail: other.to_string(),
            },
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Refused { addr } => {
                write!(f, "connection refused: no daemon listening on {addr}")
            }
            ClientError::Connect { addr, detail } => {
                write!(f, "cannot connect to {addr}: {detail}")
            }
            ClientError::Reset { detail } => write!(f, "{detail}"),
            ClientError::Server { code, detail } => {
                write!(f, "server error [{code}]: {detail}")
            }
            ClientError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One connection to an `nwo serve` daemon.
pub struct Client {
    stream: TcpStream,
}

/// Everything a completed sweep produced, split by stream: the
/// deterministic result table (stdout material) and the run-specific
/// side frames (stderr material).
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// The bench table from the `result` frame — byte-identical across
    /// clients, cache tiers and worker counts.
    pub table: String,
    /// The raw `accepted`, `progress` and `done` frames, in arrival
    /// order.
    pub side_frames: Vec<String>,
    /// The server-assigned job id from the `accepted` frame.
    pub job: Option<u64>,
    /// True when the `done` frame carried `"replayed": true` — the
    /// server answered from its idempotency registry without running
    /// anything.
    pub replayed: bool,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] when nothing listens on `addr`;
    /// [`ClientError::Connect`] for any other socket failure.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| {
            if e.kind() == std::io::ErrorKind::ConnectionRefused {
                ClientError::Refused {
                    addr: addr.to_string(),
                }
            } else {
                ClientError::Connect {
                    addr: addr.to_string(),
                    detail: e.to_string(),
                }
            }
        })?;
        stream.set_nodelay(true).map_err(|e| ClientError::Connect {
            addr: addr.to_string(),
            detail: e.to_string(),
        })?;
        Ok(Client { stream })
    }

    /// Sends one request payload.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from the socket.
    pub fn send(&mut self, payload: &str) -> Result<(), WireError> {
        write_frame(&mut self.stream, payload)
    }

    /// Reads the next frame payload; `None` on clean EOF.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from the socket or codec.
    pub fn next_frame(&mut self) -> Result<Option<String>, WireError> {
        loop {
            match read_frame(&mut self.stream)? {
                Frame::Payload(payload) => return Ok(Some(payload)),
                Frame::Idle => {}
                Frame::Eof => return Ok(None),
            }
        }
    }

    /// Runs one sweep request to completion: sends it, collects frames
    /// until `done`, and splits the deterministic table from the
    /// run-specific side frames. `key` is the optional idempotency key
    /// ([`healing_sweep`] derives one; plain sweeps pass `None`).
    ///
    /// # Errors
    ///
    /// A typed [`ClientError`]: a server `error` frame's code and
    /// detail, a protocol violation, or a socket failure.
    pub fn sweep(
        &mut self,
        benches: &[String],
        scale: Option<u32>,
        flags: &[&str],
        linger_ms: u64,
        key: Option<u64>,
    ) -> Result<SweepOutcome, ClientError> {
        let request = proto::sweep_request(1, benches, scale, flags, linger_ms, key);
        self.send(&request).map_err(ClientError::from_wire)?;
        let mut outcome = SweepOutcome::default();
        loop {
            let frame =
                self.next_frame()
                    .map_err(ClientError::from_wire)?
                    .ok_or(ClientError::Reset {
                        detail: "connection reset mid-stream: server closed before `done`"
                            .to_string(),
                    })?;
            let v = nwo_obs::json::parse(&frame).map_err(|e| ClientError::Protocol {
                detail: format!("unparseable frame: {e}"),
            })?;
            match v.get("t").and_then(|t| t.as_str()) {
                Some("accepted") => {
                    outcome.job = v.get("job").and_then(|j| j.as_u64());
                    outcome.side_frames.push(frame);
                }
                Some("progress") => outcome.side_frames.push(frame),
                Some("result") => {
                    outcome.table = v
                        .get("table")
                        .and_then(|t| t.as_str())
                        .ok_or(ClientError::Protocol {
                            detail: "result frame without a table".to_string(),
                        })?
                        .to_string();
                }
                Some("done") => {
                    outcome.replayed = matches!(v.get("replayed"), Some(JsonValue::Bool(true)));
                    outcome.side_frames.push(frame);
                    return Ok(outcome);
                }
                Some("error") => {
                    let code = v.get("code").and_then(|c| c.as_str()).unwrap_or("?");
                    let detail = v.get("detail").and_then(|d| d.as_str()).unwrap_or("");
                    return Err(ClientError::Server {
                        code: code.to_string(),
                        detail: detail.to_string(),
                    });
                }
                other => {
                    return Err(ClientError::Protocol {
                        detail: format!("unexpected frame {other:?}: {frame}"),
                    })
                }
            }
        }
    }

    /// Requests the server's status frame (metrics snapshot included).
    ///
    /// # Errors
    ///
    /// A socket/codec failure or an unexpected response frame.
    pub fn status(&mut self) -> Result<String, ClientError> {
        self.send(&proto::plain_request("status", 1))
            .map_err(ClientError::from_wire)?;
        self.expect_one()
    }

    /// Cancels server job `job`.
    ///
    /// # Errors
    ///
    /// A socket/codec failure or an `error` response (unknown job).
    pub fn cancel(&mut self, job: u64) -> Result<String, ClientError> {
        self.send(&proto::cancel_request(1, job))
            .map_err(ClientError::from_wire)?;
        self.expect_one()
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// A socket/codec failure or an unexpected response frame.
    pub fn shutdown(&mut self) -> Result<String, ClientError> {
        self.send(&proto::plain_request("shutdown", 1))
            .map_err(ClientError::from_wire)?;
        self.expect_one()
    }

    fn expect_one(&mut self) -> Result<String, ClientError> {
        let frame =
            self.next_frame()
                .map_err(ClientError::from_wire)?
                .ok_or(ClientError::Reset {
                    detail: "connection reset mid-stream: server closed before answering"
                        .to_string(),
                })?;
        let v = nwo_obs::json::parse(&frame).map_err(|e| ClientError::Protocol {
            detail: format!("unparseable frame: {e}"),
        })?;
        if v.get("t").and_then(|t| t.as_str()) == Some("error") {
            let code = v.get("code").and_then(|c| c.as_str()).unwrap_or("?");
            let detail = v.get("detail").and_then(|d| d.as_str()).unwrap_or("");
            return Err(ClientError::Server {
                code: code.to_string(),
                detail: detail.to_string(),
            });
        }
        Ok(frame)
    }
}

/// Backoff shape for [`healing_sweep`] — the same
/// attempts/base/growth policy as `ckpt::with_retry`, widened for a
/// network (more attempts, a cap, and seeded jitter so a thundering
/// herd of retrying clients decorrelates).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum end-to-end attempts (connect + sweep) before giving up.
    pub attempts: u32,
    /// Backoff before the second attempt.
    pub base: Duration,
    /// Multiplier applied to the backoff after each failure.
    pub growth: u32,
    /// Upper bound on any single backoff sleep (pre-jitter).
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            growth: 4,
            cap: Duration::from_secs(2),
        }
    }
}

/// What [`healing_sweep`] did to get its answer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// True when the final `done` frame was an idempotent replay — the
    /// sweep had already completed on the server and a retry merely
    /// fetched the stored table.
    pub replayed: bool,
}

/// Runs one sweep with self-healing: reconnect-and-retry with
/// jittered exponential backoff on every transient failure, under an
/// idempotency key derived from the request content and `seed`, so a
/// retry after a dropped result frame replays the stored table instead
/// of double-submitting work.
///
/// Deterministic for a given `seed`: the jitter comes from the same
/// `XorShift64` generator as `verify::FaultPlan`, and failure text
/// includes the seed (see [`crate::chaos::repro_banner`]) so any CI
/// failure is reproducible with one env var.
///
/// # Errors
///
/// The last [`ClientError`] once `policy.attempts` is exhausted, or
/// immediately for non-transient errors (for example `bad-request`).
pub fn healing_sweep(
    addr: &str,
    benches: &[String],
    scale: Option<u32>,
    flags: &[&str],
    linger_ms: u64,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<(SweepOutcome, RetryStats), ClientError> {
    // The key covers exactly what the server fingerprints (the keyless
    // request payload), XORed with the seed so distinct logical runs
    // in one test do not replay each other.
    let keyless = proto::sweep_request(1, benches, scale, flags, linger_ms, None);
    let key = nwo_ckpt::fnv1a(keyless.as_bytes()) ^ seed;
    let mut rng = nwo_verify::XorShift64::new(seed);
    let mut backoff = policy.base;
    let mut stats = RetryStats::default();
    loop {
        stats.attempts += 1;
        let result = Client::connect(addr)
            .and_then(|mut client| client.sweep(benches, scale, flags, linger_ms, Some(key)));
        match result {
            Ok(outcome) => {
                stats.replayed = outcome.replayed;
                return Ok((outcome, stats));
            }
            Err(err) if err.is_transient() && stats.attempts < policy.attempts => {
                // Jitter in [0.5, 1.5): decorrelates concurrent
                // retriers without ever zeroing the backoff.
                let jitter = 0.5 + rng.below(1000) as f64 / 1000.0;
                let sleep = backoff.min(policy.cap).mul_f64(jitter);
                std::thread::sleep(sleep);
                backoff = (backoff * policy.growth).min(policy.cap);
            }
            Err(err) => return Err(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refused_and_reset_render_distinctly() {
        let refused = ClientError::Refused {
            addr: "127.0.0.1:1".to_string(),
        };
        let reset = ClientError::Reset {
            detail: "connection reset mid-stream: early EOF".to_string(),
        };
        let refused_text = refused.to_string();
        let reset_text = reset.to_string();
        assert!(
            refused_text.contains("connection refused"),
            "{refused_text}"
        );
        assert!(refused_text.contains("127.0.0.1:1"), "{refused_text}");
        assert!(reset_text.contains("reset mid-stream"), "{reset_text}");
        assert!(
            !reset_text.contains("refused"),
            "a reset must not read like a dead daemon: {reset_text}"
        );
    }

    #[test]
    fn transience_matches_the_retry_contract() {
        let transient = [
            ClientError::Refused {
                addr: "x".to_string(),
            },
            ClientError::Reset {
                detail: "d".to_string(),
            },
            ClientError::Protocol {
                detail: "d".to_string(),
            },
            ClientError::Server {
                code: proto::code::BUSY.to_string(),
                detail: "queue full".to_string(),
            },
        ];
        for err in &transient {
            assert!(err.is_transient(), "{err}");
        }
        let fatal = [
            ClientError::Server {
                code: proto::code::BAD_REQUEST.to_string(),
                detail: "nope".to_string(),
            },
            ClientError::Server {
                code: proto::code::OVERSIZED.to_string(),
                detail: "2 MiB".to_string(),
            },
        ];
        for err in &fatal {
            assert!(!err.is_transient(), "{err}");
        }
    }

    #[test]
    fn wire_errors_classify_by_kind() {
        let reset = ClientError::from_wire(WireError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "peer reset",
        )));
        assert!(matches!(reset, ClientError::Reset { .. }), "{reset:?}");
        let truncated = ClientError::from_wire(WireError::Truncated);
        assert!(
            matches!(truncated, ClientError::Reset { .. }),
            "mid-frame EOF is a reset, not a protocol bug: {truncated:?}"
        );
        let magic = ClientError::from_wire(WireError::BadMagic([0, 1, 2, 3]));
        assert!(matches!(magic, ClientError::Protocol { .. }), "{magic:?}");
    }

    #[test]
    fn healing_gives_up_on_fatal_and_exhausts_on_refused() {
        // Nothing listens on a fresh ephemeral port we bind-then-drop.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").to_string()
        };
        let policy = RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
            growth: 2,
            cap: Duration::from_millis(4),
        };
        let err = healing_sweep(&addr, &[], None, &[], 0, 0xC0FFEE, &policy)
            .expect_err("no daemon: must exhaust retries");
        assert!(
            matches!(
                err,
                ClientError::Refused { .. } | ClientError::Connect { .. }
            ),
            "{err}"
        );
    }
}
