//! Hostile-conditions integration tests: seeded wire-fuzz campaigns
//! against the decoder and a live daemon, slow-loris eviction, the
//! chaos proxy's byte-identity contract, and idempotent retries.
//!
//! Every campaign is seeded from `NWO_CHAOS_SEED` (with a fixed
//! default) and every failure message embeds the seed, so any CI
//! failure reproduces locally with one env var. CI scales the budgets
//! up through `NWO_FUZZ_ITERS` / `NWO_FUZZ_CONNS`.

use nwo_bench::runner::Runner;
use nwo_serve::chaos::{self, fuzz_decoder, fuzz_server};
use nwo_serve::{
    healing_sweep, ChaosProxy, Client, DrainReport, NetPlan, RetryPolicy, ServeOptions, Server,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An in-process daemon on an ephemeral port, stoppable from the test.
struct TestServer {
    addr: String,
    state: Arc<nwo_serve::ServerState>,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<DrainReport>,
}

impl TestServer {
    fn spawn(jobs: usize) -> TestServer {
        let server = Server::bind(
            &ServeOptions::ephemeral(),
            Arc::new(Runner::with_jobs(jobs)),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address").to_string();
        let state = Arc::clone(server.state());
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || server.run_until(&stop2));
        TestServer {
            addr,
            state,
            stop,
            thread,
        }
    }

    fn stop(self) -> DrainReport {
        self.stop.store(true, Ordering::SeqCst);
        self.thread.join().expect("server thread")
    }
}

fn env_budget(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn benches() -> Vec<String> {
    vec!["mpeg2-enc".to_string()]
}

#[test]
fn decoder_survives_a_seeded_fuzz_campaign() {
    let seed = chaos::env_seed(0xF022);
    let iters = env_budget("NWO_FUZZ_ITERS", 2_000);
    let report = fuzz_decoder(seed, iters).expect("no decoder contract violations");
    assert_eq!(report.cases, iters, "[{}]", chaos::repro_banner(seed));
    assert!(
        report.valid_decoded > 0 && report.typed_errors > 0,
        "the campaign exercised both round trips and rejects: {report:?} [{}]",
        chaos::repro_banner(seed)
    );
}

#[test]
fn live_daemon_survives_a_socket_fuzz_campaign() {
    let seed = chaos::env_seed(0x50CE7);
    let conns = env_budget("NWO_FUZZ_CONNS", 300);
    let server = TestServer::spawn(1);
    let report = fuzz_server(&server.addr, seed, conns).expect("daemon never hangs or dies");
    assert_eq!(report.connections, conns, "[{}]", chaos::repro_banner(seed));
    assert!(
        report.health_checks > 0,
        "liveness was actually probed [{}]",
        chaos::repro_banner(seed)
    );
    // The daemon drains cleanly after the storm: nothing leaked.
    assert_eq!(server.stop(), DrainReport { leaked: 0 });
}

#[test]
fn slow_loris_connections_are_evicted_within_the_stall_budget() {
    use std::io::{Read, Write};

    let server = TestServer::spawn(1);
    let mut stream = std::net::TcpStream::connect(&server.addr).expect("connect");
    // Three bytes of magic, then silence: a classic slow loris. The
    // server's mid-frame stall budget (~2s) must evict us; 30s without
    // a close means the guard is broken.
    stream.write_all(b"NWO").expect("partial magic");
    stream.flush().expect("flush");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let started = Instant::now();
    let mut rest = Vec::new();
    stream
        .read_to_end(&mut rest)
        .expect("server closes the connection rather than waiting forever");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "eviction took {:?}",
        started.elapsed()
    );
    assert_eq!(server.stop(), DrainReport { leaked: 0 });
}

#[test]
fn chaos_proxy_sweep_is_byte_identical_to_a_clean_socket() {
    let seed = chaos::env_seed(0xB17E5);
    let banner = chaos::repro_banner(seed);
    let server = TestServer::spawn(2);

    // Ground truth over a clean socket.
    let clean = Client::connect(&server.addr)
        .expect("connect")
        .sweep(&benches(), Some(0), &[], 0, None)
        .expect("clean sweep")
        .table;

    // The same sweep with every byte crossing the aggressive fault
    // plan: delays, drip feeds, header corruption, resets, stalls.
    let proxy = ChaosProxy::start(&server.addr, NetPlan::aggressive(), seed).expect("proxy");
    let (outcome, stats) = healing_sweep(
        &proxy.addr(),
        &benches(),
        Some(0),
        &[],
        0,
        seed,
        &RetryPolicy::default(),
    )
    .unwrap_or_else(|e| panic!("healing sweep failed: {e} [{banner}]"));
    assert_eq!(
        outcome.table, clean,
        "the table must survive the chaos byte-for-byte [{banner}]"
    );
    assert!(
        proxy.stats().faults() > 0,
        "the plan actually injected faults [{banner}]"
    );
    assert!(stats.attempts >= 1, "[{banner}]");
    // The fault counters surface in the obs snapshot shape.
    let snapshot = proxy.stats().snapshot();
    assert!(
        snapshot.get("serve.chaos.frames").is_some(),
        "serve.chaos.* snapshot [{banner}]"
    );
    drop(proxy);
    assert_eq!(server.stop(), DrainReport { leaked: 0 });
}

#[test]
fn retried_sweeps_replay_instead_of_double_submitting() {
    let server = TestServer::spawn(1);
    let mut client = Client::connect(&server.addr).expect("connect");

    // First submission under an idempotency key runs for real.
    let first = client
        .sweep(&benches(), Some(0), &[], 0, Some(0xD00D))
        .expect("first sweep");
    assert!(!first.replayed);

    // A "retry" with the same key (as a client that never saw the
    // result frame would send) replays the stored table: zero
    // simulations, zero cache lookups, the identical bytes.
    let retry = client
        .sweep(&benches(), Some(0), &[], 0, Some(0xD00D))
        .expect("retried sweep");
    assert!(retry.replayed, "the done frame says replayed");
    assert_eq!(retry.table, first.table, "replayed bytes are identical");
    assert_eq!(
        server.state.metrics.replays.load(Ordering::SeqCst),
        1,
        "serve.retry.replays counted it"
    );
    // The runner saw exactly one job: the retry submitted nothing.
    assert_eq!(server.state.runner().counters().sims_run, 1);

    // The same key with *different* content is a fresh request, not a
    // false replay: the fingerprint guards key collisions.
    let other = client
        .sweep(&benches(), Some(0), &["gating"], 0, Some(0xD00D))
        .expect("same key, different content");
    assert!(!other.replayed, "content fingerprint rejects the collision");
    assert_eq!(server.stop(), DrainReport { leaked: 0 });
}

#[test]
fn campaign_failures_name_the_reproduction_seed() {
    // Point a campaign at a port nothing listens on: the failure text
    // must carry the banner so CI logs are reproducible locally.
    let seed = chaos::env_seed(0xBAD5EED);
    let err = fuzz_server("127.0.0.1:9", seed, 1).expect_err("no daemon there");
    assert!(
        err.contains("NWO_CHAOS_SEED="),
        "failure must embed the seed: {err}"
    );
}
