//! End-to-end daemon tests over real sockets: concurrency/determinism
//! (byte-identical result frames across clients, worker counts and
//! cache tiers), admission-control rejection, and the mid-job
//! cancel/watchdog paths.

use nwo_bench::runner::Runner;
use nwo_serve::{Client, DrainReport, ServeOptions, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Two small kernels at scale 0 keep each sweep around a second.
const BENCHES: [&str; 2] = ["mpeg2-enc", "compress"];

fn benches() -> Vec<String> {
    BENCHES.iter().map(|s| s.to_string()).collect()
}

/// An in-process daemon on an ephemeral port, stoppable from the test.
struct TestServer {
    addr: String,
    state: Arc<nwo_serve::ServerState>,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<DrainReport>,
}

impl TestServer {
    fn spawn(options: ServeOptions, runner: Arc<Runner>) -> TestServer {
        let server = Server::bind(&options, runner).expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address").to_string();
        let state = Arc::clone(server.state());
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || server.run_until(&stop2));
        TestServer {
            addr,
            state,
            stop,
            thread,
        }
    }

    fn stop(self) -> DrainReport {
        self.stop.store(true, Ordering::SeqCst);
        self.thread.join().expect("server thread")
    }

    /// Waits until `active` admitted jobs are visible (or panics).
    fn wait_active(&self, active: u64) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while self.state.metrics.active.load(Ordering::SeqCst) != active {
            assert!(
                Instant::now() < deadline,
                "never reached {active} active jobs"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// A scratch cache directory unique to one test, removed on drop.
struct ScratchCache(std::path::PathBuf);

impl ScratchCache {
    fn new(tag: &str) -> ScratchCache {
        let root =
            std::env::temp_dir().join(format!("nwo-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        ScratchCache(root)
    }

    fn dir(&self) -> nwo_ckpt::CacheDir {
        nwo_ckpt::CacheDir::new(&self.0)
    }
}

impl Drop for ScratchCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn done_counter(outcome: &nwo_serve::SweepOutcome, key: &str) -> u64 {
    let done = outcome
        .side_frames
        .iter()
        .find(|f| f.contains("\"t\": \"done\""))
        .expect("a done frame arrived");
    nwo_obs::json::parse(done)
        .expect("done frame parses")
        .get(key)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("done frame has {key}: {done}"))
}

#[test]
fn concurrent_clients_get_byte_identical_results_at_any_worker_count() {
    // Four concurrent clients against a 4-worker pool...
    let wide = TestServer::spawn(ServeOptions::ephemeral(), Arc::new(Runner::with_jobs(4)));
    let tables: Vec<String> = {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = wide.addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    client
                        .sweep(&benches(), Some(0), &[], 0, None)
                        .expect("sweep succeeds")
                        .table
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    };
    assert!(tables[0].contains("mpeg2-enc") && tables[0].contains("compress"));
    for table in &tables[1..] {
        assert_eq!(table, &tables[0], "every client reads identical bytes");
    }
    // Identical sweeps coalesce: 2 simulations total, the rest memo.
    let counters = wide.state.runner().counters();
    assert_eq!(counters.sims_run, 2, "one simulation per distinct kernel");
    assert_eq!(counters.memo_hits, 6, "three clients ride the memo");
    assert_eq!(wide.stop(), DrainReport { leaked: 0 });

    // ...and a serial pool returns the same bytes.
    let narrow = TestServer::spawn(ServeOptions::ephemeral(), Arc::new(Runner::with_jobs(1)));
    let mut client = Client::connect(&narrow.addr).expect("connect");
    let serial = client
        .sweep(&benches(), Some(0), &[], 0, None)
        .expect("sweep");
    assert_eq!(serial.table, tables[0], "NWO_JOBS=1 vs 4 changes nothing");
    assert_eq!(narrow.stop(), DrainReport { leaked: 0 });
}

#[test]
fn cache_tiers_and_server_restarts_preserve_bytes() {
    let scratch = ScratchCache::new("tiers");

    // Cold daemon: everything simulates, results spill to disk.
    let cold = TestServer::spawn(
        ServeOptions::ephemeral(),
        Arc::new(Runner::with_options(1, Some(scratch.dir()), 0)),
    );
    let mut client = Client::connect(&cold.addr).expect("connect");
    let first = client
        .sweep(&benches(), Some(0), &[], 0, None)
        .expect("cold sweep");
    assert_eq!(done_counter(&first, "sims_run"), 2);
    assert_eq!(done_counter(&first, "disk_hits"), 0);

    // Same daemon, repeat request: the in-process memo answers.
    let repeat = client
        .sweep(&benches(), Some(0), &[], 0, None)
        .expect("memo sweep");
    assert_eq!(done_counter(&repeat, "memo_hits"), 2);
    assert_eq!(done_counter(&repeat, "sims_run"), 0);
    assert_eq!(repeat.table, first.table, "memo tier is byte-identical");

    // The status frame exposes the same tiers as serve.* metrics.
    let status = client.status().expect("status");
    let v = nwo_obs::json::parse(&status).expect("status parses");
    let metrics = v.get("metrics").expect("metrics snapshot");
    assert_eq!(
        metrics
            .get("serve.cache.memo_hits")
            .and_then(|m| m.as_u64()),
        Some(2)
    );
    assert_eq!(
        metrics.get("serve.completed").and_then(|m| m.as_u64()),
        Some(2)
    );
    assert_eq!(cold.stop(), DrainReport { leaked: 0 });

    // Restarted daemon (fresh memo, same cache dir): disk answers, no
    // simulation re-runs, and the bytes still match.
    let warm = TestServer::spawn(
        ServeOptions::ephemeral(),
        Arc::new(Runner::with_options(1, Some(scratch.dir()), 0)),
    );
    let mut client = Client::connect(&warm.addr).expect("connect");
    let revived = client
        .sweep(&benches(), Some(0), &[], 0, None)
        .expect("warm sweep");
    assert_eq!(done_counter(&revived, "disk_hits"), 2);
    assert_eq!(done_counter(&revived, "sims_run"), 0);
    assert_eq!(revived.table, first.table, "disk tier is byte-identical");
    assert_eq!(warm.stop(), DrainReport { leaked: 0 });
}

#[test]
fn full_queue_rejects_then_cancel_frees_the_slot() {
    let options = ServeOptions {
        queue_depth: 1,
        ..ServeOptions::ephemeral()
    };
    let server = TestServer::spawn(options, Arc::new(Runner::with_jobs(1)));

    // Client A holds the only slot by lingering after its sweep.
    let addr = server.addr.clone();
    let holder = std::thread::spawn(move || {
        let mut client = Client::connect(&addr).expect("connect A");
        client.sweep(&benches()[..1], Some(0), &[], 60_000, None)
    });
    server.wait_active(1);

    // Client B is rejected with a reasoned busy error...
    let mut other = Client::connect(&server.addr).expect("connect B");
    let err = other
        .sweep(&benches()[..1], Some(0), &[], 0, None)
        .expect_err("admission control rejects");
    assert!(err.to_string().contains("busy"), "{err}");
    assert!(err.to_string().contains("depth 1"), "{err}");

    // ...until B cancels A's job (the first job id is 1).
    let ack = other.cancel(1).expect("cancel acknowledged");
    assert!(ack.contains("\"ok\""), "{ack}");
    let held = holder.join().expect("holder thread");
    let err = held.expect_err("the lingering sweep was abandoned");
    assert!(err.to_string().contains("cancelled"), "{err}");

    // The slot is free again: the same sweep now completes (memo hit).
    server.wait_active(0);
    let outcome = other
        .sweep(&benches()[..1], Some(0), &[], 0, None)
        .expect("slot reusable after cancel");
    assert_eq!(done_counter(&outcome, "memo_hits"), 1);

    // Cancelling a finished job is a typed bad-request.
    let err = other.cancel(1).expect_err("job 1 is gone");
    assert!(err.to_string().contains("no active job"), "{err}");

    let rejected = server.state.metrics.rejected.load(Ordering::SeqCst);
    let cancelled = server.state.metrics.cancelled.load(Ordering::SeqCst);
    assert_eq!((rejected, cancelled), (1, 1));
    assert_eq!(server.stop(), DrainReport { leaked: 0 });
}

#[test]
fn watchdog_abandons_overrunning_requests() {
    let options = ServeOptions {
        watchdog: Some(Duration::from_millis(50)),
        ..ServeOptions::ephemeral()
    };
    let server = TestServer::spawn(options, Arc::new(Runner::with_jobs(1)));
    let mut client = Client::connect(&server.addr).expect("connect");
    // The linger keeps the request alive well past the 50ms budget,
    // whether or not the simulation itself beat the watchdog.
    let err = client
        .sweep(&benches()[..1], Some(0), &[], 60_000, None)
        .expect_err("watchdog fires");
    assert!(err.to_string().contains("timeout"), "{err}");
    assert!(err.to_string().contains("watchdog"), "{err}");
    assert_eq!(server.state.metrics.timeouts.load(Ordering::SeqCst), 1);
    assert_eq!(server.stop(), DrainReport { leaked: 0 });
}

#[test]
fn shutdown_frame_drains_cleanly_and_leaks_are_reported() {
    // A shutdown frame with no work in flight drains with zero leaks.
    let server = TestServer::spawn(ServeOptions::ephemeral(), Arc::new(Runner::with_jobs(1)));
    let mut client = Client::connect(&server.addr).expect("connect");
    let ack = client.shutdown().expect("shutdown acknowledged");
    assert!(ack.contains("\"ok\""), "{ack}");
    assert_eq!(
        server.thread.join().expect("server thread"),
        DrainReport { leaked: 0 }
    );

    // A job still lingering when the drain grace expires is leaked.
    let options = ServeOptions {
        drain_grace: Duration::from_millis(100),
        ..ServeOptions::ephemeral()
    };
    let server = TestServer::spawn(options, Arc::new(Runner::with_jobs(1)));
    let addr = server.addr.clone();
    let holder = std::thread::spawn(move || {
        let mut client = Client::connect(&addr).expect("connect");
        let _ = client.sweep(&benches()[..1], Some(0), &[], 60_000, None);
    });
    server.wait_active(1);
    assert_eq!(server.stop(), DrainReport { leaked: 1 });
    drop(holder); // lingering handler dies with the test process
}

#[test]
fn oversized_frames_get_a_typed_reject_naming_the_length() {
    use std::io::Write;

    let server = TestServer::spawn(ServeOptions::ephemeral(), Arc::new(Runner::with_jobs(1)));

    // A raw header declaring a payload one byte over the 1 MiB cap.
    // The decoder must refuse before allocating, and the server must
    // answer with a typed `frame-too-long` error naming the length.
    let lie: u32 = nwo_serve::MAX_FRAME_LEN + 1;
    let mut stream = std::net::TcpStream::connect(&server.addr).expect("connect");
    stream.write_all(b"NWOS").expect("magic");
    stream
        .write_all(&nwo_serve::WIRE_VERSION.to_le_bytes())
        .expect("version");
    stream.write_all(&lie.to_le_bytes()).expect("length lie");
    stream.flush().expect("flush");

    let reply = match nwo_serve::read_frame(&mut stream).expect("reject frame") {
        nwo_serve::Frame::Payload(text) => text,
        other => panic!("expected an error payload, got {other:?}"),
    };
    assert!(reply.contains("frame-too-long"), "{reply}");
    assert!(
        reply.contains(&(nwo_serve::MAX_FRAME_LEN + 1).to_string()),
        "the reject names the offending length: {reply}"
    );
    assert_eq!(server.state.metrics.oversized.load(Ordering::SeqCst), 1);

    // The daemon survives: a normal client still gets served.
    drop(stream);
    let mut client = Client::connect(&server.addr).expect("connect after reject");
    assert!(client.status().expect("status").contains("metrics"));
    assert_eq!(server.stop(), DrainReport { leaked: 0 });
}

#[test]
fn bad_requests_and_config_errors_come_back_typed() {
    let server = TestServer::spawn(ServeOptions::ephemeral(), Arc::new(Runner::with_jobs(1)));
    let mut client = Client::connect(&server.addr).expect("connect");

    client.send("this is not json").expect("send");
    let reply = client.next_frame().expect("frame").expect("payload");
    assert!(reply.contains("bad-request"), "{reply}");

    let err = client
        .sweep(&["no-such-kernel".to_string()], Some(0), &[], 0, None)
        .expect_err("unknown benchmark");
    assert!(err.to_string().contains("unknown benchmark"), "{err}");

    // Config flags flow through the same validation as the CLI.
    let err = client
        .sweep(&benches()[..1], Some(0), &["warp"], 0, None)
        .expect_err("unknown config flag");
    assert!(err.to_string().contains("unknown config flag"), "{err}");
    assert_eq!(server.stop(), DrainReport { leaked: 0 });
}
