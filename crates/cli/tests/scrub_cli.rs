//! End-to-end `nwo cache scrub` tests through the real binary: corrupt
//! a populated cache, assert the distinguishing exit codes (0 clean /
//! 3 corrupt / 4 stale), the quarantine rename, orphan-tmp reaping,
//! and that the bench runner recovers transparently afterwards.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Runs the `nwo` binary with a scrubbed environment plus `extra`.
fn nwo(args: &[&str], extra: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_nwo-cli"));
    cmd.args(args);
    for var in [
        "NWO_JOBS",
        "NWO_SCALE",
        "NWO_CACHE_DIR",
        "NWO_WARMUP",
        "NWO_PROGRESS",
        "NWO_CHAOS_SEED",
    ] {
        cmd.env_remove(var);
    }
    for (k, v) in extra {
        cmd.env(k, v);
    }
    cmd.output().expect("nwo-cli spawns")
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("exit code")
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8")
}

fn ckpt_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .collect();
    files.sort();
    files
}

#[test]
fn scrub_quarantines_torn_blobs_and_the_runner_recovers() {
    let dir = std::env::temp_dir().join(format!("nwo-scrub-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_str = dir.to_str().expect("utf-8 path");
    let cache_env = [("NWO_CACHE_DIR", dir_str), ("NWO_WARMUP", "0")];

    // Populate the cache through a real bench run.
    let bench = nwo(&["bench", "mpeg2-enc", "--scale", "0"], &cache_env);
    assert_eq!(
        exit_code(&bench),
        0,
        "{}",
        String::from_utf8_lossy(&bench.stderr)
    );
    let baseline = stdout_of(&bench);
    let blobs = ckpt_files(&dir);
    assert!(!blobs.is_empty(), "the bench run spilled blobs to disk");

    // Tear one blob (truncate mid-container, as a killed writer that
    // bypassed the atomic path would) and strand an orphan temp file.
    let victim = &blobs[0];
    let bytes = std::fs::read(victim).expect("read blob");
    std::fs::write(victim, &bytes[..bytes.len() / 2]).expect("tear blob");
    let orphan = dir.join("half-written.ckpt.tmp.12345.0");
    std::fs::write(&orphan, b"partial").expect("orphan tmp");

    // First scrub: corruption found and quarantined, orphan reaped,
    // exit code 3.
    let scrub = nwo(&["cache", "scrub", "--dir", dir_str], &[]);
    let text = stdout_of(&scrub);
    assert_eq!(exit_code(&scrub), 3, "{text}");
    assert!(text.contains("CORRUPT"), "{text}");
    assert!(text.contains("quarantined"), "{text}");
    assert!(!victim.exists(), "the torn blob is out of service");
    let quarantined = victim.with_extension("ckpt.quarantined");
    assert!(
        quarantined.exists(),
        "renamed, not deleted — kept for forensics"
    );
    assert!(!orphan.exists(), "orphan temp file reaped");

    // Second scrub: clean, exit 0, prior quarantine reported.
    let again = nwo(&["cache", "scrub", "--dir", dir_str], &[]);
    let text = stdout_of(&again);
    assert_eq!(exit_code(&again), 0, "{text}");
    assert!(text.contains("1 previously quarantined"), "{text}");

    // Recovery: the same bench run treats the quarantined key as a
    // miss, re-simulates, re-stores, and prints identical bytes.
    let healed = nwo(&["bench", "mpeg2-enc", "--scale", "0"], &cache_env);
    assert_eq!(exit_code(&healed), 0);
    assert_eq!(stdout_of(&healed), baseline, "recovery is byte-identical");
    assert!(victim.exists(), "the blob was re-stored");

    // A stale-salt blob (structurally sound, foreign build) downgrades
    // the verdict to exit 4 — regenerate, nothing to quarantine.
    let mut stale = std::fs::read(victim).expect("read healthy blob");
    stale[6] ^= 0xFF;
    std::fs::write(dir.join("foreign-build.ckpt"), &stale).expect("stale blob");
    let scrub = nwo(&["cache", "scrub", "--dir", dir_str], &[]);
    let text = stdout_of(&scrub);
    assert_eq!(exit_code(&scrub), 4, "{text}");
    assert!(text.contains("stale"), "{text}");

    // The env var is an equivalent way to name the directory.
    std::fs::remove_file(dir.join("foreign-build.ckpt")).expect("drop stale blob");
    let via_env = nwo(&["cache", "scrub"], &[("NWO_CACHE_DIR", dir_str)]);
    assert_eq!(exit_code(&via_env), 0, "{}", stdout_of(&via_env));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scrub_without_a_directory_is_a_usage_error() {
    let out = nwo(&["cache", "scrub"], &[]);
    assert_eq!(exit_code(&out), 1);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("NWO_CACHE_DIR"),
        "the error names both ways to point at a cache"
    );
}

#[test]
fn report_only_flags_leave_the_cache_untouched() {
    let dir = std::env::temp_dir().join(format!("nwo-scrub-cli-ro-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let dir_str = dir.to_str().expect("utf-8 path");
    let bad = dir.join("bad.ckpt");
    std::fs::write(&bad, b"not a checkpoint").expect("garbage blob");
    let tmp = dir.join("orphan.ckpt.tmp.1.1");
    std::fs::write(&tmp, b"x").expect("orphan");

    let out = nwo(
        &[
            "cache",
            "scrub",
            "--dir",
            dir_str,
            "--no-quarantine",
            "--keep-tmp",
        ],
        &[],
    );
    assert_eq!(exit_code(&out), 3, "{}", stdout_of(&out));
    assert!(bad.exists(), "report-only keeps the blob in place");
    assert!(tmp.exists(), "report-only keeps the orphan");

    let _ = std::fs::remove_dir_all(&dir);
}
