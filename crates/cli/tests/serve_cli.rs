//! End-to-end `nwo serve` / `nwo client` tests through the real
//! binary: a daemon on an ephemeral port must answer sweeps
//! byte-identically to the `nwo bench` CLI path, serve repeats from
//! cache, survive concurrent clients, shut down cleanly on request,
//! and reject invalid concurrency up front.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output};
use std::time::{Duration, Instant};

const SWEEP: [&str; 2] = ["mpeg2-enc", "compress"];

/// Runs the `nwo` binary with a scrubbed environment (no ambient
/// NWO_* variables leaking into determinism comparisons).
fn nwo(args: &[&str]) -> Output {
    command(args).output().expect("nwo-cli spawns")
}

fn command(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_nwo-cli"));
    cmd.args(args);
    for var in [
        "NWO_JOBS",
        "NWO_SCALE",
        "NWO_CACHE_DIR",
        "NWO_WARMUP",
        "NWO_WATCHDOG_SECS",
        "NWO_SERVE_ADDR",
        "NWO_SERVE_QUEUE",
        "NWO_PROGRESS",
        "NWO_CHAOS_SEED",
    ] {
        cmd.env_remove(var);
    }
    cmd
}

fn stdout_of(output: &Output) -> String {
    assert!(
        output.status.success(),
        "command failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8")
}

/// An `nwo serve` daemon child on an ephemeral port, killed on drop if
/// the test did not shut it down itself.
struct Daemon {
    child: Child,
    addr: String,
    dir: PathBuf,
}

impl Daemon {
    fn spawn(extra: &[(&str, &str)]) -> Daemon {
        let dir = std::env::temp_dir().join(format!(
            "nwo-serve-cli-{}-{}",
            std::process::id(),
            extra.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let addr_file = dir.join("addr");
        let mut cmd = command(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().expect("utf-8 path"),
        ]);
        for (k, v) in extra {
            cmd.env(k, v);
        }
        let child = cmd.spawn().expect("daemon spawns");
        let addr = wait_for_addr(&addr_file);
        Daemon { child, addr, dir }
    }

    /// `nwo client <addr> <args...>` against this daemon.
    fn client(&self, args: &[&str]) -> Output {
        let mut full = vec!["client", self.addr.as_str()];
        full.extend_from_slice(args);
        nwo(&full)
    }

    /// Asks the daemon to shut down and returns its exit code.
    fn shutdown(mut self) -> i32 {
        let ack = stdout_of(&self.client(&["shutdown"]));
        assert!(ack.contains("\"ok\""), "shutdown acknowledged: {ack}");
        let status = self.child.wait().expect("daemon exits");
        let _ = std::fs::remove_dir_all(&self.dir);
        status.code().expect("daemon exit code")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn wait_for_addr(path: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(addr) = std::fs::read_to_string(path) {
            if addr.contains(':') {
                return addr;
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote {path:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn served_sweeps_match_the_bench_cli_byte_for_byte() {
    let bench_args: Vec<&str> = ["bench"]
        .into_iter()
        .chain(SWEEP)
        .chain(["--scale", "0"])
        .collect();
    let bench_stdout = stdout_of(&nwo(&bench_args));
    assert!(bench_stdout.contains("mpeg2-enc"), "{bench_stdout}");

    let daemon = Daemon::spawn(&[]);

    // Two concurrent clients issue the same sweep; both tables must be
    // byte-identical to each other and to the `nwo bench` stdout.
    let sweep_args: Vec<String> = ["sweep"]
        .into_iter()
        .chain(SWEEP)
        .chain(["--scale", "0"])
        .map(str::to_string)
        .collect();
    let outputs: Vec<Output> = {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let addr = daemon.addr.clone();
                let args = sweep_args.clone();
                std::thread::spawn(move || {
                    let mut full = vec!["client".to_string(), addr];
                    full.extend(args);
                    let full: Vec<&str> = full.iter().map(String::as_str).collect();
                    nwo(&full)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    };
    for output in &outputs {
        assert_eq!(
            stdout_of(output),
            bench_stdout,
            "served table == bench table"
        );
        // Run-specific frames ride on stderr, never stdout.
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains("\"t\": \"accepted\""), "{stderr}");
        assert!(stderr.contains("\"t\": \"done\""), "{stderr}");
    }

    // A repeat request is answered entirely from the daemon's caches.
    let repeat = daemon.client(&["sweep", SWEEP[0], SWEEP[1], "--scale", "0"]);
    assert_eq!(stdout_of(&repeat), bench_stdout);
    let stderr = String::from_utf8_lossy(&repeat.stderr);
    assert!(
        stderr.contains("\"memo_hits\": 2") && stderr.contains("\"sims_run\": 0"),
        "second request must be all cache hits: {stderr}"
    );

    // The status frame exposes the cache tiers as serve.* metrics.
    let status = stdout_of(&daemon.client(&["status"]));
    assert!(status.contains("\"serve.cache.memo_hits\":"), "{status}");
    assert!(status.contains("\"serve.completed\":"), "{status}");

    assert_eq!(daemon.shutdown(), 0, "clean drain exits 0");
}

#[test]
fn chaos_seed_sweeps_stay_byte_identical_and_report_the_seed() {
    let bench_stdout = stdout_of(&nwo(&["bench", SWEEP[0], "--scale", "0"]));
    let daemon = Daemon::spawn(&[]);

    // The same sweep routed through the in-process fault proxy under a
    // fixed seed: the table must come back byte-identical to `nwo
    // bench`, stderr must carry the reproduction banner plus the
    // chaos/retry stats.
    let output = daemon.client(&[
        "sweep",
        SWEEP[0],
        "--scale",
        "0",
        "--chaos-seed",
        "0xC0FFEE",
    ]);
    assert_eq!(
        stdout_of(&output),
        bench_stdout,
        "chaos-routed table == bench table"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("NWO_CHAOS_SEED=0xc0ffee"),
        "the banner names the seed: {stderr}"
    );
    assert!(stderr.contains("retry: attempts"), "{stderr}");
    assert!(stderr.contains("serve.chaos.frames"), "{stderr}");

    // --retries alone (no proxy) exercises the healing path clean.
    let output = daemon.client(&["sweep", SWEEP[0], "--scale", "0", "--retries", "3"]);
    assert_eq!(stdout_of(&output), bench_stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("retry: attempts 1"), "{stderr}");

    assert_eq!(daemon.shutdown(), 0, "clean drain exits 0");
}

#[test]
fn daemon_restart_reuses_the_disk_cache() {
    let cache = std::env::temp_dir().join(format!("nwo-serve-cli-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let cache_env = [("NWO_CACHE_DIR", cache.to_str().expect("utf-8 path"))];

    let cold = Daemon::spawn(&cache_env);
    let first = cold.client(&["sweep", SWEEP[0], "--scale", "0"]);
    let table = stdout_of(&first);
    assert!(
        String::from_utf8_lossy(&first.stderr).contains("\"sims_run\": 1"),
        "cold daemon simulates"
    );
    assert_eq!(cold.shutdown(), 0);

    // A fresh daemon process (empty memo) answers from the disk cache.
    let warm = Daemon::spawn(&cache_env);
    let revived = warm.client(&["sweep", SWEEP[0], "--scale", "0"]);
    assert_eq!(stdout_of(&revived), table, "disk tier is byte-identical");
    let stderr = String::from_utf8_lossy(&revived.stderr);
    assert!(
        stderr.contains("\"disk_hits\": 1") && stderr.contains("\"sims_run\": 0"),
        "restart must hit the disk cache: {stderr}"
    );
    assert_eq!(warm.shutdown(), 0);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn invalid_concurrency_is_rejected_up_front() {
    // --jobs 0 on the bench path.
    let output = nwo(&["bench", SWEEP[0], "--scale", "0", "--jobs", "0"]);
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("must be positive"), "{stderr}");

    // --queue-depth 0 on the serve path: rejected before binding.
    let output = nwo(&["serve", "--addr", "127.0.0.1:0", "--queue-depth", "0"]);
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("must be positive"), "{stderr}");

    // NWO_JOBS=0 aborts the daemon before it serves anything.
    let output = command(&["serve", "--addr", "127.0.0.1:0"])
        .env("NWO_JOBS", "0")
        .output()
        .expect("nwo-cli spawns");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("must be positive"), "{stderr}");

    // NWO_SERVE_QUEUE=0 gets the same typed rejection.
    let output = command(&["serve", "--addr", "127.0.0.1:0"])
        .env("NWO_SERVE_QUEUE", "0")
        .output()
        .expect("nwo-cli spawns");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("must be positive"), "{stderr}");

    // NWO_JOBS=0 via the environment is no quieter than --jobs 0,
    // on the bench and experiments paths alike.
    for args in [
        ["bench", SWEEP[0], "--scale", "0"].as_slice(),
        ["experiments", "table4"].as_slice(),
    ] {
        let output = command(args)
            .env("NWO_JOBS", "0")
            .output()
            .expect("nwo-cli spawns");
        assert_eq!(output.status.code(), Some(1), "{args:?}");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains("must be positive"), "{args:?}: {stderr}");
    }
}
