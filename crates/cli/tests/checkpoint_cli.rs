//! End-to-end checkpoint workflow through the CLI binary: a
//! `--ckpt-out` warmup image resumed with `--ckpt-in` must produce the
//! same report — down to the `--json` metrics snapshot — as an
//! uninterrupted `--warmup` run; corrupted files must fail with a typed
//! message and a nonzero exit; and `ckpt info` must describe the file.

use std::path::Path;
use std::process::Command;

use nwo_sim::obs::json;

fn nwo(args: &[&str], dir: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_nwo-cli"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("nwo-cli spawns")
}

fn assert_ok(out: &std::process::Output, what: &str) -> String {
    assert!(
        out.status.success(),
        "{what} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

#[test]
fn checkpoint_resumed_sim_matches_uninterrupted_run() {
    let dir = std::env::temp_dir().join(format!("nwo-ckpt-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Uninterrupted: warm 2000 instructions, run, snapshot to JSON.
    let base = assert_ok(
        &nwo(
            &[
                "sim",
                "--bench",
                "mpeg2-enc",
                "--warmup",
                "2000",
                "--json",
                "base.json",
            ],
            &dir,
        ),
        "uninterrupted run",
    );

    // Split: warm 2000, save, exit; then restore and run.
    assert_ok(
        &nwo(
            &[
                "sim",
                "--bench",
                "mpeg2-enc",
                "--warmup",
                "2000",
                "--ckpt-out",
                "warm.ckpt",
            ],
            &dir,
        ),
        "checkpoint save",
    );
    let resumed = assert_ok(
        &nwo(
            &[
                "sim",
                "--bench",
                "mpeg2-enc",
                "--ckpt-in",
                "warm.ckpt",
                "--json",
                "resumed.json",
            ],
            &dir,
        ),
        "checkpoint resume",
    );

    assert_eq!(base, resumed, "reports must match to the byte");
    let base_json = std::fs::read_to_string(dir.join("base.json")).expect("base.json");
    let resumed_json = std::fs::read_to_string(dir.join("resumed.json")).expect("resumed.json");
    // The `prof.*` group records *how* the warm state was obtained
    // (functional warmup vs checkpoint restore), so it is the one part
    // of the snapshot that must differ between the two runs. Everything
    // else — every architectural and microarchitectural counter — must
    // match to the byte.
    let strip_prof = |s: &str| -> String {
        s.lines()
            .filter(|l| !l.trim_start().starts_with("\"prof."))
            .flat_map(|l| [l, "\n"])
            .collect()
    };
    assert_eq!(
        strip_prof(&base_json),
        strip_prof(&resumed_json),
        "metrics snapshots must match to the byte outside prof.*"
    );
    // And the snapshot is real, parseable content, with the expected
    // provenance on each side.
    let v = json::parse(&base_json).expect("snapshot parses");
    assert!(v.get("sim.cycles").and_then(|c| c.as_u64()).unwrap() > 0);
    assert_eq!(v.get("prof.warmup_calls").and_then(|c| c.as_u64()), Some(1));
    assert_eq!(
        v.get("prof.ckpt_restores").and_then(|c| c.as_u64()),
        Some(0)
    );
    let r = json::parse(&resumed_json).expect("snapshot parses");
    assert_eq!(r.get("prof.warmup_calls").and_then(|c| c.as_u64()), Some(0));
    assert_eq!(
        r.get("prof.ckpt_restores").and_then(|c| c.as_u64()),
        Some(1)
    );

    // `ckpt info` describes the file with all CRCs intact.
    let info = assert_ok(&nwo(&["ckpt", "info", "warm.ckpt"], &dir), "ckpt info");
    assert!(info.contains("checkpoint format v1"), "{info}");
    assert!(info.contains("current build"), "{info}");
    for section in ["meta", "frontend", "hierarchy", "bpred", "output"] {
        assert!(info.contains(section), "missing section {section}: {info}");
    }
    assert!(!info.contains("CORRUPT"), "{info}");
    // Each section row carries its share of the blob, plus a total line.
    assert!(info.contains("blob%"), "size-share column header: {info}");
    assert!(info.contains('%'), "per-section percentages: {info}");
    assert!(info.contains("total"), "summary total line: {info}");
    assert!(info.contains("rest is framing"), "{info}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_checkpoint_fails_with_typed_message() {
    let dir = std::env::temp_dir().join(format!("nwo-ckpt-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    assert_ok(
        &nwo(
            &[
                "sim",
                "--bench",
                "mpeg2-enc",
                "--warmup",
                "500",
                "--ckpt-out",
                "warm.ckpt",
            ],
            &dir,
        ),
        "checkpoint save",
    );
    let path = dir.join("warm.ckpt");
    let mut bytes = std::fs::read(&path).expect("readable");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).expect("writable");

    let out = nwo(
        &["sim", "--bench", "mpeg2-enc", "--ckpt-in", "warm.ckpt"],
        &dir,
    );
    assert!(!out.status.success(), "corrupt checkpoint must be fatal");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("CRC mismatch") || stderr.contains("crc"),
        "error names the CRC failure: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ckpt_info_reports_corruption_and_exits_nonzero() {
    let dir = std::env::temp_dir().join(format!("nwo-ckpt-info-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    assert_ok(
        &nwo(
            &[
                "sim",
                "--bench",
                "compress",
                "--warmup",
                "500",
                "--ckpt-out",
                "warm.ckpt",
            ],
            &dir,
        ),
        "checkpoint save",
    );
    let path = dir.join("warm.ckpt");
    let mut bytes = std::fs::read(&path).expect("readable");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).expect("writable");

    let out = nwo(&["ckpt", "info", "warm.ckpt"], &dir);
    assert!(!out.status.success(), "corruption makes info exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("CORRUPT"),
        "bad section is flagged: {stdout}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ckpt_info_exit_codes_distinguish_fine_stale_and_corrupt() {
    let dir = std::env::temp_dir().join(format!("nwo-ckpt-codes-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    assert_ok(
        &nwo(
            &[
                "sim",
                "--bench",
                "compress",
                "--warmup",
                "500",
                "--ckpt-out",
                "warm.ckpt",
            ],
            &dir,
        ),
        "checkpoint save",
    );
    let path = dir.join("warm.ckpt");
    let pristine = std::fs::read(&path).expect("readable");

    // Fine: exit 0.
    let out = nwo(&["ckpt", "info", "warm.ckpt"], &dir);
    assert_eq!(out.status.code(), Some(0), "intact file exits 0");

    // Stale build: flip a salt byte (header offset 6..14 — after the
    // 4-byte magic and u16 version). Section CRCs cover payloads, not
    // the header, so the file stays structurally intact but belongs to
    // a build that never existed.
    let mut stale = pristine.clone();
    stale[6] ^= 0xff;
    std::fs::write(&path, &stale).expect("writable");
    let out = nwo(&["ckpt", "info", "warm.ckpt"], &dir);
    assert_eq!(out.status.code(), Some(4), "stale salt exits 4");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("STALE"), "{stdout}");
    assert!(!stdout.contains("CORRUPT"), "{stdout}");

    // Corrupt payload: flip the last byte (inside the final section).
    let mut corrupt = pristine.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    std::fs::write(&path, &corrupt).expect("writable");
    let out = nwo(&["ckpt", "info", "warm.ckpt"], &dir);
    assert_eq!(out.status.code(), Some(3), "corrupt section exits 3");

    // Corrupt container: break the magic so the file cannot parse at all.
    let mut not_a_ckpt = pristine.clone();
    not_a_ckpt[0] ^= 0xff;
    std::fs::write(&path, &not_a_ckpt).expect("writable");
    let out = nwo(&["ckpt", "info", "warm.ckpt"], &dir);
    assert_eq!(out.status.code(), Some(3), "unparseable container exits 3");

    // Missing file stays a plain error: exit 1.
    let out = nwo(&["ckpt", "info", "no-such.ckpt"], &dir);
    assert_eq!(out.status.code(), Some(1), "missing file exits 1");

    let _ = std::fs::remove_dir_all(&dir);
}
