//! End-to-end checkpoint workflow through the CLI binary: a
//! `--ckpt-out` warmup image resumed with `--ckpt-in` must produce the
//! same report — down to the `--json` metrics snapshot — as an
//! uninterrupted `--warmup` run; corrupted files must fail with a typed
//! message and a nonzero exit; and `ckpt info` must describe the file.

use std::path::Path;
use std::process::Command;

use nwo_sim::obs::json;

fn nwo(args: &[&str], dir: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_nwo-cli"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("nwo-cli spawns")
}

fn assert_ok(out: &std::process::Output, what: &str) -> String {
    assert!(
        out.status.success(),
        "{what} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

#[test]
fn checkpoint_resumed_sim_matches_uninterrupted_run() {
    let dir = std::env::temp_dir().join(format!("nwo-ckpt-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Uninterrupted: warm 2000 instructions, run, snapshot to JSON.
    let base = assert_ok(
        &nwo(
            &[
                "sim",
                "--bench",
                "mpeg2-enc",
                "--warmup",
                "2000",
                "--json",
                "base.json",
            ],
            &dir,
        ),
        "uninterrupted run",
    );

    // Split: warm 2000, save, exit; then restore and run.
    assert_ok(
        &nwo(
            &[
                "sim",
                "--bench",
                "mpeg2-enc",
                "--warmup",
                "2000",
                "--ckpt-out",
                "warm.ckpt",
            ],
            &dir,
        ),
        "checkpoint save",
    );
    let resumed = assert_ok(
        &nwo(
            &[
                "sim",
                "--bench",
                "mpeg2-enc",
                "--ckpt-in",
                "warm.ckpt",
                "--json",
                "resumed.json",
            ],
            &dir,
        ),
        "checkpoint resume",
    );

    assert_eq!(base, resumed, "reports must match to the byte");
    let base_json = std::fs::read_to_string(dir.join("base.json")).expect("base.json");
    let resumed_json = std::fs::read_to_string(dir.join("resumed.json")).expect("resumed.json");
    assert_eq!(
        base_json, resumed_json,
        "metrics snapshots must match to the byte"
    );
    // And the snapshot is real, parseable content.
    let v = json::parse(&base_json).expect("snapshot parses");
    assert!(v.get("sim.cycles").and_then(|c| c.as_u64()).unwrap() > 0);

    // `ckpt info` describes the file with all CRCs intact.
    let info = assert_ok(&nwo(&["ckpt", "info", "warm.ckpt"], &dir), "ckpt info");
    assert!(info.contains("checkpoint format v1"), "{info}");
    assert!(info.contains("current build"), "{info}");
    for section in ["meta", "frontend", "hierarchy", "bpred", "output"] {
        assert!(info.contains(section), "missing section {section}: {info}");
    }
    assert!(!info.contains("CORRUPT"), "{info}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_checkpoint_fails_with_typed_message() {
    let dir = std::env::temp_dir().join(format!("nwo-ckpt-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    assert_ok(
        &nwo(
            &[
                "sim",
                "--bench",
                "mpeg2-enc",
                "--warmup",
                "500",
                "--ckpt-out",
                "warm.ckpt",
            ],
            &dir,
        ),
        "checkpoint save",
    );
    let path = dir.join("warm.ckpt");
    let mut bytes = std::fs::read(&path).expect("readable");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).expect("writable");

    let out = nwo(
        &["sim", "--bench", "mpeg2-enc", "--ckpt-in", "warm.ckpt"],
        &dir,
    );
    assert!(!out.status.success(), "corrupt checkpoint must be fatal");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("CRC mismatch") || stderr.contains("crc"),
        "error names the CRC failure: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ckpt_info_reports_corruption_and_exits_nonzero() {
    let dir = std::env::temp_dir().join(format!("nwo-ckpt-info-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    assert_ok(
        &nwo(
            &[
                "sim",
                "--bench",
                "compress",
                "--warmup",
                "500",
                "--ckpt-out",
                "warm.ckpt",
            ],
            &dir,
        ),
        "checkpoint save",
    );
    let path = dir.join("warm.ckpt");
    let mut bytes = std::fs::read(&path).expect("readable");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).expect("writable");

    let out = nwo(&["ckpt", "info", "warm.ckpt"], &dir);
    assert!(!out.status.success(), "corruption makes info exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("CORRUPT"),
        "bad section is flagged: {stdout}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
