//! End-to-end profiling and telemetry through the CLI binary: the
//! `--profile` tree, the `--profile-out` Chrome Trace Event JSON and
//! the `--telemetry-out` interval stream must all be produced and
//! well-formed, and the up-front output validation must reject bad
//! flags before any simulation runs.

use std::path::Path;
use std::process::Command;

use nwo_sim::obs::json::{self, JsonValue};

fn nwo(args: &[&str], dir: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_nwo-cli"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("nwo-cli spawns")
}

#[test]
fn profile_tree_trace_json_and_telemetry_stream_are_produced() {
    let dir = std::env::temp_dir().join(format!("nwo-prof-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    let out = nwo(
        &[
            "sim",
            "--bench",
            "mpeg2-enc",
            "--warmup",
            "500",
            "--verify",
            "--profile",
            "--profile-out",
            "trace.json",
            "--telemetry-out",
            "telemetry.jsonl",
            "--interval-stats",
            "1000",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "profiled sim failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");

    // The human tree names the run's phases with counts and times.
    assert!(stdout.contains("span profile"), "{stdout}");
    for phase in ["sim", "decode", "warmup", "measured-run", "oracle-step"] {
        assert!(stdout.contains(phase), "tree names phase {phase}: {stdout}");
    }

    // The Chrome trace parses, and its events carry complete slices
    // whose names include the root and the measured run.
    let trace = std::fs::read_to_string(dir.join("trace.json")).expect("trace.json written");
    let v = json::parse(&trace).expect("Chrome trace parses");
    let Some(JsonValue::Array(events)) = v.get("traceEvents") else {
        panic!("traceEvents array missing: {trace}");
    };
    assert!(!events.is_empty(), "trace has events");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    assert!(names.contains(&"sim"), "{names:?}");
    assert!(names.contains(&"measured-run"), "{names:?}");
    for e in events {
        assert_eq!(e.get("ph").and_then(|x| x.as_str()), Some("X"));
        assert!(e.get("ts").and_then(|x| x.as_f64()).is_some());
        assert!(e.get("dur").and_then(|x| x.as_f64()).is_some());
    }
    // The root span contains the measured run (child within parent).
    let slice = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
            .map(|e| {
                let ts = e.get("ts").and_then(|x| x.as_f64()).unwrap();
                let dur = e.get("dur").and_then(|x| x.as_f64()).unwrap();
                (ts, ts + dur)
            })
            .unwrap()
    };
    let root = slice("sim");
    let run = slice("measured-run");
    assert!(
        root.0 <= run.0 && run.1 <= root.1,
        "measured-run {run:?} nests inside sim {root:?}"
    );

    // Every telemetry line parses and reports per-interval deltas.
    let telemetry =
        std::fs::read_to_string(dir.join("telemetry.jsonl")).expect("telemetry written");
    let lines: Vec<&str> = telemetry.lines().collect();
    assert!(!lines.is_empty(), "telemetry stream has samples");
    for line in &lines {
        let s = json::parse(line).expect("telemetry line parses");
        assert_eq!(s.get("t").and_then(|x| x.as_str()), Some("telemetry"));
        assert!(s.get("cycle").and_then(|x| x.as_u64()).unwrap() > 0);
        assert!(s.get("ipc").and_then(|x| x.as_f64()).is_some());
        assert!(s.get("stall").is_some(), "stall breakdown present");
        let power = s.get("power_mw").expect("power object");
        assert!(power.get("baseline").and_then(|x| x.as_f64()).is_some());
        assert!(power.get("gated").and_then(|x| x.as_f64()).is_some());
        let Some(JsonValue::Array(deciles)) = s.get("width_deciles") else {
            panic!("width_deciles missing: {line}");
        };
        assert_eq!(deciles.len(), 9, "p10..p90");
    }
    // All but the final (partial) sample cover exactly the period.
    for line in &lines[..lines.len() - 1] {
        let s = json::parse(line).expect("parses");
        assert_eq!(
            s.get("interval_cycles").and_then(|x| x.as_u64()),
            Some(1000)
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_observability_flags_fail_before_any_simulation() {
    let dir = std::env::temp_dir().join(format!("nwo-prof-flags-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    // A zero interval period is a typed config error, not a silent off.
    let out = nwo(
        &["sim", "--bench", "compress", "--interval-stats", "0"],
        &dir,
    );
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--interval-stats period must be positive"),
        "{stderr}"
    );

    // Unwritable output parents are rejected up front, for both flags.
    for flag in ["--profile-out", "--telemetry-out"] {
        let out = nwo(
            &[
                "sim",
                "--bench",
                "compress",
                flag,
                "/nonexistent-dir-xyz/out.json",
            ],
            &dir,
        );
        assert!(!out.status.success(), "{flag} with a bad parent fails");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("parent directory does not exist"),
            "{flag}: {stderr}"
        );
        assert!(stderr.contains(flag), "error names the flag: {stderr}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn experiments_progress_flag_streams_jsonl_ticks_to_stderr() {
    let dir = std::env::temp_dir().join(format!("nwo-prof-progress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    let out = Command::new(env!("CARGO_BIN_EXE_nwo-cli"))
        .args(["experiments", "fig1", "--progress", "--jobs", "2"])
        .env("NWO_HARNESS_JSON", dir.join("harness.json"))
        .current_dir(&dir)
        .output()
        .expect("nwo-cli spawns");
    assert!(
        out.status.success(),
        "experiments --progress failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let ticks: Vec<&str> = stderr
        .lines()
        .filter(|l| l.starts_with("{\"t\": \"progress\""))
        .collect();
    assert!(!ticks.is_empty(), "progress ticks on stderr: {stderr}");
    let mut scopes = std::collections::HashSet::new();
    for tick in &ticks {
        let v = json::parse(tick).expect("progress tick parses");
        scopes.insert(v.get("scope").and_then(|x| x.as_str()).unwrap().to_string());
        assert!(v.get("done").and_then(|x| x.as_u64()).is_some());
        assert!(v.get("total").and_then(|x| x.as_u64()).is_some());
        assert!(v.get("eta_s").and_then(|x| x.as_f64()).is_some());
    }
    // Both granularities tick: per collected job and per experiment.
    assert!(scopes.contains("jobs"), "{stderr}");
    assert!(scopes.contains("experiments"), "{stderr}");
    // The final experiments tick reports completion.
    let last = json::parse(ticks.last().unwrap()).expect("parses");
    assert_eq!(
        last.get("scope").and_then(|x| x.as_str()),
        Some("experiments")
    );
    assert_eq!(
        last.get("done").and_then(|x| x.as_u64()),
        last.get("total").and_then(|x| x.as_u64())
    );

    let _ = std::fs::remove_dir_all(&dir);
}
