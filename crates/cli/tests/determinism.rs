//! End-to-end determinism of the parallel experiment runner: the table
//! printed to stdout and the CSV export must be byte-identical whether
//! the harness runs serially (`NWO_JOBS=1`) or on a multi-worker pool.
//!
//! The harness prints per-experiment timing summaries as lines starting
//! with `[` (wall-clock is inherently nondeterministic); those are
//! filtered before comparison, exactly as a consumer diffing two runs
//! would.

use std::path::Path;
use std::process::Command;

use nwo_sim::obs::json::{self, JsonValue};

struct Run {
    tables: String,
    csv: String,
    harness_json: String,
}

/// Runs `nwo-cli experiments fig1` with the given worker count and
/// returns the deterministic table output, the exported CSV and the
/// harness timing JSON.
fn run_fig1(jobs: &str, dir: &Path) -> Run {
    let csv_dir = dir.join("csv");
    let json_path = dir.join("harness.json");
    let output = Command::new(env!("CARGO_BIN_EXE_nwo-cli"))
        .args(["experiments", "fig1"])
        .env("NWO_JOBS", jobs)
        .env("NWO_CSV", &csv_dir)
        .env("NWO_HARNESS_JSON", &json_path)
        .output()
        .expect("nwo-cli spawns");
    assert!(
        output.status.success(),
        "experiments fig1 (NWO_JOBS={jobs}) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("stdout is UTF-8");
    // Timing summary lines are bracketed so they can be stripped from
    // otherwise-deterministic output.
    let tables: String = stdout
        .lines()
        .filter(|l| !l.starts_with('['))
        .flat_map(|l| [l, "\n"])
        .collect();
    let csv = std::fs::read_to_string(csv_dir.join("fig1.csv")).expect("fig1.csv written");
    let harness_json = std::fs::read_to_string(&json_path).expect("harness JSON written");
    Run {
        tables,
        csv,
        harness_json,
    }
}

#[test]
fn parallel_experiment_output_is_byte_identical_to_serial() {
    let base = std::env::temp_dir().join(format!("nwo-determinism-{}", std::process::id()));
    let serial_dir = base.join("serial");
    let parallel_dir = base.join("parallel");
    for d in [&serial_dir, &parallel_dir] {
        std::fs::create_dir_all(d).expect("temp dir");
    }

    let serial = run_fig1("1", &serial_dir);
    let parallel = run_fig1("4", &parallel_dir);

    assert!(
        serial.tables.contains("Figure 1"),
        "fig1 table was emitted:\n{}",
        serial.tables
    );
    assert_eq!(
        serial.tables, parallel.tables,
        "stdout tables must be byte-identical across worker counts"
    );
    assert_eq!(
        serial.csv, parallel.csv,
        "CSV export must be byte-identical across worker counts"
    );

    // The harness summary JSON is machine-readable and reflects the
    // requested pool size; wall-clock fields differ between runs, so
    // only the schema-stable fields are compared.
    for (run, jobs) in [(&serial, 1), (&parallel, 4)] {
        let v = json::parse(&run.harness_json).expect("harness JSON parses");
        assert_eq!(v.get("schema").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.get("jobs").and_then(|x| x.as_u64()), Some(jobs));
        assert_eq!(
            v.get("sims_run").and_then(|x| x.as_u64()),
            Some(8),
            "fig1 simulates each of the 8 SPECint-like benchmarks exactly once"
        );
        let Some(JsonValue::Array(experiments)) = v.get("experiments") else {
            panic!("experiments array missing from harness JSON");
        };
        assert_eq!(experiments.len(), 1);
        assert_eq!(
            experiments[0].get("name").and_then(|x| x.as_str()),
            Some("fig1")
        );
        // Schema 2 carries a per-experiment phase breakdown with real
        // time in the sim-job spans (the workers ran something).
        let phases = experiments[0].get("phases").expect("phases object");
        assert!(
            phases.get("busy_s").and_then(|x| x.as_f64()).unwrap() > 0.0,
            "workers recorded busy time: {}",
            run.harness_json
        );
        let counts = experiments[0].get("phase_counts").expect("phase_counts");
        assert_eq!(
            counts.get("busy").and_then(|x| x.as_u64()),
            Some(8),
            "one sim-job per benchmark"
        );
        assert!(v.get("busy_s").and_then(|x| x.as_f64()).unwrap() > 0.0);
        assert!(v.get("utilization").and_then(|x| x.as_f64()).unwrap() > 0.0);
    }

    // Beyond the stable fields spot-checked above: the two harness
    // files must be *structurally* byte-identical — same keys in the
    // same order with the same values — once every timing-derived
    // number (`*_s` seconds fields and the utilization ratio) is
    // zeroed. A worker-count-dependent count sneaking into the schema
    // would show up here.
    let a = scrub_timing(json::parse(&serial.harness_json).expect("parses"));
    let mut b = scrub_timing(json::parse(&parallel.harness_json).expect("parses"));
    // `jobs` is the one field that legitimately reflects the pool size.
    if let JsonValue::Object(fields) = &mut b {
        for (k, v) in fields.iter_mut() {
            if k == "jobs" {
                *v = JsonValue::Number(1.0);
            }
        }
    }
    assert_eq!(
        a, b,
        "harness JSON must match across worker counts modulo timing:\nserial: {}\nparallel: {}",
        serial.harness_json, parallel.harness_json
    );

    let _ = std::fs::remove_dir_all(&base);
}

/// Zeroes every number whose key names a wall-clock-derived quantity
/// (`..._s` or `utilization`), recursively, so two runs can be compared
/// byte-for-byte on everything deterministic.
fn scrub_timing(v: JsonValue) -> JsonValue {
    fn walk(v: &mut JsonValue) {
        match v {
            JsonValue::Object(fields) => {
                for (k, val) in fields.iter_mut() {
                    if matches!(val, JsonValue::Number(_))
                        && (k.ends_with("_s") || k == "utilization")
                    {
                        *val = JsonValue::Number(0.0);
                    } else {
                        walk(val);
                    }
                }
            }
            JsonValue::Array(items) => items.iter_mut().for_each(walk),
            _ => {}
        }
    }
    let mut v = v;
    walk(&mut v);
    v
}
