//! The verification surface of the CLI binary: `sim --verify` runs the
//! lockstep oracle end to end, and `fault-campaign` reports full
//! detection coverage, deterministically for a fixed seed.

use std::path::Path;
use std::process::Command;

fn nwo(args: &[&str], dir: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_nwo-cli"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("nwo-cli spawns")
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nwo-verify-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn sim_verify_reports_zero_divergences() {
    let dir = scratch("sim");
    let out = nwo(
        &["sim", "--bench", "compress", "--replay", "--verify"],
        &dir,
    );
    assert!(
        out.status.success(),
        "oracle-checked run fails:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("zero divergences"),
        "oracle line missing: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_campaign_detects_everything_and_is_deterministic() {
    let dir = scratch("campaign");
    let args = [
        "fault-campaign",
        "--bench",
        "compress",
        "--seed",
        "12345",
        "--datapath",
        "2",
        "--predictor",
        "1",
        "--ckpt",
        "2",
    ];
    let first = nwo(&args, &dir);
    assert!(
        first.status.success(),
        "campaign must reach full coverage:\n{}{}",
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&first.stderr)
    );
    let stdout = String::from_utf8_lossy(&first.stdout);
    assert!(
        stdout.contains("architectural faults detected: 4/4 (100.0%)"),
        "coverage line: {stdout}"
    );
    assert!(!stdout.contains("MISSED"), "{stdout}");

    let second = nwo(&args, &dir);
    assert_eq!(
        first.stdout, second.stdout,
        "same seed must reproduce the identical report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
