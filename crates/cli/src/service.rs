//! `nwo serve` and `nwo client` — the daemon and its command-line
//! client. See `docs/serving.md` for the wire format and examples.

use nwo_bench::runner::{jobs_from_env_checked, Runner};
use nwo_serve::{parse_queue_depth, Client, ServeOptions, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// `nwo serve` exit code when the drain left jobs running.
pub const SERVE_LEAKED: u8 = 5;

/// The SIGTERM/SIGINT flag the accept loop polls. Static because the
/// C signal handler has no closure state.
static STOP: AtomicBool = AtomicBool::new(false);

/// Installs a minimal SIGTERM/SIGINT handler that sets [`STOP`] —
/// raw `signal(2)` via the C runtime already linked into every Rust
/// binary, because the workspace takes no external crates. Setting an
/// `AtomicBool` is within the async-signal-safety rules.
#[cfg(unix)]
fn install_stop_handler() {
    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
fn install_stop_handler() {}

/// `nwo serve [--addr A] [--queue-depth N] [--jobs N] [--addr-file P]`
///
/// Binds the daemon, prints the bound address, and serves until a
/// `shutdown` frame or SIGTERM/SIGINT, then drains. Returns the
/// process exit code: 0 after a clean drain, [`SERVE_LEAKED`] when
/// jobs were abandoned mid-flight.
///
/// # Errors
///
/// Flag/env validation failures (typed `ConfigError` text) and socket
/// errors.
pub fn serve(args: &[String]) -> Result<u8, String> {
    let mut options = ServeOptions::from_env().map_err(|e| e.to_string())?;
    let mut addr_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => options.addr = it.next().ok_or("--addr needs host:port")?.clone(),
            "--queue-depth" => {
                let value = it.next().ok_or("--queue-depth needs a positive number")?;
                options.queue_depth = parse_queue_depth(value).map_err(|e| e.to_string())?;
            }
            "--jobs" => crate::commands::set_jobs(it.next().ok_or("--jobs needs a number")?)?,
            "--addr-file" => addr_file = Some(it.next().ok_or("--addr-file needs a path")?.clone()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    // Validate concurrency up front: NWO_JOBS=0 (or --jobs 0, caught in
    // set_jobs) must abort here, not silently fall back inside the pool.
    let jobs = jobs_from_env_checked().map_err(|e| e.to_string())?;
    let runner = Arc::new(Runner::with_options(
        jobs,
        nwo_sim::ckpt::CacheDir::from_env("NWO_CACHE_DIR"),
        nwo_bench::warmup_insts(),
    ));
    let server = Server::bind(&options, runner).map_err(|e| format!("{}: {e}", options.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    if let Some(path) = &addr_file {
        std::fs::write(path, addr.to_string()).map_err(|e| format!("{path}: {e}"))?;
    }
    eprintln!(
        "nwo serve: listening on {addr} ({jobs} workers, queue depth {})",
        options.queue_depth
    );
    install_stop_handler();
    let report = server.run_until(&STOP);
    if report.leaked > 0 {
        eprintln!(
            "nwo serve: drain abandoned {} running job(s)",
            report.leaked
        );
        // Worker threads may be parked mid-simulation; skip their
        // destructors and report the leak through the exit code.
        std::process::exit(i32::from(SERVE_LEAKED));
    }
    eprintln!("nwo serve: drained cleanly");
    Ok(0)
}

/// `nwo client <addr> <sweep|status|cancel|shutdown> [args]`
///
/// The sweep action prints the result table on stdout — byte-identical
/// to `nwo bench` with the same arguments — and routes every
/// run-specific frame (accepted/progress/done) to stderr.
///
/// `sweep --retries N` switches to the self-healing path:
/// reconnect-and-retry with jittered backoff under an idempotency key,
/// so a retry after a dropped result frame replays the stored table
/// instead of re-running the simulations. `sweep --chaos-seed S`
/// additionally interposes an in-process [`ChaosProxy`] with the
/// `aggressive` fault plan between this client and the daemon — the
/// table must still come back byte-identical — and prints the
/// `serve.chaos.*` fault counters plus retry stats on stderr.
/// `NWO_CHAOS_SEED` seeds the same hook without a flag.
///
/// # Errors
///
/// Connection failures, server `error` frames, and bad arguments.
pub fn client(args: &[String]) -> Result<(), String> {
    let (addr, rest) = args
        .split_first()
        .ok_or("client needs <addr> <sweep|status|cancel|shutdown>")?;
    let (action, rest) = rest
        .split_first()
        .ok_or("client needs an action: sweep, status, cancel or shutdown")?;
    let connect =
        |addr: &str| Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"));
    match action.as_str() {
        "sweep" => {
            let mut benches: Vec<String> = Vec::new();
            let mut scale: Option<u32> = None;
            let mut flags: Vec<&str> = Vec::new();
            let mut linger_ms: u64 = 0;
            let mut retries: Option<u32> = None;
            let mut chaos_seed: Option<u64> = nwo_serve::chaos::env_seed_opt();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--scale" => {
                        scale = Some(
                            it.next()
                                .ok_or("--scale needs a number")?
                                .parse()
                                .map_err(|_| "--scale needs a number")?,
                        )
                    }
                    "--gating" => flags.push("gating"),
                    "--packing" => flags.push("packing"),
                    "--replay" => flags.push("replay"),
                    "--perfect" => flags.push("perfect"),
                    "--wide" => flags.push("wide"),
                    "--eight" => flags.push("eight"),
                    // Testing aid: hold the admission slot after the
                    // sweep finishes (exercises busy/cancel/watchdog).
                    "--linger-ms" => {
                        linger_ms = it
                            .next()
                            .ok_or("--linger-ms needs a number")?
                            .parse()
                            .map_err(|_| "--linger-ms needs a number")?
                    }
                    "--retries" => {
                        retries = Some(
                            it.next()
                                .ok_or("--retries needs a number")?
                                .parse::<u32>()
                                .ok()
                                .filter(|&n| n > 0)
                                .ok_or("--retries needs a positive number")?,
                        )
                    }
                    "--chaos-seed" => {
                        let text = it.next().ok_or("--chaos-seed needs a number")?;
                        chaos_seed = Some(parse_seed(text).ok_or("--chaos-seed needs a number")?)
                    }
                    _ if !a.starts_with('-') => benches.push(a.clone()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            if retries.is_some() || chaos_seed.is_some() {
                return healing_client_sweep(
                    addr, &benches, scale, &flags, linger_ms, retries, chaos_seed,
                );
            }
            let outcome = connect(addr)?
                .sweep(&benches, scale, &flags, linger_ms, None)
                .map_err(|e| e.to_string())?;
            for frame in &outcome.side_frames {
                eprintln!("{frame}");
            }
            print!("{}", outcome.table);
            Ok(())
        }
        "status" => {
            println!("{}", connect(addr)?.status().map_err(|e| e.to_string())?);
            Ok(())
        }
        "cancel" => {
            let [job] = rest else {
                return Err("cancel needs a job id (from the accepted frame)".to_string());
            };
            let job: u64 = job.parse().map_err(|_| "cancel needs a numeric job id")?;
            println!("{}", connect(addr)?.cancel(job).map_err(|e| e.to_string())?);
            Ok(())
        }
        "shutdown" => {
            println!("{}", connect(addr)?.shutdown().map_err(|e| e.to_string())?);
            Ok(())
        }
        other => Err(format!(
            "unknown client action `{other}`; known: sweep, status, cancel, shutdown"
        )),
    }
}

/// Parses a chaos seed: decimal or `0x`-prefixed hex.
fn parse_seed(text: &str) -> Option<u64> {
    let text = text.trim();
    match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => text.parse().ok(),
    }
}

/// The self-healing (and optionally chaos-interposed) sweep path behind
/// `nwo client … sweep --retries/--chaos-seed`.
#[allow(clippy::too_many_arguments)]
fn healing_client_sweep(
    addr: &str,
    benches: &[String],
    scale: Option<u32>,
    flags: &[&str],
    linger_ms: u64,
    retries: Option<u32>,
    chaos_seed: Option<u64>,
) -> Result<(), String> {
    use nwo_serve::{healing_sweep, ChaosProxy, NetPlan, RetryPolicy};

    let seed = chaos_seed.unwrap_or(0xC4A0_5EED);
    let mut policy = RetryPolicy::default();
    if let Some(n) = retries {
        policy.attempts = n;
    }
    // With a chaos seed, every byte between this client and the daemon
    // crosses the seeded fault proxy; the table must come back
    // byte-identical regardless.
    let proxy = match chaos_seed {
        Some(_) => Some(
            ChaosProxy::start(addr, NetPlan::aggressive(), seed)
                .map_err(|e| format!("chaos proxy: {e}"))?,
        ),
        None => None,
    };
    let target = proxy
        .as_ref()
        .map(|p| p.addr())
        .unwrap_or_else(|| addr.to_string());
    if proxy.is_some() {
        eprintln!("{}", nwo_serve::chaos::repro_banner(seed));
    }
    let (outcome, stats) = healing_sweep(&target, benches, scale, flags, linger_ms, seed, &policy)
        .map_err(|e| format!("{e} [{}]", nwo_serve::chaos::repro_banner(seed)))?;
    for frame in &outcome.side_frames {
        eprintln!("{frame}");
    }
    eprintln!(
        "retry: attempts {} replayed {}",
        stats.attempts, stats.replayed
    );
    if let Some(proxy) = &proxy {
        eprintln!("chaos: {}", proxy.stats().snapshot().to_json_line());
    }
    print!("{}", outcome.table);
    Ok(())
}
