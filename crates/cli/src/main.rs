//! `nwo` — command-line driver for the narrow-width-operand toolchain.
//!
//! ```text
//! nwo asm  <file.s> [-o out.nwo]        assemble to an NWO1 image
//! nwo dis  <file.s|file.nwo>            disassemble
//! nwo run  <file.s|file.nwo>            functional emulation
//! nwo sim  <file.s|file.nwo> [flags]    cycle-level simulation
//! nwo ckpt info <file>                  inspect a machine checkpoint
//!                                       (exit 0 fine / 3 corrupt / 4 stale)
//! nwo cache scrub [flags]               audit/quarantine the disk result
//!                                       cache (exit 0 / 3 corrupt / 4 stale)
//! nwo dbg  <file.s|file.nwo>            interactive debugger
//! nwo bench [name ...] [--scale N] [--jobs N]
//!                                       run benchmark kernels, verified
//! nwo experiments [name ...] [--jobs N] regenerate the paper's figures
//! nwo fault-campaign [flags]            seeded fault-injection coverage run
//! nwo serve [flags]                     simulation-as-a-service daemon
//!                                       (exit 0 clean drain / 5 leaked jobs)
//! nwo client <addr> <action> [args]     drive a daemon: sweep, status,
//!                                       cancel, shutdown
//! ```

mod commands;
mod debugger;
mod service;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => {
            eprint!("{}", commands::USAGE);
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "asm" => commands::asm(rest),
        "dis" => commands::dis(rest),
        "run" => commands::run(rest),
        "sim" => commands::sim(rest),
        // `ckpt` exits with a distinguishing code (0 fine, 3 corrupt,
        // 4 stale build) so scripts can branch without parsing text.
        "ckpt" => {
            return match commands::ckpt(rest) {
                Ok(code) => ExitCode::from(code),
                Err(message) => {
                    eprintln!("nwo: {message}");
                    ExitCode::from(1)
                }
            };
        }
        // `cache scrub` shares `ckpt`'s distinguishing codes (0 clean,
        // 3 corruption found and quarantined, 4 stale salts only).
        "cache" => {
            return match commands::cache(rest) {
                Ok(code) => ExitCode::from(code),
                Err(message) => {
                    eprintln!("nwo: {message}");
                    ExitCode::from(1)
                }
            };
        }
        "dbg" => commands::dbg(rest),
        // `serve` maps its drain outcome to the exit code (0 clean,
        // 5 when jobs leaked), like `ckpt`'s distinguishing codes.
        "serve" => {
            return match service::serve(rest) {
                Ok(code) => ExitCode::from(code),
                Err(message) => {
                    eprintln!("nwo: {message}");
                    ExitCode::from(1)
                }
            };
        }
        "client" => service::client(rest),
        "bench" => commands::bench(rest),
        "experiments" => commands::experiments(rest),
        "fault-campaign" => commands::fault_campaign(rest),
        "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("nwo: {message}");
            ExitCode::from(1)
        }
    }
}
