//! Subcommand implementations.

use nwo_core::{GatingConfig, PackConfig};
use nwo_isa::{assemble, Emulator, Program};
use nwo_sim::{SimConfig, Simulator};
use nwo_workloads::{benchmark, experiment_scale, BENCHMARK_NAMES};
use std::path::Path;

/// Top-level usage text.
pub const USAGE: &str = "\
nwo — narrow-width-operand toolchain (Brooks & Martonosi, HPCA 1999)

usage:
  nwo asm  <file.s> [-o out.nwo]      assemble to an NWO1 image
  nwo dis  <file.s|file.nwo>          disassemble
  nwo run  <file.s|file.nwo>          functional emulation
  nwo sim  <file.s|file.nwo> [flags]  cycle-level out-of-order simulation
       --bench <name>      simulate a built-in benchmark kernel instead of a file
       --scale <N>         workload scale for --bench (default: experiment scale)
       --gating     operand-based clock gating (Section 4)
       --packing    operation packing (Section 5.2)
       --replay     replay packing (Section 5.3)
       --perfect    perfect branch prediction
       --wide       8-wide fetch/decode
       --eight      8-issue / 8-ALU machine
       --max <N>    stop after N committed instructions
       --trace <N>  print a pipeline trace of the first N commits
       --json <path>       write every machine counter as a JSON snapshot
       --trace-out <path>  stream pipeline events as JSON lines (O(1) memory)
       --pipeview <N>      draw a text pipeline diagram of the first N commits
       --warmup <N>        fast-forward N instructions before timing (Sec 3.2)
       --ckpt-out <path>   save warmed state as a checkpoint and exit
       --ckpt-in <path>    restore warmed state from a checkpoint (skips warmup)
       --interval-stats <N>  write a metrics snapshot every N cycles
       --interval-out <path> interval snapshot JSONL path (default:
                             nwo-intervals.jsonl)
       --stall-detail      attribute lost commit slots per PC, print top offenders
       --verify            lockstep architectural oracle: check every commit
                           against an independent functional emulator
       --profile           print a hierarchical span-profile tree after the run
       --profile-out <path>  write the span profile as Chrome Trace Event JSON
                             (load in chrome://tracing or Perfetto)
       --telemetry-out <path>  stream per-interval telemetry deltas as JSON
                             lines: IPC, stalls, power, width deciles
                             (period: --interval-stats, default 10000)
  nwo ckpt info <file>                inspect a checkpoint (sections, CRCs, salt)
       exit code: 0 fine, 3 corrupt, 4 stale build salt (restore would reject)
  nwo cache scrub [--dir <path>] [--keep-tmp] [--no-quarantine]
       crash-consistency audit of the disk result cache (--dir falls back
       to NWO_CACHE_DIR): validate every blob's framing and section CRCs,
       quarantine corrupt blobs as *.quarantined, reap orphaned temp files
       exit code: 0 clean, 3 corruption found, 4 stale-salt blobs only
  nwo dbg  <file.s|file.nwo>          interactive debugger (step/break/dump)
  nwo bench [name ...] [--scale N] [--jobs N] [--profile] [--profile-out <p>]
       run benchmark kernels (verified) on the worker pool
  nwo experiments [name ...] [--jobs N] [--profile] [--profile-out <p>]
                  [--progress]
       regenerate the paper's tables/figures in parallel, with memoized
       simulations, per-experiment timing lines and a BENCH_harness.json
       summary (--jobs N == NWO_JOBS=N; see docs/benchmarking.md)
       --progress streams live JSONL ticks to stderr (done/total, cache
       hits, quarantines, ETA); equivalent to NWO_PROGRESS=1
  nwo fault-campaign [--bench <name>] [--scale N] [--seed S]
                     [--datapath N] [--predictor N] [--ckpt N]
       seeded deterministic fault injection: verify the oracle detects every
       architectural fault and the machine degrades gracefully otherwise
       (see docs/verification.md)
  nwo serve [--addr host:port] [--queue-depth N] [--jobs N]
            [--addr-file <path>]
       simulation-as-a-service daemon on the cached worker pool: framed
       TCP protocol, bounded admission, NWO_WATCHDOG_SECS watchdog,
       NWO_CACHE_DIR/NWO_WARMUP cache tiers, graceful drain on SIGTERM
       or a shutdown frame (exit 0 clean, 5 if jobs leaked); env
       fallbacks NWO_SERVE_ADDR / NWO_SERVE_QUEUE (see docs/serving.md)
  nwo client <addr> sweep [name ...] [--scale N] [--gating] [--packing]
                          [--replay] [--perfect] [--wide] [--eight]
                          [--retries N] [--chaos-seed S]
       run a sweep through a daemon; stdout is byte-identical to
       `nwo bench` with the same arguments, side frames go to stderr
       --retries N     self-healing mode: reconnect with jittered backoff
                       under an idempotency key (a retried sweep never
                       double-submits work)
       --chaos-seed S  test hook: route the sweep through an in-process
                       seeded fault proxy (delays, drips, header
                       corruption, resets) and print serve.chaos.* /
                       retry stats on stderr; NWO_CHAOS_SEED also works
  nwo client <addr> status|cancel <job>|shutdown
       inspect serve.* metrics, abandon a job, or drain the daemon
";

/// Loads a program from assembly source (`.s`) or an NWO1 image.
fn load_program(path: &str) -> Result<Program, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if bytes.starts_with(b"NWO1") {
        return Program::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"));
    }
    let source = String::from_utf8(bytes)
        .map_err(|_| format!("{path}: not UTF-8 assembly and not an NWO1 image"))?;
    assemble(&source).map_err(|e| format!("{path}: {e}"))
}

/// `nwo asm <file.s> [-o out.nwo]`
pub fn asm(args: &[String]) -> Result<(), String> {
    let mut input = None;
    let mut output = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => output = Some(it.next().ok_or("-o needs a path")?.clone()),
            _ if input.is_none() => input = Some(a.clone()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let input = input.ok_or("asm needs an input file")?;
    let program = load_program(&input)?;
    let out_path = output.unwrap_or_else(|| {
        Path::new(&input)
            .with_extension("nwo")
            .to_string_lossy()
            .into_owned()
    });
    std::fs::write(&out_path, program.to_bytes()).map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "{out_path}: {} instructions, {} data bytes, entry {:#x}",
        program.len(),
        program.data.len(),
        program.entry
    );
    Ok(())
}

/// `nwo dis <file>`
pub fn dis(args: &[String]) -> Result<(), String> {
    let [input] = args else {
        return Err("dis needs exactly one input file".to_string());
    };
    let program = load_program(input)?;
    print!("{}", program.disassemble());
    Ok(())
}

/// `nwo run <file>`
pub fn run(args: &[String]) -> Result<(), String> {
    let [input] = args else {
        return Err("run needs exactly one input file".to_string());
    };
    let program = load_program(input)?;
    let mut emu = Emulator::new(&program);
    emu.run(10_000_000_000).map_err(|e| e.to_string())?;
    if !emu.output().is_empty() {
        println!("outb: {}", String::from_utf8_lossy(emu.output()));
    }
    for (i, q) in emu.outq().iter().enumerate() {
        println!("outq[{i}]: {q} ({q:#x})");
    }
    println!("{} instructions executed", emu.icount());
    Ok(())
}

/// `nwo sim <file> [flags]`
pub fn sim(args: &[String]) -> Result<(), String> {
    use nwo_sim::obs::{JsonlSink, RingSink, TeeSink, TraceSink};

    let mut input = None;
    let mut bench_name: Option<String> = None;
    let mut bench_scale: Option<u32> = None;
    let mut config = SimConfig::default();
    let mut max = u64::MAX;
    let mut json_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut pipeview: usize = 0;
    let mut warmup: u64 = 0;
    let mut ckpt_out: Option<String> = None;
    let mut ckpt_in: Option<String> = None;
    let mut interval: Option<u64> = None;
    let mut interval_out: Option<String> = None;
    let mut stall_detail = false;
    let mut profile = false;
    let mut profile_out: Option<String> = None;
    let mut telemetry_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench" => bench_name = Some(it.next().ok_or("--bench needs a name")?.clone()),
            "--scale" => {
                bench_scale = Some(
                    it.next()
                        .ok_or("--scale needs a number")?
                        .parse()
                        .map_err(|_| "--scale needs a number")?,
                )
            }
            "--warmup" => {
                warmup = it
                    .next()
                    .ok_or("--warmup needs a number")?
                    .parse()
                    .map_err(|_| "--warmup needs a number")?
            }
            "--ckpt-out" => ckpt_out = Some(it.next().ok_or("--ckpt-out needs a path")?.clone()),
            "--ckpt-in" => ckpt_in = Some(it.next().ok_or("--ckpt-in needs a path")?.clone()),
            "--interval-stats" => {
                interval = Some(
                    it.next()
                        .ok_or("--interval-stats needs a number")?
                        .parse()
                        .map_err(|_| "--interval-stats needs a number")?,
                )
            }
            "--interval-out" => {
                interval_out = Some(it.next().ok_or("--interval-out needs a path")?.clone())
            }
            "--stall-detail" => stall_detail = true,
            "--profile" => profile = true,
            "--profile-out" => {
                profile_out = Some(it.next().ok_or("--profile-out needs a path")?.clone())
            }
            "--telemetry-out" => {
                telemetry_out = Some(it.next().ok_or("--telemetry-out needs a path")?.clone())
            }
            "--verify" => config = config.with_verify(),
            "--gating" => config = config.with_gating(GatingConfig::default()),
            "--packing" => config = config.with_packing(PackConfig::default()),
            "--replay" => config = config.with_packing(PackConfig::with_replay()),
            "--perfect" => config = config.with_perfect_prediction(),
            "--wide" => config = config.with_wide_decode(),
            "--eight" => config = config.with_eight_issue(),
            "--max" => {
                max = it
                    .next()
                    .ok_or("--max needs a number")?
                    .parse()
                    .map_err(|_| "--max needs a number")?
            }
            "--trace" => {
                config.trace_limit = it
                    .next()
                    .ok_or("--trace needs a number")?
                    .parse()
                    .map_err(|_| "--trace needs a number")?
            }
            "--json" => json_out = Some(it.next().ok_or("--json needs a path")?.clone()),
            "--trace-out" => trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone()),
            "--pipeview" => {
                pipeview = it
                    .next()
                    .ok_or("--pipeview needs a number")?
                    .parse()
                    .map_err(|_| "--pipeview needs a number")?
            }
            _ if input.is_none() && !a.starts_with('-') => input = Some(a.clone()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if ckpt_in.is_some() && (warmup > 0 || ckpt_out.is_some()) {
        return Err("--ckpt-in replaces warmup; it excludes --warmup and --ckpt-out".into());
    }
    // Validate everything cheap before any program is built or file is
    // touched: a long simulation must never run just to fail on a bad
    // flag at the end.
    config.validate().map_err(|e| e.to_string())?;
    if interval == Some(0) {
        return Err(nwo_sim::ConfigError::ZeroParameter {
            what: "--interval-stats period",
        }
        .to_string());
    }
    let interval = interval.unwrap_or(0);
    for (flag, path) in [
        ("--profile-out", &profile_out),
        ("--telemetry-out", &telemetry_out),
    ] {
        if let Some(p) = path {
            nwo_sim::validate_output_parent(flag, p).map_err(|e| e.to_string())?;
        }
    }
    if profile || profile_out.is_some() {
        // Capture individual events only when a trace file is requested;
        // `--profile` alone needs just the aggregate.
        nwo_sim::obs::span::enable(profile_out.is_some());
    }
    let root_span = nwo_sim::obs::span::span("sim");
    let program = {
        let _prof = nwo_sim::obs::span::span("decode");
        match (&bench_name, &input) {
            (Some(_), Some(_)) => return Err("--bench and an input file are exclusive".into()),
            (Some(name), None) => {
                let scale = bench_scale.unwrap_or_else(|| experiment_scale(name));
                benchmark(name, scale)
                    .ok_or_else(|| {
                        format!("unknown benchmark `{name}`; known: {BENCHMARK_NAMES:?}")
                    })?
                    .program
            }
            (None, Some(path)) => load_program(path)?,
            (None, None) => return Err("sim needs an input file or --bench <name>".into()),
        }
    };
    let trace_limit = config.trace_limit;
    let mut simulator = Simulator::new(&program, config);

    // Warm-state phase: restore a checkpoint, or fast-forward and
    // optionally persist the result (then exit without timing anything).
    if let Some(path) = &ckpt_in {
        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        simulator
            .restore_checkpoint(&bytes)
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("restored warmed state from {path}");
    } else if warmup > 0 {
        let warmed = simulator.warmup(warmup).map_err(|e| e.to_string())?;
        eprintln!("warmed {warmed} instructions");
    }
    if let Some(path) = &ckpt_out {
        let bytes = simulator.checkpoint();
        std::fs::write(path, &bytes).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote checkpoint to {path} ({} bytes)", bytes.len());
        drop(root_span);
        return finish_profile(profile, profile_out.as_deref());
    }
    if stall_detail {
        simulator.enable_stall_detail();
    }
    let interval_path = interval_out.unwrap_or_else(|| "nwo-intervals.jsonl".to_string());
    if interval > 0 {
        let file =
            std::fs::File::create(&interval_path).map_err(|e| format!("{interval_path}: {e}"))?;
        simulator.set_interval_stats(interval, Box::new(std::io::BufWriter::new(file)));
    }
    if let Some(path) = &telemetry_out {
        // The telemetry stream shares the interval period when one is
        // set; otherwise a sample every 10k cycles is dense enough to
        // plot and sparse enough to never dominate the run.
        let every = if interval > 0 { interval } else { 10_000 };
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        simulator.set_telemetry(every, Box::new(std::io::BufWriter::new(file)));
    }

    // Compose the trace sink: in-memory retention for --trace/--pipeview,
    // a streaming JSONL file for --trace-out, or both behind a tee.
    let retain = trace_limit.max(pipeview);
    let mut sinks: Vec<Box<dyn TraceSink>> = Vec::new();
    if retain > 0 {
        sinks.push(Box::new(RingSink::keep_first(retain)));
    }
    if let Some(path) = &trace_out {
        let sink = JsonlSink::create(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        sinks.push(Box::new(sink));
    }
    if sinks.len() == 1 {
        simulator.set_trace_sink(sinks.pop().expect("checked length"));
    } else if sinks.len() > 1 {
        let mut tee = TeeSink::new();
        for s in sinks {
            tee.push(s);
        }
        simulator.set_trace_sink(Box::new(tee));
    }

    let report = simulator.run(max).map_err(|e| e.to_string())?;
    if trace_limit > 0 {
        println!(
            "{:<10} {:<24} {:>6} {:>6} {:>6} {:>6} {:>6}  flags",
            "pc", "instruction", "F", "D", "I", "X", "C"
        );
        for t in simulator.trace().iter().take(trace_limit) {
            println!(
                "{:<#10x} {:<24} {:>6} {:>6} {:>6} {:>6} {:>6}  {}{}",
                t.pc,
                t.instr.to_string(),
                t.fetched_at,
                t.dispatched_at,
                t.issued_at,
                t.completed_at,
                t.committed_at,
                if t.packed { "P" } else { "" },
                if t.replayed { "R" } else { "" },
            );
        }
        println!();
    }
    if pipeview > 0 {
        let records = simulator.trace_commits();
        let shown = &records[..pipeview.min(records.len())];
        let diagram = nwo_sim::obs::pipeview::render(shown, &|_, raw| {
            nwo_isa::Instr::decode(raw)
                .map(|i| i.to_string())
                .unwrap_or_else(|_| format!("{raw:08x}"))
        });
        print!("{diagram}");
        println!();
    }
    if !report.out_bytes.is_empty() {
        println!("outb: {}", String::from_utf8_lossy(&report.out_bytes));
    }
    for (i, q) in report.out_quads.iter().enumerate() {
        println!("outq[{i}]: {q} ({q:#x})");
    }
    println!();
    print!("{report}");
    if stall_detail {
        if let Some(detail) = simulator.stall_detail() {
            let mut rows: Vec<_> = detail
                .iter()
                .map(|(&pc, b)| (pc, b.total(), b))
                .filter(|&(_, total, _)| total > 0)
                .collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            println!();
            println!("top stall PCs (lost commit slots):");
            println!("{:<12} {:>12}  dominant cause", "pc", "lost slots");
            for (pc, total, breakdown) in rows.iter().take(10) {
                let dominant = breakdown
                    .iter()
                    .max_by_key(|&(_, slots)| slots)
                    .map(|(cause, _)| cause.name())
                    .unwrap_or("-");
                println!("{pc:<#12x} {total:>12}  {dominant}");
            }
        }
    }
    if interval > 0 {
        eprintln!("wrote interval snapshots to {interval_path}");
    }
    if let Some(path) = &json_out {
        std::fs::write(path, simulator.snapshot().to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    if let Some(path) = &trace_out {
        eprintln!("wrote pipeline event stream to {path}");
    }
    if let Some(path) = &telemetry_out {
        eprintln!("wrote telemetry stream to {path}");
    }
    if let Some(checked) = simulator.oracle_checked() {
        println!("oracle: {checked} commits checked in lockstep, zero divergences");
    }
    drop(root_span);
    finish_profile(profile, profile_out.as_deref())
}

/// Finalizes the span profiler: prints the human-readable tree
/// (`--profile`) and/or writes Chrome Trace Event JSON (`--profile-out`,
/// loadable in `chrome://tracing` or Perfetto). Call only after the
/// command's root span has been dropped, so its duration is recorded.
fn finish_profile(show: bool, out: Option<&str>) -> Result<(), String> {
    if !show && out.is_none() {
        return Ok(());
    }
    let report = nwo_sim::obs::span::report();
    if show {
        println!();
        println!("span profile (wall time per phase):");
        print!("{}", report.render_tree());
    }
    if let Some(path) = out {
        std::fs::write(path, report.to_chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote span trace to {path}");
    }
    Ok(())
}

/// `nwo ckpt info <file>` exit code: the file is fine and restorable.
pub const CKPT_OK: u8 = 0;
/// `nwo ckpt info <file>` exit code: the container or a section payload
/// is corrupted (unparseable header, truncation, or a CRC mismatch).
pub const CKPT_CORRUPT: u8 = 3;
/// `nwo ckpt info <file>` exit code: the sections are intact but the
/// code-version salt belongs to a different build — restore would
/// reject it; regenerate the checkpoint.
pub const CKPT_STALE: u8 = 4;

/// `nwo ckpt info <file>` — header, salt and per-section summary of a
/// checkpoint, tolerating stale salts and corrupted payloads (they are
/// reported, not fatal) so rejected files can be diagnosed. Returns the
/// process exit code: [`CKPT_OK`], [`CKPT_CORRUPT`] or [`CKPT_STALE`],
/// so scripts can tell "re-warm" from "regenerate" without parsing text.
pub fn ckpt(args: &[String]) -> Result<u8, String> {
    let [sub, path] = args else {
        return Err("usage: nwo ckpt info <file>".to_string());
    };
    if sub != "info" {
        return Err(format!("unknown ckpt subcommand `{sub}`; try `info`"));
    }
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let info = match nwo_sim::ckpt::inspect(&bytes) {
        Ok(info) => info,
        // An unparseable container (bad magic, foreign version,
        // truncation) is corruption too — there is nothing to list.
        Err(e) => {
            eprintln!("{path}: {e}");
            return Ok(CKPT_CORRUPT);
        }
    };
    println!("{path}: checkpoint format v{}", info.version);
    println!(
        "salt: {:#018x} ({})",
        info.salt,
        if info.salt_current {
            "current build"
        } else {
            "STALE — restore will reject this file"
        }
    );
    println!("{:<12} {:>12} {:>7}  crc", "section", "bytes", "blob%");
    let mut all_ok = true;
    let blob_len = bytes.len().max(1) as f64;
    let mut payload = 0u64;
    for s in &info.sections {
        all_ok &= s.crc_ok;
        payload += s.len;
        println!(
            "{:<12} {:>12} {:>6.1}%  {}",
            s.name,
            s.len,
            s.len as f64 / blob_len * 100.0,
            if s.crc_ok { "ok" } else { "CORRUPT" }
        );
    }
    // The remainder is container framing: header, directory, CRCs.
    println!(
        "{:<12} {:>12} {:>6.1}%  (sections total; file {} bytes, rest is framing)",
        "total",
        payload,
        payload as f64 / blob_len * 100.0,
        bytes.len()
    );
    if !all_ok {
        eprintln!("{path}: one or more sections are corrupted");
        Ok(CKPT_CORRUPT)
    } else if !info.salt_current {
        Ok(CKPT_STALE)
    } else {
        Ok(CKPT_OK)
    }
}

/// `nwo cache scrub [--dir <path>] [--keep-tmp] [--no-quarantine]`
///
/// Crash-consistency audit of the disk result cache: walks the
/// directory (`--dir`, falling back to `NWO_CACHE_DIR`), validates
/// every `.ckpt` blob's container framing and per-section CRCs,
/// quarantines corrupt blobs by renaming them `*.quarantined` (so the
/// runner reads them as misses and re-simulates) and reaps orphaned
/// temp files left by killed writers. `--no-quarantine` and
/// `--keep-tmp` switch to report-only behaviour.
///
/// The exit code reuses `nwo ckpt info`'s convention: [`CKPT_OK`] for
/// a clean cache, [`CKPT_CORRUPT`] when any corruption was found, and
/// [`CKPT_STALE`] when the only findings are structurally-sound blobs
/// from a different build salt.
pub fn cache(args: &[String]) -> Result<u8, String> {
    use nwo_sim::ckpt::{BlobHealth, CacheDir, ScrubOptions};

    let usage = "usage: nwo cache scrub [--dir <path>] [--keep-tmp] [--no-quarantine]";
    let (sub, rest) = args.split_first().ok_or(usage)?;
    if sub != "scrub" {
        return Err(format!("unknown cache subcommand `{sub}`; try `scrub`"));
    }
    let mut dir: Option<String> = None;
    let mut options = ScrubOptions::default();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => dir = Some(it.next().ok_or("--dir needs a path")?.clone()),
            "--keep-tmp" => options.reap_tmp = false,
            "--no-quarantine" => options.quarantine = false,
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let dir = dir
        .or_else(|| {
            std::env::var("NWO_CACHE_DIR")
                .ok()
                .filter(|v| !v.is_empty())
        })
        .ok_or("cache scrub needs --dir <path> or NWO_CACHE_DIR")?;
    let cache = CacheDir::new(&dir);
    let report = cache.scrub(&options).map_err(|e| format!("{dir}: {e}"))?;
    for entry in &report.entries {
        match &entry.health {
            BlobHealth::Ok => println!("ok       {}", entry.file),
            BlobHealth::Stale(salt) => println!(
                "stale    {} (salt {salt:#018x}; this build regenerates it on miss)",
                entry.file
            ),
            BlobHealth::Corrupt(why) => println!(
                "CORRUPT  {} ({why}){}",
                entry.file,
                if entry.quarantined {
                    " — quarantined"
                } else {
                    ""
                }
            ),
        }
    }
    for tmp in &report.reaped_tmp {
        println!(
            "tmp      {tmp}{}",
            if options.reap_tmp { " — reaped" } else { "" }
        );
    }
    println!(
        "{dir}: {} ok, {} corrupt, {} stale, {} orphan tmp, {} previously quarantined",
        report.ok(),
        report.corrupt(),
        report.stale(),
        report.reaped_tmp.len(),
        report.prior_quarantined
    );
    if report.corrupt() > 0 {
        Ok(CKPT_CORRUPT)
    } else if report.stale() > 0 {
        Ok(CKPT_STALE)
    } else {
        Ok(CKPT_OK)
    }
}

/// `nwo fault-campaign [--bench <name>] [--scale N] [--seed S]
/// [--datapath N] [--predictor N] [--ckpt N]`
///
/// Seeded, deterministic fault-injection campaign over one benchmark:
///
/// * **datapath** trials flip one gated upper bit of a committed result
///   — architectural corruption the lockstep oracle must detect;
/// * **predictor** trials flip one bit of branch-direction state —
///   micro-architectural corruption the machine must absorb (the run
///   stays correct, only timing may change);
/// * **ckpt** trials flip one bit of a checkpoint blob — the container's
///   CRC/salt/framing validation must reject the restore.
///
/// Exits nonzero unless every architectural fault is detected and every
/// predictor fault degrades gracefully.
pub fn fault_campaign(args: &[String]) -> Result<(), String> {
    use nwo_sim::verify::{flip_blob_bit, CampaignReport, FaultPlan, FaultSite, TrialResult};
    use nwo_sim::SimError;

    let mut bench_name = "compress".to_string();
    let mut scale_override: Option<u32> = None;
    let mut seed: u64 = 0x5eed;
    let mut n_datapath: u32 = 4;
    let mut n_predictor: u32 = 2;
    let mut n_ckpt: u32 = 2;
    fn num(next: Option<&String>, what: &str) -> Result<u64, String> {
        next.ok_or(format!("{what} needs a number"))?
            .parse::<u64>()
            .map_err(|_| format!("{what} needs a number"))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench" => bench_name = it.next().ok_or("--bench needs a name")?.clone(),
            "--scale" => scale_override = Some(num(it.next(), "--scale")? as u32),
            "--seed" => seed = num(it.next(), "--seed")?,
            "--datapath" => n_datapath = num(it.next(), "--datapath")? as u32,
            "--predictor" => n_predictor = num(it.next(), "--predictor")? as u32,
            "--ckpt" => n_ckpt = num(it.next(), "--ckpt")? as u32,
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let scale = scale_override.unwrap_or_else(|| experiment_scale(&bench_name));
    let bench = benchmark(&bench_name, scale)
        .ok_or_else(|| format!("unknown benchmark `{bench_name}`; known: {BENCHMARK_NAMES:?}"))?;

    // Clean oracle-checked baseline: establishes the commit span faults
    // can target and proves the oracle itself is quiet on this kernel.
    let mut baseline = Simulator::new(&bench.program, SimConfig::default().with_verify());
    let base = baseline.run(u64::MAX).map_err(|e| e.to_string())?;
    if base.out_quads != bench.expected {
        return Err(format!(
            "{bench_name}: baseline output diverges from reference"
        ));
    }
    let committed = base.stats.committed;
    // Keep faults away from the last few commits: the trailing
    // outq/halt instructions write no result, so a fault armed there
    // would never fire and the trial would be vacuous.
    let span = committed.saturating_sub(8).max(1);
    println!(
        "baseline: {} commits oracle-checked on {bench_name} (scale {scale})",
        baseline.oracle_checked().unwrap_or(0)
    );

    let mut plan = FaultPlan::new(seed);
    let mut trials = Vec::new();

    for index in 0..n_datapath {
        let fault = plan.datapath_fault(span);
        let injected = format!(
            "flip result bit {} at commit {}",
            fault.bit, fault.commit_index
        );
        let mut sim = Simulator::new(&bench.program, SimConfig::default().with_verify());
        sim.inject_datapath_fault(fault);
        let (ok, note) = match sim.run(u64::MAX) {
            Err(SimError::Divergence(report)) => (
                true,
                format!("oracle: {} at pc {:#x}", report.kind, report.pc),
            ),
            Err(e) => (false, format!("failed without a divergence report: {e}")),
            Ok(_) => (
                false,
                "run completed; corruption went unnoticed".to_string(),
            ),
        };
        trials.push(TrialResult {
            site: FaultSite::Datapath,
            index,
            injected,
            ok,
            note,
        });
    }

    for index in 0..n_predictor {
        let entropy = plan.predictor_entropy();
        let injected = format!("flip predictor counter bit (entropy {entropy:#x})");
        let mut sim = Simulator::new(&bench.program, SimConfig::default().with_verify());
        if !sim.inject_predictor_fault(entropy) {
            trials.push(TrialResult {
                site: FaultSite::Predictor,
                index,
                injected,
                ok: false,
                note: "no mutable predictor state to corrupt".to_string(),
            });
            continue;
        }
        let (ok, note) = match sim.run(u64::MAX) {
            Ok(report) if report.out_quads == bench.expected => (
                true,
                format!(
                    "output correct; {} commits oracle-checked",
                    sim.oracle_checked().unwrap_or(0)
                ),
            ),
            Ok(_) => (false, "architected output changed".to_string()),
            Err(e) => (false, format!("run failed: {e}")),
        };
        trials.push(TrialResult {
            site: FaultSite::Predictor,
            index,
            injected,
            ok,
            note,
        });
    }

    if n_ckpt > 0 {
        // One warmed checkpoint, re-corrupted differently per trial.
        let mut warm = Simulator::new(&bench.program, SimConfig::default());
        warm.warmup(1_000).map_err(|e| e.to_string())?;
        let blob = warm.checkpoint();
        for index in 0..n_ckpt {
            let bit = plan.blob_bit(blob.len());
            let injected = format!("flip checkpoint blob bit {bit} of {}", blob.len() * 8);
            let mut corrupt = blob.clone();
            flip_blob_bit(&mut corrupt, bit);
            let mut sim = Simulator::new(&bench.program, SimConfig::default());
            let (ok, note) = match sim.restore_checkpoint(&corrupt) {
                Err(e) => (true, format!("restore rejected: {e}")),
                Ok(()) => (false, "restore accepted a corrupted blob".to_string()),
            };
            trials.push(TrialResult {
                site: FaultSite::Checkpoint,
                index,
                injected,
                ok,
                note,
            });
        }
    }

    let report = CampaignReport {
        seed,
        bench: bench_name.clone(),
        scale,
        trials,
    };
    println!("{report}");
    if report.success() {
        Ok(())
    } else {
        Err("fault campaign failed: see the trial table above".to_string())
    }
}

/// `nwo dbg <file>`
pub fn dbg(args: &[String]) -> Result<(), String> {
    let [input] = args else {
        return Err("dbg needs exactly one input file".to_string());
    };
    let program = load_program(input)?;
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    crate::debugger::repl(&program, stdin.lock(), &mut stdout).map_err(|e| e.to_string())
}

/// Applies a `--jobs N` flag by exporting `NWO_JOBS` before the global
/// worker pool spins up (the pool reads the variable once, on first
/// use, so the flag must come before any simulation is submitted).
/// `--jobs 0` and garbage surface the same typed
/// [`nwo_sim::ConfigError`] as `NWO_JOBS=0` — never a silent fallback.
pub(crate) fn set_jobs(value: &str) -> Result<(), String> {
    let n = value
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| {
            nwo_sim::ConfigError::ZeroParameter {
                what: "--jobs worker count",
            }
            .to_string()
        })?;
    std::env::set_var("NWO_JOBS", n.to_string());
    Ok(())
}

/// `nwo bench [name ...] [--scale N] [--jobs N] [--profile]
/// [--profile-out <path>] [--progress]`
pub fn bench(args: &[String]) -> Result<(), String> {
    use nwo_bench::runner::Runner;

    let mut names: Vec<String> = Vec::new();
    let mut scale_override = None;
    let mut profile = false;
    let mut profile_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale_override = Some(
                    it.next()
                        .ok_or("--scale needs a number")?
                        .parse::<u32>()
                        .map_err(|_| "--scale needs a number")?,
                )
            }
            "--jobs" => set_jobs(it.next().ok_or("--jobs needs a number")?)?,
            "--profile" => profile = true,
            "--profile-out" => {
                profile_out = Some(it.next().ok_or("--profile-out needs a path")?.clone())
            }
            "--progress" => std::env::set_var("NWO_PROGRESS", "1"),
            _ if !a.starts_with('-') => names.push(a.clone()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if let Some(p) = &profile_out {
        nwo_sim::validate_output_parent("--profile-out", p).map_err(|e| e.to_string())?;
    }
    if profile || profile_out.is_some() {
        nwo_sim::obs::span::enable(profile_out.is_some());
    }
    // NWO_JOBS=0 (or garbage) aborts up front with the typed error
    // instead of silently running at default parallelism.
    nwo_bench::runner::jobs_from_env_checked().map_err(|e| e.to_string())?;
    let root_span = nwo_sim::obs::span::span("bench");
    if names.is_empty() {
        names = BENCHMARK_NAMES.iter().map(|s| s.to_string()).collect();
    }
    // Submit everything up front so the kernels simulate in parallel,
    // then print rows in request order (identical output at any job
    // count). The memo key uses each benchmark's actual scale.
    let mut jobs = Vec::with_capacity(names.len());
    for name in &names {
        let scale = scale_override.unwrap_or_else(|| experiment_scale(name));
        let bench = {
            let _prof = nwo_sim::obs::span::span("decode");
            benchmark(name, scale)
                .ok_or_else(|| format!("unknown benchmark `{name}`; known: {BENCHMARK_NAMES:?}"))?
        };
        let handle = Runner::global().submit(&bench, scale, SimConfig::default());
        jobs.push((name, scale, handle));
    }
    // Rows come from the same shared formatter as `nwo serve` result
    // frames, keeping the two surfaces byte-identical.
    println!("{}", nwo_bench::bench_table_header());
    for (name, scale, handle) in &jobs {
        // The runner verifies each report against the reference output
        // and surfaces a divergence as an error.
        let report = handle.result()?;
        println!("{}", nwo_bench::bench_table_row(name, *scale, &report));
    }
    drop(root_span);
    finish_profile(profile, profile_out.as_deref())
}

/// `nwo experiments [name ...] [--jobs N] [--profile]
/// [--profile-out <path>] [--progress]`
pub fn experiments(args: &[String]) -> Result<(), String> {
    use nwo_bench::figures::experiment_names;
    use nwo_bench::harness::run_harness;

    let mut names: Vec<&str> = Vec::new();
    let mut profile = false;
    let mut profile_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => set_jobs(it.next().ok_or("--jobs needs a number")?)?,
            "--profile" => profile = true,
            "--profile-out" => {
                profile_out = Some(it.next().ok_or("--profile-out needs a path")?.clone())
            }
            "--progress" => std::env::set_var("NWO_PROGRESS", "1"),
            _ if !a.starts_with('-') => names.push(a.as_str()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if let Some(p) = &profile_out {
        nwo_sim::validate_output_parent("--profile-out", p).map_err(|e| e.to_string())?;
    }
    if profile || profile_out.is_some() {
        // The harness enables aggregation on its own for the per-phase
        // JSON breakdowns; this upgrades to event capture when a trace
        // file was requested.
        nwo_sim::obs::span::enable(profile_out.is_some());
    }
    // NWO_JOBS=0 (or garbage) aborts up front with the typed error
    // instead of silently running at default parallelism.
    nwo_bench::runner::jobs_from_env_checked().map_err(|e| e.to_string())?;
    let selected: Vec<&str> = if names.is_empty() {
        experiment_names()
    } else {
        names
    };
    let root_span = nwo_sim::obs::span::span("experiments");
    let summary = run_harness(&selected);
    drop(root_span);
    finish_profile(profile, profile_out.as_deref())?;
    let summary = summary?;
    if summary.failures.is_empty() {
        Ok(())
    } else {
        // The sweep already completed and persisted its JSON (including
        // the quarantined entries); the exit code still flags trouble.
        let quarantined: Vec<String> = summary
            .failures
            .iter()
            .map(|f| format!("{} ({})", f.name, f.status))
            .collect();
        Err(format!(
            "{} experiment(s) quarantined: {}",
            quarantined.len(),
            quarantined.join(", ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_program_handles_both_formats() {
        let dir = std::env::temp_dir().join("nwo-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let asm_path = dir.join("t.s");
        std::fs::write(&asm_path, "main: li t0, 7\n outq t0\n halt").unwrap();
        let p1 = load_program(asm_path.to_str().unwrap()).unwrap();
        let bin_path = dir.join("t.nwo");
        std::fs::write(&bin_path, p1.to_bytes()).unwrap();
        let p2 = load_program(bin_path.to_str().unwrap()).unwrap();
        assert_eq!(p1.text, p2.text);
        assert_eq!(p1.entry, p2.entry);
    }

    #[test]
    fn bad_paths_are_reported() {
        assert!(load_program("/definitely/not/here.s").is_err());
    }

    #[test]
    fn end_to_end_sim_of_a_temp_file() {
        let dir = std::env::temp_dir().join("nwo-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("loop.s");
        std::fs::write(
            &path,
            "main: clr t0\nloop: addq t0, 1, t0\n cmplt t0, 100, t1\n bne t1, loop\n outq t0\n halt",
        )
        .unwrap();
        let arg = vec![path.to_string_lossy().into_owned()];
        run(&arg).unwrap();
        sim(&arg).unwrap();
    }
}
