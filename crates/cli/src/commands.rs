//! Subcommand implementations.

use nwo_core::{GatingConfig, PackConfig};
use nwo_isa::{assemble, Emulator, Program};
use nwo_sim::{SimConfig, Simulator};
use nwo_workloads::{benchmark, experiment_scale, BENCHMARK_NAMES};
use std::path::Path;

/// Top-level usage text.
pub const USAGE: &str = "\
nwo — narrow-width-operand toolchain (Brooks & Martonosi, HPCA 1999)

usage:
  nwo asm  <file.s> [-o out.nwo]      assemble to an NWO1 image
  nwo dis  <file.s|file.nwo>          disassemble
  nwo run  <file.s|file.nwo>          functional emulation
  nwo sim  <file.s|file.nwo> [flags]  cycle-level out-of-order simulation
       --bench <name>      simulate a built-in benchmark kernel instead of a file
       --scale <N>         workload scale for --bench (default: experiment scale)
       --gating     operand-based clock gating (Section 4)
       --packing    operation packing (Section 5.2)
       --replay     replay packing (Section 5.3)
       --perfect    perfect branch prediction
       --wide       8-wide fetch/decode
       --eight      8-issue / 8-ALU machine
       --max <N>    stop after N committed instructions
       --trace <N>  print a pipeline trace of the first N commits
       --json <path>       write every machine counter as a JSON snapshot
       --trace-out <path>  stream pipeline events as JSON lines (O(1) memory)
       --pipeview <N>      draw a text pipeline diagram of the first N commits
       --warmup <N>        fast-forward N instructions before timing (Sec 3.2)
       --ckpt-out <path>   save warmed state as a checkpoint and exit
       --ckpt-in <path>    restore warmed state from a checkpoint (skips warmup)
       --interval-stats <N>  write a metrics snapshot every N cycles
       --interval-out <path> interval snapshot JSONL path (default:
                             nwo-intervals.jsonl)
       --stall-detail      attribute lost commit slots per PC, print top offenders
  nwo ckpt info <file>                inspect a checkpoint (sections, CRCs, salt)
  nwo dbg  <file.s|file.nwo>          interactive debugger (step/break/dump)
  nwo bench [name ...] [--scale N] [--jobs N]
       run benchmark kernels (verified) on the worker pool
  nwo experiments [name ...] [--jobs N]
       regenerate the paper's tables/figures in parallel, with memoized
       simulations, per-experiment timing lines and a BENCH_harness.json
       summary (--jobs N == NWO_JOBS=N; see docs/benchmarking.md)
";

/// Loads a program from assembly source (`.s`) or an NWO1 image.
fn load_program(path: &str) -> Result<Program, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if bytes.starts_with(b"NWO1") {
        return Program::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"));
    }
    let source = String::from_utf8(bytes)
        .map_err(|_| format!("{path}: not UTF-8 assembly and not an NWO1 image"))?;
    assemble(&source).map_err(|e| format!("{path}: {e}"))
}

/// `nwo asm <file.s> [-o out.nwo]`
pub fn asm(args: &[String]) -> Result<(), String> {
    let mut input = None;
    let mut output = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => output = Some(it.next().ok_or("-o needs a path")?.clone()),
            _ if input.is_none() => input = Some(a.clone()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let input = input.ok_or("asm needs an input file")?;
    let program = load_program(&input)?;
    let out_path = output.unwrap_or_else(|| {
        Path::new(&input)
            .with_extension("nwo")
            .to_string_lossy()
            .into_owned()
    });
    std::fs::write(&out_path, program.to_bytes()).map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "{out_path}: {} instructions, {} data bytes, entry {:#x}",
        program.len(),
        program.data.len(),
        program.entry
    );
    Ok(())
}

/// `nwo dis <file>`
pub fn dis(args: &[String]) -> Result<(), String> {
    let [input] = args else {
        return Err("dis needs exactly one input file".to_string());
    };
    let program = load_program(input)?;
    print!("{}", program.disassemble());
    Ok(())
}

/// `nwo run <file>`
pub fn run(args: &[String]) -> Result<(), String> {
    let [input] = args else {
        return Err("run needs exactly one input file".to_string());
    };
    let program = load_program(input)?;
    let mut emu = Emulator::new(&program);
    emu.run(10_000_000_000).map_err(|e| e.to_string())?;
    if !emu.output().is_empty() {
        println!("outb: {}", String::from_utf8_lossy(emu.output()));
    }
    for (i, q) in emu.outq().iter().enumerate() {
        println!("outq[{i}]: {q} ({q:#x})");
    }
    println!("{} instructions executed", emu.icount());
    Ok(())
}

/// `nwo sim <file> [flags]`
pub fn sim(args: &[String]) -> Result<(), String> {
    use nwo_sim::obs::{JsonlSink, RingSink, TeeSink, TraceSink};

    let mut input = None;
    let mut bench_name: Option<String> = None;
    let mut bench_scale: Option<u32> = None;
    let mut config = SimConfig::default();
    let mut max = u64::MAX;
    let mut json_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut pipeview: usize = 0;
    let mut warmup: u64 = 0;
    let mut ckpt_out: Option<String> = None;
    let mut ckpt_in: Option<String> = None;
    let mut interval: u64 = 0;
    let mut interval_out: Option<String> = None;
    let mut stall_detail = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench" => bench_name = Some(it.next().ok_or("--bench needs a name")?.clone()),
            "--scale" => {
                bench_scale = Some(
                    it.next()
                        .ok_or("--scale needs a number")?
                        .parse()
                        .map_err(|_| "--scale needs a number")?,
                )
            }
            "--warmup" => {
                warmup = it
                    .next()
                    .ok_or("--warmup needs a number")?
                    .parse()
                    .map_err(|_| "--warmup needs a number")?
            }
            "--ckpt-out" => ckpt_out = Some(it.next().ok_or("--ckpt-out needs a path")?.clone()),
            "--ckpt-in" => ckpt_in = Some(it.next().ok_or("--ckpt-in needs a path")?.clone()),
            "--interval-stats" => {
                interval = it
                    .next()
                    .ok_or("--interval-stats needs a number")?
                    .parse()
                    .map_err(|_| "--interval-stats needs a number")?
            }
            "--interval-out" => {
                interval_out = Some(it.next().ok_or("--interval-out needs a path")?.clone())
            }
            "--stall-detail" => stall_detail = true,
            "--gating" => config = config.with_gating(GatingConfig::default()),
            "--packing" => config = config.with_packing(PackConfig::default()),
            "--replay" => config = config.with_packing(PackConfig::with_replay()),
            "--perfect" => config = config.with_perfect_prediction(),
            "--wide" => config = config.with_wide_decode(),
            "--eight" => config = config.with_eight_issue(),
            "--max" => {
                max = it
                    .next()
                    .ok_or("--max needs a number")?
                    .parse()
                    .map_err(|_| "--max needs a number")?
            }
            "--trace" => {
                config.trace_limit = it
                    .next()
                    .ok_or("--trace needs a number")?
                    .parse()
                    .map_err(|_| "--trace needs a number")?
            }
            "--json" => json_out = Some(it.next().ok_or("--json needs a path")?.clone()),
            "--trace-out" => trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone()),
            "--pipeview" => {
                pipeview = it
                    .next()
                    .ok_or("--pipeview needs a number")?
                    .parse()
                    .map_err(|_| "--pipeview needs a number")?
            }
            _ if input.is_none() && !a.starts_with('-') => input = Some(a.clone()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let program = match (&bench_name, &input) {
        (Some(_), Some(_)) => return Err("--bench and an input file are exclusive".into()),
        (Some(name), None) => {
            let scale = bench_scale.unwrap_or_else(|| experiment_scale(name));
            benchmark(name, scale)
                .ok_or_else(|| format!("unknown benchmark `{name}`; known: {BENCHMARK_NAMES:?}"))?
                .program
        }
        (None, Some(path)) => load_program(path)?,
        (None, None) => return Err("sim needs an input file or --bench <name>".into()),
    };
    if ckpt_in.is_some() && (warmup > 0 || ckpt_out.is_some()) {
        return Err("--ckpt-in replaces warmup; it excludes --warmup and --ckpt-out".into());
    }
    let trace_limit = config.trace_limit;
    let mut simulator = Simulator::new(&program, config);

    // Warm-state phase: restore a checkpoint, or fast-forward and
    // optionally persist the result (then exit without timing anything).
    if let Some(path) = &ckpt_in {
        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        simulator
            .restore_checkpoint(&bytes)
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("restored warmed state from {path}");
    } else if warmup > 0 {
        let warmed = simulator.warmup(warmup).map_err(|e| e.to_string())?;
        eprintln!("warmed {warmed} instructions");
    }
    if let Some(path) = &ckpt_out {
        let bytes = simulator.checkpoint();
        std::fs::write(path, &bytes).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote checkpoint to {path} ({} bytes)", bytes.len());
        return Ok(());
    }
    if stall_detail {
        simulator.enable_stall_detail();
    }
    let interval_path = interval_out.unwrap_or_else(|| "nwo-intervals.jsonl".to_string());
    if interval > 0 {
        let file =
            std::fs::File::create(&interval_path).map_err(|e| format!("{interval_path}: {e}"))?;
        simulator.set_interval_stats(interval, Box::new(std::io::BufWriter::new(file)));
    }

    // Compose the trace sink: in-memory retention for --trace/--pipeview,
    // a streaming JSONL file for --trace-out, or both behind a tee.
    let retain = trace_limit.max(pipeview);
    let mut sinks: Vec<Box<dyn TraceSink>> = Vec::new();
    if retain > 0 {
        sinks.push(Box::new(RingSink::keep_first(retain)));
    }
    if let Some(path) = &trace_out {
        let sink = JsonlSink::create(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        sinks.push(Box::new(sink));
    }
    if sinks.len() == 1 {
        simulator.set_trace_sink(sinks.pop().expect("checked length"));
    } else if sinks.len() > 1 {
        let mut tee = TeeSink::new();
        for s in sinks {
            tee.push(s);
        }
        simulator.set_trace_sink(Box::new(tee));
    }

    let report = simulator.run(max).map_err(|e| e.to_string())?;
    if trace_limit > 0 {
        println!(
            "{:<10} {:<24} {:>6} {:>6} {:>6} {:>6} {:>6}  flags",
            "pc", "instruction", "F", "D", "I", "X", "C"
        );
        for t in simulator.trace().iter().take(trace_limit) {
            println!(
                "{:<#10x} {:<24} {:>6} {:>6} {:>6} {:>6} {:>6}  {}{}",
                t.pc,
                t.instr.to_string(),
                t.fetched_at,
                t.dispatched_at,
                t.issued_at,
                t.completed_at,
                t.committed_at,
                if t.packed { "P" } else { "" },
                if t.replayed { "R" } else { "" },
            );
        }
        println!();
    }
    if pipeview > 0 {
        let records = simulator.trace_commits();
        let shown = &records[..pipeview.min(records.len())];
        let diagram = nwo_sim::obs::pipeview::render(shown, &|_, raw| {
            nwo_isa::Instr::decode(raw)
                .map(|i| i.to_string())
                .unwrap_or_else(|_| format!("{raw:08x}"))
        });
        print!("{diagram}");
        println!();
    }
    if !report.out_bytes.is_empty() {
        println!("outb: {}", String::from_utf8_lossy(&report.out_bytes));
    }
    for (i, q) in report.out_quads.iter().enumerate() {
        println!("outq[{i}]: {q} ({q:#x})");
    }
    println!();
    print!("{report}");
    if stall_detail {
        if let Some(detail) = simulator.stall_detail() {
            let mut rows: Vec<_> = detail
                .iter()
                .map(|(&pc, b)| (pc, b.total(), b))
                .filter(|&(_, total, _)| total > 0)
                .collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            println!();
            println!("top stall PCs (lost commit slots):");
            println!("{:<12} {:>12}  dominant cause", "pc", "lost slots");
            for (pc, total, breakdown) in rows.iter().take(10) {
                let dominant = breakdown
                    .iter()
                    .max_by_key(|&(_, slots)| slots)
                    .map(|(cause, _)| cause.name())
                    .unwrap_or("-");
                println!("{pc:<#12x} {total:>12}  {dominant}");
            }
        }
    }
    if interval > 0 {
        eprintln!("wrote interval snapshots to {interval_path}");
    }
    if let Some(path) = &json_out {
        std::fs::write(path, simulator.snapshot().to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    if let Some(path) = &trace_out {
        eprintln!("wrote pipeline event stream to {path}");
    }
    Ok(())
}

/// `nwo ckpt info <file>` — header, salt and per-section summary of a
/// checkpoint, tolerating stale salts and corrupted payloads (they are
/// reported, not fatal) so rejected files can be diagnosed.
pub fn ckpt(args: &[String]) -> Result<(), String> {
    let [sub, path] = args else {
        return Err("usage: nwo ckpt info <file>".to_string());
    };
    if sub != "info" {
        return Err(format!("unknown ckpt subcommand `{sub}`; try `info`"));
    }
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let info = nwo_sim::ckpt::inspect(&bytes).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: checkpoint format v{}", info.version);
    println!(
        "salt: {:#018x} ({})",
        info.salt,
        if info.salt_current {
            "current build"
        } else {
            "STALE — restore will reject this file"
        }
    );
    println!("{:<12} {:>12}  crc", "section", "bytes");
    let mut all_ok = true;
    for s in &info.sections {
        all_ok &= s.crc_ok;
        println!(
            "{:<12} {:>12}  {}",
            s.name,
            s.len,
            if s.crc_ok { "ok" } else { "CORRUPT" }
        );
    }
    if !all_ok {
        return Err("one or more sections are corrupted".to_string());
    }
    Ok(())
}

/// `nwo dbg <file>`
pub fn dbg(args: &[String]) -> Result<(), String> {
    let [input] = args else {
        return Err("dbg needs exactly one input file".to_string());
    };
    let program = load_program(input)?;
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    crate::debugger::repl(&program, stdin.lock(), &mut stdout).map_err(|e| e.to_string())
}

/// Applies a `--jobs N` flag by exporting `NWO_JOBS` before the global
/// worker pool spins up (the pool reads the variable once, on first
/// use, so the flag must come before any simulation is submitted).
fn set_jobs(value: &str) -> Result<(), String> {
    let n: usize = value
        .parse()
        .map_err(|_| "--jobs needs a positive number".to_string())?;
    if n == 0 {
        return Err("--jobs needs a positive number".to_string());
    }
    std::env::set_var("NWO_JOBS", n.to_string());
    Ok(())
}

/// `nwo bench [name ...] [--scale N] [--jobs N]`
pub fn bench(args: &[String]) -> Result<(), String> {
    use nwo_bench::runner::Runner;

    let mut names: Vec<String> = Vec::new();
    let mut scale_override = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale_override = Some(
                    it.next()
                        .ok_or("--scale needs a number")?
                        .parse::<u32>()
                        .map_err(|_| "--scale needs a number")?,
                )
            }
            "--jobs" => set_jobs(it.next().ok_or("--jobs needs a number")?)?,
            _ if !a.starts_with('-') => names.push(a.clone()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if names.is_empty() {
        names = BENCHMARK_NAMES.iter().map(|s| s.to_string()).collect();
    }
    // Submit everything up front so the kernels simulate in parallel,
    // then print rows in request order (identical output at any job
    // count). The memo key uses each benchmark's actual scale.
    let mut jobs = Vec::with_capacity(names.len());
    for name in &names {
        let scale = scale_override.unwrap_or_else(|| experiment_scale(name));
        let bench = benchmark(name, scale)
            .ok_or_else(|| format!("unknown benchmark `{name}`; known: {BENCHMARK_NAMES:?}"))?;
        let handle = Runner::global().submit(&bench, scale, SimConfig::default());
        jobs.push((name, scale, handle));
    }
    println!(
        "{:<11} {:>6} {:>10} {:>9} {:>7} {:>8} {:>9}",
        "benchmark", "scale", "instrs", "cycles", "ipc", "narrow16", "verified"
    );
    for (name, scale, handle) in &jobs {
        // The runner verifies each report against the reference output
        // and surfaces a divergence as an error.
        let report = handle.result()?;
        println!(
            "{:<11} {:>6} {:>10} {:>9} {:>7.3} {:>7.1}% {:>9}",
            name,
            scale,
            report.stats.committed,
            report.stats.cycles,
            report.ipc(),
            report.stats.breakdown.narrow16_total_fraction() * 100.0,
            "ok"
        );
    }
    Ok(())
}

/// `nwo experiments [name ...] [--jobs N]`
pub fn experiments(args: &[String]) -> Result<(), String> {
    use nwo_bench::figures::experiment_names;
    use nwo_bench::harness::run_harness;

    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => set_jobs(it.next().ok_or("--jobs needs a number")?)?,
            _ if !a.starts_with('-') => names.push(a.as_str()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let selected: Vec<&str> = if names.is_empty() {
        experiment_names()
    } else {
        names
    };
    run_harness(&selected).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_program_handles_both_formats() {
        let dir = std::env::temp_dir().join("nwo-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let asm_path = dir.join("t.s");
        std::fs::write(&asm_path, "main: li t0, 7\n outq t0\n halt").unwrap();
        let p1 = load_program(asm_path.to_str().unwrap()).unwrap();
        let bin_path = dir.join("t.nwo");
        std::fs::write(&bin_path, p1.to_bytes()).unwrap();
        let p2 = load_program(bin_path.to_str().unwrap()).unwrap();
        assert_eq!(p1.text, p2.text);
        assert_eq!(p1.entry, p2.entry);
    }

    #[test]
    fn bad_paths_are_reported() {
        assert!(load_program("/definitely/not/here.s").is_err());
    }

    #[test]
    fn end_to_end_sim_of_a_temp_file() {
        let dir = std::env::temp_dir().join("nwo-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("loop.s");
        std::fs::write(
            &path,
            "main: clr t0\nloop: addq t0, 1, t0\n cmplt t0, 100, t1\n bne t1, loop\n outq t0\n halt",
        )
        .unwrap();
        let arg = vec![path.to_string_lossy().into_owned()];
        run(&arg).unwrap();
        sim(&arg).unwrap();
    }
}
