//! Interactive debugger for the functional emulator.
//!
//! ```text
//! (nwo-dbg) help
//! s [n]          step n instructions (default 1)
//! c              continue to breakpoint / halt
//! b <addr|label> toggle a breakpoint
//! r              print non-zero registers
//! m <addr> [n]   dump n bytes of memory (default 64)
//! d [addr]       disassemble 8 instructions (default: at pc)
//! o              show program output so far
//! q              quit
//! ```

use nwo_isa::{Emulator, Program, Reg};
use std::collections::HashSet;
use std::io::{BufRead, Write};

/// Runs the debugger REPL over arbitrary input/output streams (tests
/// inject scripted commands; `main` passes stdin/stdout).
pub fn repl<R: BufRead, W: Write>(program: &Program, input: R, out: &mut W) -> std::io::Result<()> {
    let mut emu = Emulator::new(program);
    let mut breakpoints: HashSet<u64> = HashSet::new();
    writeln!(
        out,
        "nwo debugger — {} instructions loaded; `help` for commands",
        program.len()
    )?;
    print_location(&emu, program, out)?;
    write!(out, "(nwo-dbg) ")?;
    out.flush()?;
    for line in input.lines() {
        let line = line?;
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        match cmd {
            "" => {}
            "help" | "h" => {
                writeln!(
                    out,
                    "s [n] | c | b <addr|label> | r | m <addr> [n] | d [addr] | o | q"
                )?;
            }
            "s" => {
                let n: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(1);
                for _ in 0..n {
                    if emu.halted() {
                        writeln!(out, "machine is halted")?;
                        break;
                    }
                    match emu.step() {
                        Ok(rec) => {
                            write!(out, "{:#010x}: {}", rec.pc, rec.instr)?;
                            if let Some(result) = rec.result {
                                write!(out, "    -> {result} ({result:#x})")?;
                            }
                            writeln!(out)?;
                        }
                        Err(e) => {
                            writeln!(out, "fault: {e}")?;
                            break;
                        }
                    }
                }
            }
            "c" => {
                let mut steps = 0u64;
                loop {
                    if emu.halted() {
                        writeln!(out, "halted after {steps} instructions")?;
                        break;
                    }
                    if let Err(e) = emu.step() {
                        writeln!(out, "fault: {e}")?;
                        break;
                    }
                    steps += 1;
                    if breakpoints.contains(&emu.pc()) {
                        writeln!(
                            out,
                            "breakpoint at {:#x} after {steps} instructions",
                            emu.pc()
                        )?;
                        break;
                    }
                    if steps > 1_000_000_000 {
                        writeln!(out, "gave up after 1e9 instructions")?;
                        break;
                    }
                }
                print_location(&emu, program, out)?;
            }
            "b" => match args.first().map(|a| resolve_addr(program, a)) {
                Some(Some(addr)) => {
                    if breakpoints.remove(&addr) {
                        writeln!(out, "breakpoint cleared at {addr:#x}")?;
                    } else {
                        breakpoints.insert(addr);
                        writeln!(out, "breakpoint set at {addr:#x}")?;
                    }
                }
                _ => writeln!(out, "usage: b <addr|label>")?,
            },
            "r" => {
                for i in 0..32u8 {
                    let r = Reg::new(i);
                    let v = emu.reg(r);
                    if v != 0 {
                        writeln!(out, "  {:<5} = {v:#018x} ({v})", r.to_string())?;
                    }
                }
                writeln!(out, "  pc    = {:#x}", emu.pc())?;
            }
            "m" => match args.first().map(|a| resolve_addr(program, a)) {
                Some(Some(addr)) => {
                    let len: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(64);
                    for (row, chunk) in emu.mem().read_bytes(addr, len).chunks(16).enumerate() {
                        write!(out, "{:#012x}: ", addr + row as u64 * 16)?;
                        for b in chunk {
                            write!(out, "{b:02x} ")?;
                        }
                        writeln!(out)?;
                    }
                }
                _ => writeln!(out, "usage: m <addr|label> [len]")?,
            },
            "d" => {
                let at = args
                    .first()
                    .and_then(|a| resolve_addr(program, a))
                    .unwrap_or_else(|| emu.pc());
                for i in 0..8u64 {
                    let addr = at + i * 4;
                    match program.instr_at(addr) {
                        Some(instr) => {
                            let marker = if addr == emu.pc() { "=>" } else { "  " };
                            writeln!(out, "{marker} {addr:#010x}: {instr}")?;
                        }
                        None => break,
                    }
                }
            }
            "o" => {
                if !emu.output().is_empty() {
                    writeln!(out, "outb: {}", String::from_utf8_lossy(emu.output()))?;
                }
                for (i, q) in emu.outq().iter().enumerate() {
                    writeln!(out, "outq[{i}]: {q} ({q:#x})")?;
                }
                if emu.output().is_empty() && emu.outq().is_empty() {
                    writeln!(out, "(no output yet)")?;
                }
            }
            "q" | "quit" | "exit" => break,
            other => writeln!(out, "unknown command `{other}` (try `help`)")?,
        }
        write!(out, "(nwo-dbg) ")?;
        out.flush()?;
    }
    writeln!(out)?;
    Ok(())
}

fn print_location<W: Write>(emu: &Emulator, program: &Program, out: &mut W) -> std::io::Result<()> {
    match program.instr_at(emu.pc()) {
        Some(instr) => writeln!(out, "=> {:#010x}: {instr}", emu.pc()),
        None => writeln!(out, "=> {:#010x}: <outside text>", emu.pc()),
    }
}

/// Resolves a numeric address or program label.
fn resolve_addr(program: &Program, text: &str) -> Option<u64> {
    if let Some(addr) = program.symbol(text) {
        return Some(addr);
    }
    let body = text.strip_prefix("0x").unwrap_or(text);
    if text.starts_with("0x") {
        u64::from_str_radix(body, 16).ok()
    } else {
        text.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwo_isa::assemble;
    use std::io::BufReader;

    fn drive(src: &str, script: &str) -> String {
        let program = assemble(src).expect("assembles");
        let mut out = Vec::new();
        repl(&program, BufReader::new(script.as_bytes()), &mut out).expect("repl runs");
        String::from_utf8(out).expect("utf8")
    }

    const PROG: &str = concat!(
        "main: li t0, 5\n",
        "loop: addq t0, 1, t0\n",
        " cmplt t0, 10, t1\n",
        " bne t1, loop\n",
        " outq t0\n",
        " halt"
    );

    #[test]
    fn step_shows_results() {
        let out = drive(PROG, "s 2\nq\n");
        assert!(out.contains("lda t0, 5(zero)    -> 5"));
        assert!(out.contains("addq t0, #1, t0    -> 6"));
    }

    #[test]
    fn continue_runs_to_halt_and_output_is_visible() {
        let out = drive(PROG, "c\no\nq\n");
        assert!(out.contains("halted after"));
        assert!(out.contains("outq[0]: 10"));
    }

    #[test]
    fn breakpoints_by_label() {
        let out = drive(PROG, "b loop\nc\nr\nq\n");
        assert!(out.contains("breakpoint set"));
        assert!(out.contains("breakpoint at"));
        // After stopping at `loop` the first time, t0 holds 5.
        assert!(out.contains("t0    = 0x0000000000000005"));
    }

    #[test]
    fn memory_dump_and_disassembly() {
        let out = drive(PROG, "m 0x10000 16\nd main\nq\n");
        assert!(out.contains("0x0000010000:"));
        assert!(out.contains("=> 0x00010000: lda t0, 5(zero)"));
    }

    #[test]
    fn unknown_commands_are_reported() {
        let out = drive(PROG, "frobnicate\nq\n");
        assert!(out.contains("unknown command `frobnicate`"));
    }
}
