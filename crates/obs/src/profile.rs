//! Profile aggregation and export for the span profiler
//! ([`crate::span`]): per-path wall-time aggregates ([`ProfileAgg`]),
//! before/after diffs for phase attribution, a human-readable tree
//! rendering, and Chrome Trace Event Format JSON for
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev).

use crate::json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Accumulated wall time, invocation count, and named side counters
/// for one span path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Total wall time spent inside this path, in nanoseconds.
    pub total_ns: u64,
    /// Number of times the span was entered (or, for externally
    /// batched timing, the reported occurrence count).
    pub count: u64,
    /// Named side counters attached via [`crate::span::add`].
    pub counters: BTreeMap<&'static str, u64>,
}

/// One captured timeline interval: a single execution of a span,
/// ready for Chrome Trace export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanEvent {
    /// Full `/`-joined aggregate path (`"sim/measured-run"`).
    pub path: String,
    /// Display name — the leaf segment, or the label given to
    /// [`crate::span::labeled_span`].
    pub name: String,
    /// Dense per-thread id (1-based).
    pub tid: u32,
    /// Start offset from the profiler epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A snapshot of the profiler's aggregate: one [`SpanStat`] per
/// distinct span path, sorted (so parents precede their children —
/// `"a"` < `"a/b"`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileAgg {
    /// Per-path stats, keyed by the `/`-joined span path.
    pub spans: BTreeMap<String, SpanStat>,
}

impl ProfileAgg {
    /// Builds an aggregate from `(path, stat)` pairs, dropping empty
    /// entries.
    pub fn from_entries(entries: impl IntoIterator<Item = (String, SpanStat)>) -> ProfileAgg {
        ProfileAgg {
            spans: entries
                .into_iter()
                .filter(|(_, s)| s.total_ns > 0 || s.count > 0 || !s.counters.is_empty())
                .collect(),
        }
    }

    /// The difference `self - baseline`, per path (saturating). Paths
    /// with nothing new are dropped. This is how the harness
    /// attributes phase time to one experiment: snapshot before,
    /// snapshot after, diff.
    pub fn since(&self, baseline: &ProfileAgg) -> ProfileAgg {
        let mut out = BTreeMap::new();
        for (path, stat) in &self.spans {
            let base = baseline.spans.get(path);
            let d = SpanStat {
                total_ns: stat.total_ns.saturating_sub(base.map_or(0, |b| b.total_ns)),
                count: stat.count.saturating_sub(base.map_or(0, |b| b.count)),
                counters: stat
                    .counters
                    .iter()
                    .map(|(k, v)| {
                        (
                            *k,
                            v.saturating_sub(
                                base.and_then(|b| b.counters.get(k)).copied().unwrap_or(0),
                            ),
                        )
                    })
                    .filter(|(_, v)| *v > 0)
                    .collect(),
            };
            if d.total_ns > 0 || d.count > 0 || !d.counters.is_empty() {
                out.insert(path.clone(), d);
            }
        }
        ProfileAgg { spans: out }
    }

    /// Total nanoseconds and count summed over every path whose leaf
    /// segment equals `leaf`, wherever it nests. `("measured-run")`
    /// thus covers both `sim/measured-run` and
    /// `sim-job/measured-run`.
    pub fn leaf_totals(&self, leaf: &str) -> (u64, u64) {
        self.spans
            .iter()
            .filter(|(path, _)| path.rsplit('/').next() == Some(leaf))
            .fold((0, 0), |(ns, n), (_, s)| (ns + s.total_ns, n + s.count))
    }

    /// Sum of top-level (depth 0) span times, in nanoseconds — the
    /// denominator for the tree rendering's root percentages.
    pub fn root_total_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|(path, _)| !path.contains('/'))
            .map(|(_, s)| s.total_ns)
            .sum()
    }
}

/// The full exported profile: cumulative aggregate plus the captured
/// timeline events (empty unless event capture was enabled).
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Cumulative per-path aggregate.
    pub agg: ProfileAgg,
    /// Captured timeline events, in completion order.
    pub events: Vec<SpanEvent>,
    /// Events discarded after the capture buffer filled
    /// ([`crate::span::MAX_EVENTS`]).
    pub dropped_events: u64,
}

impl ProfileReport {
    /// Distinct thread count among captured events.
    pub fn threads(&self) -> usize {
        let mut tids: Vec<u32> = self.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        tids.len()
    }

    /// Renders the aggregate as an indented tree: one row per span
    /// path with invocation count, total milliseconds, percent of
    /// parent, and any side counters.
    ///
    /// ```text
    /// profile: 4 span paths
    ///   sim                              1x    152.203 ms 100.0%
    ///     decode                         1x      0.310 ms   0.2%
    ///     measured-run                   1x    149.100 ms  98.0%  [cycles=410]
    /// ```
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let root_total = self.agg.root_total_ns();
        let _ = writeln!(out, "profile: {} span path(s)", self.agg.spans.len());
        for (path, stat) in &self.agg.spans {
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().unwrap_or(path);
            let parent_total = match path.rfind('/') {
                Some(i) => self.agg.spans.get(&path[..i]).map_or(0, |p| p.total_ns),
                None => root_total,
            };
            let pct = if parent_total > 0 {
                100.0 * stat.total_ns as f64 / parent_total as f64
            } else {
                100.0
            };
            let name = format!("{}{}", "  ".repeat(depth + 1), leaf);
            let _ = write!(
                out,
                "{name:<32} {count:>8}x {ms:>12.3} ms {pct:>5.1}%",
                count = stat.count,
                ms = stat.total_ns as f64 / 1e6,
            );
            if !stat.counters.is_empty() {
                out.push_str("  [");
                for (i, (k, v)) in stat.counters.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    let _ = write!(out, "{k}={v}");
                }
                out.push(']');
            }
            out.push('\n');
        }
        if self.dropped_events > 0 {
            let _ = writeln!(
                out,
                "({} timeline event(s) dropped after the capture buffer filled)",
                self.dropped_events
            );
        }
        out
    }

    /// Serializes the captured events as Chrome Trace Event Format
    /// JSON (`ph: "X"` complete events, microsecond timestamps) —
    /// load the file in `chrome://tracing` or Perfetto. Each event's
    /// `args.path` carries the full aggregate path, so tooling can
    /// reconstruct the hierarchy without string-splitting names.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str("  {\"name\": ");
            json::write_str(&mut out, &e.name);
            out.push_str(", \"cat\": \"nwo\", \"ph\": \"X\", \"pid\": 1, \"tid\": ");
            let _ = write!(out, "{}", e.tid);
            out.push_str(", \"ts\": ");
            json::write_f64(&mut out, e.start_ns as f64 / 1000.0);
            out.push_str(", \"dur\": ");
            json::write_f64(&mut out, e.dur_ns as f64 / 1000.0);
            out.push_str(", \"args\": {\"path\": ");
            json::write_str(&mut out, &e.path);
            out.push_str("}}");
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("], \"displayTimeUnit\": \"ms\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(total_ns: u64, count: u64) -> SpanStat {
        SpanStat {
            total_ns,
            count,
            counters: BTreeMap::new(),
        }
    }

    fn sample_agg() -> ProfileAgg {
        let mut counters = BTreeMap::new();
        counters.insert("cycles", 410u64);
        ProfileAgg::from_entries([
            ("sim".to_string(), stat(10_000_000, 1)),
            ("sim/decode".to_string(), stat(1_000_000, 1)),
            (
                "sim/measured-run".to_string(),
                SpanStat {
                    total_ns: 8_000_000,
                    count: 1,
                    counters,
                },
            ),
            ("sim-job/measured-run".to_string(), stat(2_000_000, 4)),
        ])
    }

    #[test]
    fn since_diffs_per_path_and_drops_unchanged() {
        let before = sample_agg();
        let mut after = before.clone();
        after.spans.get_mut("sim/measured-run").unwrap().total_ns += 500;
        after.spans.get_mut("sim/measured-run").unwrap().count += 1;
        after.spans.insert("sim/warmup".to_string(), stat(42, 1));
        let d = after.since(&before);
        assert_eq!(
            d.spans.keys().collect::<Vec<_>>(),
            ["sim/measured-run", "sim/warmup"]
        );
        assert_eq!(d.spans["sim/measured-run"].total_ns, 500);
        assert_eq!(d.spans["sim/measured-run"].count, 1);
        assert_eq!(d.spans["sim/warmup"].total_ns, 42);
    }

    #[test]
    fn leaf_totals_sum_across_nesting_sites() {
        let agg = sample_agg();
        assert_eq!(agg.leaf_totals("measured-run"), (10_000_000, 5));
        assert_eq!(agg.leaf_totals("decode"), (1_000_000, 1));
        assert_eq!(agg.leaf_totals("absent"), (0, 0));
        assert_eq!(agg.root_total_ns(), 10_000_000);
    }

    #[test]
    fn render_tree_indents_children_and_shows_counters() {
        let report = ProfileReport {
            agg: sample_agg(),
            events: Vec::new(),
            dropped_events: 0,
        };
        let tree = report.render_tree();
        assert!(tree.contains("profile: 4 span path(s)"));
        assert!(tree.contains("\n  sim "), "top level indented once");
        assert!(tree.contains("\n    decode "), "children indented deeper");
        assert!(tree.contains("[cycles=410]"), "counters render inline");
        // decode is 10% of its parent `sim`.
        let decode_line = tree.lines().find(|l| l.contains("decode")).unwrap();
        assert!(decode_line.contains("10.0%"), "line: {decode_line}");
    }

    #[test]
    fn chrome_trace_parses_with_the_crate_parser() {
        let report = ProfileReport {
            agg: ProfileAgg::default(),
            events: vec![
                SpanEvent {
                    path: "sim".into(),
                    name: "sim".into(),
                    tid: 1,
                    start_ns: 0,
                    dur_ns: 2_500,
                },
                SpanEvent {
                    path: "sim/decode".into(),
                    name: "decode \"x\"".into(),
                    tid: 1,
                    start_ns: 500,
                    dur_ns: 1_000,
                },
            ],
            dropped_events: 0,
        };
        let v = json::parse(&report.to_chrome_trace()).expect("trace JSON parses");
        let events = match v.get("traceEvents") {
            Some(json::JsonValue::Array(xs)) => xs,
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        assert_eq!(events.len(), 2);
        let first = &events[0];
        assert_eq!(first.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert_eq!(first.get("ts").and_then(|t| t.as_f64()), Some(0.0));
        assert_eq!(first.get("dur").and_then(|d| d.as_f64()), Some(2.5));
        let second = &events[1];
        assert_eq!(
            second
                .get("args")
                .and_then(|a| a.get("path"))
                .and_then(|p| p.as_str()),
            Some("sim/decode"),
            "args.path carries the aggregate path for hierarchy-aware tooling"
        );
        assert_eq!(report.threads(), 1);
    }
}
