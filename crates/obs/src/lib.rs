#![warn(missing_docs)]

//! `nwo-obs` — zero-dependency observability layer for the nwo stack.
//!
//! Four pieces, all usable independently:
//!
//! - [`metrics`]: a named-metric [`Registry`] (counters, gauges,
//!   [`Log2Histogram`]s) that subsystems fill through the
//!   [`MetricSource`] trait and that serializes to JSON as a
//!   [`Snapshot`] — the payload behind `nwo sim --json`.
//! - [`trace`]: a streaming [`TraceSink`] for per-instruction pipeline
//!   events. [`NullSink`] costs nothing, [`RingSink`] keeps a bounded
//!   in-memory window (the historic `trace_limit` behaviour), and
//!   [`JsonlSink`] streams one JSON event per line so arbitrarily long
//!   runs trace in O(1) resident memory (`nwo sim --trace-out`).
//! - [`stall`]: per-cycle lost-commit-slot attribution
//!   ([`StallBreakdown`]), conserving
//!   `sum(slots) == commit_width * cycles - committed` exactly.
//! - [`pipeview`]: a Konata-style text pipeline diagram rendered from
//!   retained commit records (`nwo sim --pipeview`).
//! - [`span`] + [`profile`]: hierarchical wall-time phase profiling.
//!   RAII [`span::SpanGuard`]s aggregate into a [`profile::ProfileAgg`]
//!   and export as a human tree or Chrome Trace Event JSON
//!   ([`profile::ProfileReport`]) — the machinery behind
//!   `nwo sim --profile` / `--profile-out`. Off by default; every
//!   instrumented call site costs one relaxed atomic load until
//!   [`span::enable`] is called.
//!
//! The crate deliberately depends on nothing — not even other nwo
//! crates — so every subsystem can register metrics without dependency
//! cycles; trace events therefore carry raw instruction encodings,
//! decoded by consumers that know the ISA. JSON is hand-rolled
//! ([`json`]) per the workspace's no-external-deps rule, and the same
//! module provides a small parser so tests can prove emitted output is
//! really parseable.

pub mod json;
pub mod metrics;
pub mod pipeview;
pub mod profile;
pub mod span;
pub mod stall;
pub mod trace;

pub use metrics::{Log2Histogram, MetricSource, MetricValue, Registry, Snapshot};
pub use profile::{ProfileAgg, ProfileReport, SpanEvent, SpanStat};
pub use span::SpanGuard;
pub use stall::{StallBreakdown, StallCause};
pub use trace::{CommitRecord, JsonlSink, NullSink, RingSink, TeeSink, TraceEvent, TraceSink};
