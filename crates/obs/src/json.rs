//! Hand-rolled JSON support: a string escaper / number formatter for
//! the serializing side, and a small recursive-descent parser used by
//! tests (and future tooling) to check that emitted output is really
//! parseable. No serde, per the workspace's no-external-deps rule.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` as a JSON number; non-finite values become
/// `null` (JSON has no NaN/Infinity).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let start = out.len();
        let _ = write!(out, "{v}");
        // `{}` prints integral floats without a dot; keep them
        // recognisably floating-point for downstream type sniffers.
        if !out[start..].contains('.') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as an integer, if this is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output; reject rather than mis-decode.
                            let c =
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, 2.5);
        assert_eq!(out, "2.5");
        out.clear();
        write_f64(&mut out, 3.0);
        assert_eq!(out, "3.0");
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": null, "e": true}"#)
            .expect("parses");
        assert_eq!(
            v.get("a").unwrap(),
            &JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Number(2.5),
                JsonValue::Number(-3.0),
            ])
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn round_trips_escaped_strings() {
        let original = "quote\" slash\\ newline\n tab\t ctrl\u{2} unicode√";
        let mut doc = String::from("{");
        write_str(&mut doc, "k");
        doc.push(':');
        write_str(&mut doc, original);
        doc.push('}');
        let v = parse(&doc).expect("parses");
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn u64_accessor_requires_integral_values() {
        let v = parse("{\"n\": 12, \"f\": 1.5}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
    }
}
